#!/usr/bin/env python
"""Visualize the heart of the paper: the asymmetric estimator walk.

Renders (as ASCII) the trajectory of the estimate ``u`` for LESK and for
the symmetric strawman of Section 2.1, both under a silence-masking jammer
with eps = 0.3 (70% of every window jammable).  LESK's ``+eps/8`` collision
update keeps ``u`` pinned to ``log2 n``; the symmetric ``+1`` update is a
runaway.

Run: python examples/estimator_walk.py
"""

from __future__ import annotations

import math

from repro.adversary.suite import make_adversary
from repro.analysis.ascii_plot import line_chart, sparkline
from repro.analysis.walks import equilibrium_u
from repro.experiments.e11_trajectory import _NonHaltingLESK, _NonHaltingSymmetric
from repro.sim.fast import simulate_uniform_fast

N = 1024
EPS = 0.3
T = 32
SLOTS = 1500


def trajectory(policy, seed):
    result = simulate_uniform_fast(
        policy,
        n=N,
        adversary=make_adversary("silence-masker", T=T, eps=EPS, seed=seed),
        max_slots=SLOTS,
        seed=seed,
        record_trace=True,
        halt_on_single=False,
    )
    return result.trace.u_array()


def main() -> None:
    u_lesk = trajectory(_NonHaltingLESK(EPS), seed=1)
    u_symm = trajectory(_NonHaltingSymmetric(), seed=2)
    eq = equilibrium_u(N, 8.0 / EPS, jam_fraction=1.0 - EPS)

    print(f"n = {N} (log2 n = {math.log2(N):.0f}), eps = {EPS}, "
          f"silence-masking jammer over {SLOTS} slots\n")
    print(f"LESK: u hugs log2 n (drift equilibrium under jamming: {eq:.1f})")
    print(line_chart(u_lesk, y_max=20.0, reference=math.log2(N),
                     reference_label="log2 n"))
    print(f"\nSymmetric strawman: 'the adversary could force the estimate u "
          f"to diverge' (final u = {u_symm[-1]:.0f})")
    print(line_chart(u_symm, reference=math.log2(N), reference_label="log2 n"))
    print("\nSame story, one line each:")
    print(f"  LESK      {sparkline(u_lesk)}")
    print(f"  symmetric {sparkline(u_symm)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: elect a leader among anonymous radio stations under jamming.

The scenario of the paper's introduction: ``n`` identical stations share a
single radio channel; an adversary with full knowledge of the protocol may
jam up to a ``(1-eps)`` fraction of any ``T`` consecutive slots; stations
know *nothing* -- not ``n``, not ``eps``, not ``T``.

Run: python examples/quickstart.py
"""

from repro import elect_leader

N = 1000  # known to the simulator (and the adversary), never to stations


def main() -> None:
    print(f"Network: {N} stations, single hop, slotted channel")
    print("Adversary: (T=32, 1-eps=0.5)-bounded, greedy single-suppressor\n")

    # 1. LESK -- the stations know the adversary's eps (Algorithm 1).
    result = elect_leader(
        n=N, protocol="lesk", eps=0.5, T=32, adversary="single-suppressor", seed=42
    )
    result.require_elected()
    print(
        f"[LESK, knows eps]      station {result.leader:4d} elected in "
        f"{result.slots:5d} slots ({result.jams} jammed, "
        f"{result.energy.transmissions_per_station(N):.1f} tx/station)"
    )

    # 2. LESU -- no knowledge of eps or T at all (Algorithm 2).
    result = elect_leader(
        n=N, protocol="lesu", eps=0.5, T=32, adversary="single-suppressor", seed=42
    )
    result.require_elected()
    print(
        f"[LESU, knows nothing]  station {result.leader:4d} elected in "
        f"{result.slots:5d} slots ({result.jams} jammed)"
    )

    # 3. LEWU -- additionally drop the strong-CD assumption: stations cannot
    #    listen while transmitting, so the winner must be *notified*
    #    (Section 3).  Fully parameter-free weak-CD election.
    n_weak = 100  # faithful per-station engine: keep it moderate
    result = elect_leader(
        n=n_weak, protocol="lewu", eps=0.5, T=32, adversary="single-suppressor",
        seed=42,
    )
    result.require_elected()
    print(
        f"[LEWU, weak-CD]        station {result.leader:4d} elected in "
        f"{result.slots:5d} slots among {n_weak} stations "
        f"({result.leaders_count} leader, all terminated: {result.all_terminated})"
    )

    print("\nEvery station now agrees on a unique leader -- despite the jammer.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Adversary workshop: build your own attack and watch LESK shrug.

Theorem 2.6 quantifies over *every* (T, 1-eps)-bounded adaptive adversary,
so the library makes authoring new ones a one-liner.  This walkthrough

1. writes a custom strategy from scratch (a jammer that targets the
   estimator's descent after overshoot),
2. composes library strategies with combinators (union of the two
   strongest adaptive attacks, a mode-cycling jammer),
3. races them all against LESK and checks every run stays within the
   Theorem 2.6 explicit slot bound.

Run: python examples/adversary_workshop.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary import (
    Adversary,
    AnyOf,
    Alternating,
    EstimatorAttacker,
    SilenceMasker,
    SingleSuppressor,
    JammingStrategy,
    check_bounded,
)
from repro.analysis.bounds import lesk_exact_slot_bound
from repro.protocols.lesk import LESKPolicy
from repro.sim.fast import simulate_uniform_fast

N, EPS, T = 1024, 0.4, 32
REPS = 20


class DescentBlocker(JammingStrategy):
    """Custom attack: only spend budget while the estimator is descending
    toward the election band from above (u > log2 n), converting the
    would-be silences that pull it down into collisions."""

    name = "descent-blocker"

    def wants_jam(self, view, rng) -> bool:
        u = view.protocol_u
        if math.isnan(u):
            return False
        return u > math.log2(view.n)


def race(strategy: JammingStrategy) -> tuple[float, float, bool]:
    slots, jams = [], []
    bounded = True
    for seed in range(REPS):
        adv = Adversary(strategy, T=T, eps=EPS, seed=seed)
        result = simulate_uniform_fast(
            LESKPolicy(EPS), n=N, adversary=adv, max_slots=200_000, seed=seed,
            record_trace=True,
        )
        assert result.elected, "LESK must always elect"
        slots.append(result.slots)
        jams.append(result.jams)
        bounded &= check_bounded(result.trace.jammed_array(), T, EPS)
        strategy.reset()
    return float(np.median(slots)), float(np.mean(jams)), bounded


def main() -> None:
    contenders = {
        "custom: descent-blocker": DescentBlocker(),
        "union: suppressor|masker": AnyOf(SingleSuppressor(), SilenceMasker()),
        "cycling: attacker/masker (T-phase)": Alternating(
            [EstimatorAttacker(), SilenceMasker()], phase_length=T
        ),
    }
    bound = lesk_exact_slot_bound(N, EPS)
    print(f"n={N}, eps={EPS}, T={T}; Thm 2.6 explicit bound = {bound:.0f} slots\n")
    print(f"{'strategy':38s} {'median slots':>12s} {'mean jams':>10s} {'legal':>6s}")
    print("-" * 70)
    for name, strategy in contenders.items():
        med, jams, legal = race(strategy)
        verdict = "ok" if legal else "VIOLATION"
        print(f"{name:38s} {med:12.0f} {jams:10.1f} {verdict:>6s}")
        assert med <= bound
    print(
        "\nEvery composed or hand-written attack stays (T,1-eps)-bounded by "
        "construction\n(the harness clamps intent), and LESK stays within its "
        "proven slot budget."
    )


if __name__ == "__main__":
    main()

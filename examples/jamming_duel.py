#!/usr/bin/env python
"""Jamming duel: race LESK and the classic baselines against every jammer.

Reproduces, at example scale, the story of Sections 1-2: classic election
protocols (Willard's log-log probe, the uniform sweep) are fast on a quiet
channel but collapse under an adaptive jammer, while LESK's asymmetric
estimator walk barely notices.

Run: python examples/jamming_duel.py
"""

from __future__ import annotations

import numpy as np

from repro.adversary.suite import make_adversary, strategy_names
from repro.protocols.baselines.nakano_olariu import UniformSweepPolicy
from repro.protocols.baselines.willard import WillardPolicy
from repro.protocols.lesk import LESKPolicy
from repro.sim.fast import simulate_uniform_fast

N = 1024
EPS = 0.4
T = 32
REPS = 15
CAP = 50_000

CONTENDERS = {
    "LESK (this paper)": lambda: LESKPolicy(EPS),
    "Willard log-log": WillardPolicy,
    "uniform sweep": UniformSweepPolicy,
}


def race(make_policy, adversary: str) -> tuple[float, float]:
    """Median slots (timeouts at CAP) and success rate."""
    times, wins = [], 0
    for seed in range(REPS):
        result = simulate_uniform_fast(
            make_policy(),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS, seed=seed),
            max_slots=CAP,
            seed=seed,
        )
        times.append(result.slots)
        wins += result.elected
    return float(np.median(times)), wins / REPS


def main() -> None:
    print(f"n={N}, eps={EPS}, T={T}; {REPS} runs each; timeout {CAP} slots\n")
    header = f"{'jammer':20s}" + "".join(f"{name:>22s}" for name in CONTENDERS)
    print(header)
    print("-" * len(header))
    for adversary in strategy_names():
        cells = []
        for make_policy in CONTENDERS.values():
            med, rate = race(make_policy, adversary)
            cells.append(
                f"{med:8.0f} ({rate:4.0%})" if rate < 1 else f"{med:8.0f} slots "
            )
        print(f"{adversary:20s}" + "".join(f"{c:>22s}" for c in cells))
    print(
        "\nLESK stays within its Theorem 2.6 bound against every strategy;"
        "\nthe baselines time out (success < 100%) once the jammer adapts."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Sensor-network bring-up: size estimation -> k-selection -> fair TDMA.

A deployment story using the paper's primitives as building blocks
(Section 4): a field of sensors wakes up with no configuration and an
interferer nearby.  The network

1. approximates its own size from the estimator walk (nobody knows n),
2. elects k = 3 cluster heads (k-selection),
3. lets the first head impose a TDMA schedule and measures the fairness
   of the resulting channel shares under continued jamming.

Run: python examples/sensor_network.py
"""

from repro.applications import (
    estimate_size_walk,
    select_k_leaders,
    simulate_fair_use,
)

N = 300  # true deployment size -- unknown to every sensor
EPS, T = 0.5, 16
JAMMER = "saturating"
SEED = 2015


def main() -> None:
    print(f"Deployment: {N} sensors (size unknown to them), "
          f"({T}, {1-EPS})-bounded '{JAMMER}' interferer\n")

    est = estimate_size_walk(n=N, eps=EPS, T=T, adversary=JAMMER, seed=SEED)
    print(
        f"1. size approximation: ~2^{est.log2_estimate:.1f} = "
        f"{est.n_estimate:.0f} sensors (truth {N}; bracket "
        f"[{est.n_low:.0f}, {est.n_high:.0f}]) in {est.slots} slots, "
        f"{est.jams} jammed"
    )

    ks = select_k_leaders(n=N, k=3, eps=EPS, T=T, adversary=JAMMER, seed=SEED)
    print(
        f"2. cluster heads: sensors {list(ks.leaders)} elected at slots "
        f"{list(ks.win_slots)} ({ks.slots} slots total, {ks.jams} jammed)"
    )

    report = simulate_fair_use(
        n=30, eps=EPS, T=T, adversary=JAMMER, cycles=10, seed=SEED
    )
    print(
        f"3. TDMA under head {report.leader}: fairness (Jain) "
        f"{report.tdma_fairness:.3f}, loss to jamming {report.tdma_loss:.0%} "
        f"over {report.tdma_slots} slots"
    )
    print(
        "\nThe interferer can deny bandwidth (loss ~ 1-eps) but can neither "
        "prevent\ncoordination nor skew who gets the channel."
    )


if __name__ == "__main__":
    main()

"""End-to-end tests for ``python -m repro sweep`` (experiments.sweep).

The CLI is the shard-chaos vehicle: a faulted run must exit 2 with a
quarantine table and partial outputs, and a fault-free ``--resume`` must
finish from the block checkpoints, exit 0, and write byte-identical
outputs to an undisturbed run.
"""

from __future__ import annotations

import pytest

from repro.experiments.sweep import build_specs, main

FAST = [
    "--kind", "lesk", "--n", "16", "--adversary", "saturating",
    "--eps", "0.5", "--T", "8", "--reps", "8", "--block-size", "4",
    "--backoff", "0.01",
]

CHAOS = "block0:kill@1,block0:kill@2,block0:kill@3"


class TestBuildSpecs:
    def test_grid_order_and_paths(self):
        specs = build_specs(
            ["lesk", "lesu"], [16, 32], ["none"], 0.5, 8, 4, 7, 99
        )
        assert [s.kind for s in specs] == ["lesk", "lesk", "lesu", "lesu"]
        assert [s.n for s in specs] == [16, 32, 16, 32]
        assert [s.path for s in specs] == [(99, 0), (99, 1), (99, 2), (99, 3)]

    def test_paths_depend_on_ordinal_not_parameters(self):
        a = build_specs(["lesk"], [16], ["none"], 0.5, 8, 4, 7, 99)
        b = build_specs(["lesk"], [64], ["none"], 0.5, 8, 4, 7, 99)
        assert a[0].path == b[0].path == (99, 0)


class TestHealthyRun:
    def test_exit_zero_and_outputs(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(FAST + ["--jobs", "1", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "SWEEP" in stdout and "quarantined=0" in stdout
        assert (out / "sweep.txt").exists()
        assert (out / "sweep.csv").exists()
        assert (out / "sweep-manifest.json").exists()
        assert not (out / "failures.txt").exists()
        assert len(list((out / "shards").glob("block-*.json"))) == 2

    def test_jobs_invariance(self, tmp_path, capsys):
        one, two = tmp_path / "one", tmp_path / "two"
        assert main(FAST + ["--jobs", "1", "--out", str(one)]) == 0
        assert main(FAST + ["--jobs", "2", "--out", str(two)]) == 0
        capsys.readouterr()
        assert (one / "sweep.txt").read_text() == (two / "sweep.txt").read_text()


class TestChaosAndResume:
    def test_kill_chaos_exits_2_then_resume_bit_reproduces(
        self, tmp_path, capsys
    ):
        healthy, chaos = tmp_path / "healthy", tmp_path / "chaos"
        assert main(FAST + ["--jobs", "2", "--out", str(healthy)]) == 0
        code = main(
            FAST
            + ["--jobs", "2", "--out", str(chaos), "--keep-going",
               "--inject-faults", CHAOS]
        )
        assert code == 2
        stdout = capsys.readouterr().out
        assert "SHARD-FAILURES" in stdout
        assert "crash" in (chaos / "failures.txt").read_text()
        # The resume run carries NO fault spec, so the poison block
        # completes; outputs must be byte-identical to the healthy run.
        assert main(
            FAST + ["--jobs", "2", "--out", str(chaos), "--resume"]
        ) == 0
        assert "restored=1" in capsys.readouterr().out
        assert (
            (chaos / "sweep.txt").read_text()
            == (healthy / "sweep.txt").read_text()
        )
        assert not (chaos / "failures.txt").exists()

    def test_total_failure_exits_1(self, tmp_path, capsys):
        # Both blocks poisoned: nothing usable -> exit 1 even with
        # keep_going.
        plan = CHAOS + ",block1:kill@1,block1:kill@2,block1:kill@3"
        code = main(
            FAST
            + ["--jobs", "2", "--out", str(tmp_path / "dead"),
               "--keep-going", "--inject-faults", plan]
        )
        capsys.readouterr()
        assert code == 1

    def test_quarantine_without_keep_going_exits_1(self, tmp_path, capsys):
        code = main(
            FAST + ["--jobs", "2", "--inject-faults", CHAOS]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "SHARD-FAILURES" in err


class TestResumeValidation:
    def test_resume_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            main(FAST + ["--resume"])
        capsys.readouterr()

    def test_resume_refuses_parameter_drift(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(FAST + ["--jobs", "1", "--out", str(out)]) == 0
        code = main(
            FAST + ["--jobs", "1", "--out", str(out), "--resume",
                    "--seed", "999"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "refusing to resume" in err

    def test_resume_into_empty_dir_refused(self, tmp_path, capsys):
        code = main(
            FAST + ["--jobs", "1", "--out", str(tmp_path / "nothing"),
                    "--resume"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "sweep-manifest" in err

    def test_fresh_run_clears_stale_blocks(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(FAST + ["--jobs", "1", "--out", str(out)]) == 0
        stale = out / "shards" / "block-deadbeef.json"
        stale.write_text("{}")
        assert main(FAST + ["--jobs", "1", "--out", str(out)]) == 0
        capsys.readouterr()
        assert not stale.exists()


class TestArgumentValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--jobs", "0"],
            ["--block-size", "0"],
            ["--reps", "0"],
            ["--retries", "0"],
        ],
    )
    def test_bad_numbers_rejected(self, argv, capsys):
        with pytest.raises(SystemExit):
            main(FAST[2:] + argv)
        capsys.readouterr()

    def test_unknown_kind_rejected(self, capsys):
        assert main(["--kind", "nope", "--reps", "4"]) == 1
        err = capsys.readouterr().err
        # The sweep grid now compiles through the scenario layer, so the
        # message is path-qualified like any scenario validation error.
        assert "grid.kind[0]" in err
        assert "unknown cell kind 'nope'" in err

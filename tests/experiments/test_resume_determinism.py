"""Resume determinism: an interrupted-then-resumed run must produce
byte-identical outputs to an uninterrupted one.

This holds by construction -- seeds are derived from ``(root seed,
experiment path, repetition)`` before any work is dispatched, and results
cross the worker boundary in the same canonical JSON form checkpoints use
-- but it is the property the whole checkpointing design rests on, so it
is pinned here for both serial and parallel dispatch.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.run_all import main

IDS = "T10,A8,T3,F2"
FAILED = ("A8", "T3")


def run_main(*argv):
    return main([*argv, "--preset", "small", "--only", IDS, "--backoff", "0.01"])


@pytest.mark.parametrize("jobs", ["1", "4"])
def test_interrupted_resume_bit_reproduces(tmp_path, capsys, jobs):
    clean = tmp_path / "clean"
    interrupted = tmp_path / "interrupted"

    assert run_main("--out", str(clean), "--jobs", jobs) == 0

    # "Kill" the run after K experiments: two ids fail permanently and are
    # left unchecked-pointed, exactly as if the run had died before them.
    faults = ",".join(f"{i}:config@1" for i in FAILED)
    assert (
        run_main("--out", str(interrupted), "--jobs", jobs, "--inject-faults", faults)
        == 2
    )
    for exp_id in FAILED:
        assert not (interrupted / "checkpoints" / f"{exp_id}.json").exists()

    # Resume recomputes only the missing ids and restores the rest.
    assert run_main("--resume", str(interrupted), "--jobs", jobs) == 0
    capsys.readouterr()
    restored = {
        json.loads(line)["id"]
        for line in (interrupted / "journal.jsonl").read_text().splitlines()
        if json.loads(line)["event"] == "restored"
    }
    assert restored == set(IDS.split(",")) - set(FAILED)

    for exp_id in IDS.split(","):
        for ext in (".txt", ".csv"):
            a = (clean / f"{exp_id}{ext}").read_bytes()
            b = (interrupted / f"{exp_id}{ext}").read_bytes()
            assert a == b, f"{exp_id}{ext} diverged between clean and resumed run"
    assert not (interrupted / "failures.txt").exists()

"""Smoke tests: every experiment runs at a tiny preset and its table
carries the structure the claim needs.

These intentionally re-run the "small" presets (seconds in total); the
headline shape assertions -- who wins, scaling slopes, success rates --
live in tests/integration/test_paper_claims.py against the same presets.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import Table
from repro.experiments.run_all import EXPERIMENT_MODULES, run_experiment


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENT_MODULES))
def test_experiment_runs_and_produces_table(exp_id):
    table = run_experiment(exp_id, "small")
    assert isinstance(table, Table)
    assert table.name == exp_id
    assert table.rows, f"{exp_id} produced no rows"
    assert table.claim
    text = table.render()
    assert exp_id in text
    csv = table.to_csv()
    assert len(csv.splitlines()) == len(table.rows) + 1


def test_run_all_cli_subset(tmp_path, capsys):
    from repro.experiments.run_all import main

    rc = main(["--preset", "small", "--only", "T10", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "T10" in out
    assert (tmp_path / "T10.txt").exists()
    assert (tmp_path / "T10.csv").exists()


def test_run_all_rejects_unknown_id():
    from repro.experiments.run_all import main

    with pytest.raises(SystemExit):
        main(["--only", "T99"])


def test_run_all_parallel_matches_serial(tmp_path, capsys):
    """--jobs N produces byte-identical tables (seeds are pre-derived)."""
    from repro.experiments.run_all import main

    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    assert main(["--preset", "small", "--only", "T10,A7", "--out", str(serial_dir)]) == 0
    assert (
        main(
            ["--preset", "small", "--only", "T10,A7", "--out", str(parallel_dir),
             "--jobs", "2"]
        )
        == 0
    )
    capsys.readouterr()
    for name in ("T10.csv", "A7.csv"):
        assert (serial_dir / name).read_text() == (parallel_dir / name).read_text()


def test_run_all_rejects_bad_jobs():
    from repro.experiments.run_all import main

    import pytest as _pytest

    with _pytest.raises(SystemExit):
        main(["--jobs", "0", "--only", "T10"])

"""Tests for the CSV quick-look renderer (repro.experiments.figures)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import load_numeric_columns, main, render_csv

CSV = "slot,u,label\n0,1.5,a\n1,2.5,b\n2,3.5,c\n"


class TestLoad:
    def test_numeric_columns_only(self):
        cols = load_numeric_columns(CSV)
        assert set(cols) == {"slot", "u"}
        assert cols["u"] == [1.5, 2.5, 3.5]

    def test_empty_header_rejected(self):
        with pytest.raises(ConfigurationError):
            load_numeric_columns("")


class TestRender:
    def test_renders_all_numeric_columns(self):
        out = render_csv(CSV)
        assert "-- slot" in out and "-- u " in out

    def test_no_numeric_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            render_csv("a,b\nx,y\nz,w\n")

    def test_cli(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        path.write_text(CSV)
        assert main([str(path), "--height", "4"]) == 0
        out = capsys.readouterr().out
        assert str(path) in out

    def test_on_real_experiment_csv(self, tmp_path):
        from repro.experiments.run_all import run_experiment

        table = run_experiment("F1", "small")
        out = render_csv(table.to_csv())
        assert "u_lesk" in out and "u_symmetric" in out

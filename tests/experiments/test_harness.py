"""Tests for the experiment harness (repro.experiments.harness)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    Column,
    Table,
    preset_value,
    render_tables,
    replicate,
    summarize_times,
)
from repro.rng import derive_seed


class FakeResult:
    def __init__(self, slots, elected=True):
        self.slots = slots
        self.elected = elected


class TestPreset:
    def test_values(self):
        assert preset_value("small", 1, 2) == 1
        assert preset_value("full", 1, 2) == 2

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            preset_value("medium", 1, 2)


class TestTable:
    def make(self):
        return Table(
            name="TX",
            title="demo",
            claim="something holds",
            columns=[Column("n", "n"), Column("v", "value", ".2f")],
        )

    def test_render_contains_everything(self):
        t = self.make()
        t.add_row(n=4, v=1.234)
        t.add_note("a note")
        text = t.render()
        assert "TX: demo" in text
        assert "claim: something holds" in text
        assert "1.23" in text
        assert "note: a note" in text

    def test_missing_value_renders_dash(self):
        t = self.make()
        t.add_row(n=4)
        assert "-" in t.render()

    def test_csv(self):
        t = self.make()
        t.add_row(n=4, v=1.5)
        assert t.to_csv().splitlines() == ["n,v", "4,1.5"]

    def test_column_values(self):
        t = self.make()
        t.add_row(n=4, v=1.0)
        t.add_row(n=8, v=2.0)
        assert t.column_values("n") == [4, 8]

    def test_render_tables_joins(self):
        t1, t2 = self.make(), self.make()
        assert render_tables([t1, t2]).count("TX: demo") == 2

    def test_format_fallback_for_unformattable(self):
        t = self.make()
        t.add_row(n=4, v="not-a-number")
        assert "not-a-number" in t.render()

    def test_csv_quotes_commas_and_quotes(self):
        import csv
        import io

        t = self.make()
        t.add_row(n='medium, with "quotes"', v=1.5)
        t.add_row(n="line\nbreak", v=2.0)
        parsed = list(csv.reader(io.StringIO(t.to_csv() + "\n")))
        assert parsed == [
            ["n", "v"],
            ['medium, with "quotes"', "1.5"],
            ["line\nbreak", "2.0"],
        ]


class TestReplicate:
    def test_stable_seed_derivation(self):
        seen = replicate(lambda s: s, 3, 99, 1, 2)
        again = replicate(lambda s: s, 3, 99, 1, 2)
        assert seen == again
        assert seen == [derive_seed(99, 1, 2, r) for r in range(3)]

    def test_distinct_paths_distinct_seeds(self):
        a = replicate(lambda s: s, 2, 99, 1)
        b = replicate(lambda s: s, 2, 99, 2)
        assert set(a).isdisjoint(b)

    def test_rejects_zero_reps(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda s: s, 0, 1)


class TestSummarize:
    def test_statistics(self):
        results = [FakeResult(s) for s in (10, 20, 30, 40, 100)]
        stats = summarize_times(results)
        assert stats["reps"] == 5
        assert stats["median_slots"] == 30
        assert stats["mean_slots"] == 40
        assert stats["max_slots"] == 100
        assert stats["success_rate"] == 1.0

    def test_failures_counted(self):
        results = [FakeResult(10), FakeResult(99, elected=False)]
        stats = summarize_times(results)
        assert stats["success_rate"] == 0.5
        assert stats["success_lo"] < 0.5 < stats["success_hi"]

    def test_empty_results_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no results to summarize"):
            summarize_times([])

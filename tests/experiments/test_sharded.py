"""Tests for the sharded sweep scheduler (ShardedScheduler + CellSpec).

The determinism law: the rep-block partition and per-block seeds depend
only on ``(reps, block_size)`` and the spec's seed path -- never on the
job count -- so any ``jobs`` produces bit-identical results.  Telemetry
shards produced inside worker processes must come home to the parent sink,
and an unbatchable component must fall back *loudly* (counter + one-time
warning), never silently.
"""

from __future__ import annotations

import logging

import pytest

from repro import telemetry
from repro.core.config import default_slot_budget
from repro.errors import ConfigurationError
from repro.experiments import harness
from repro.experiments.cells import (
    CellSpec,
    cell_slot_budget,
    lesk_cell,
    lesu_cell,
    run_cells_sharded,
)
from repro.experiments.harness import ShardedScheduler, record_engine_fallback

SPECS = [
    CellSpec(
        kind="lesk", n=64, eps=0.5, T=8, adversary="single-suppressor",
        reps=40, root_seed=11, path=(1, 0),
    ),
    CellSpec(
        kind="lesu", n=64, eps=0.5, T=8, adversary="saturating",
        reps=40, root_seed=11, path=(1, 1),
    ),
]


def _key(results):
    return [(r.slots, r.elected, r.jams) for r in results]


class TestDeterminism:
    def test_jobs_do_not_change_results(self):
        serial = run_cells_sharded(SPECS, jobs=1, block_size=16)
        pooled = run_cells_sharded(SPECS, jobs=3, block_size=16)
        assert [_key(c) for c in serial] == [_key(c) for c in pooled]

    def test_results_grouped_per_spec_in_order(self):
        cells = run_cells_sharded(SPECS, jobs=1, block_size=16)
        assert len(cells) == len(SPECS)
        for spec, results in zip(SPECS, cells):
            assert len(results) == spec.reps
            assert all(r.n == spec.n for r in results)

    def test_block_partition(self):
        with ShardedScheduler(jobs=1, block_size=16) as sched:
            assert sched.blocks_for(40) == [16, 16, 8]
            assert sched.blocks_for(16) == [16]
            assert sched.blocks_for(3) == [3]

    def test_block_partition_edge_cases(self):
        with ShardedScheduler(jobs=1, block_size=1) as unit:
            assert unit.blocks_for(1) == [1]
            assert unit.blocks_for(5) == [1] * 5
        with ShardedScheduler(jobs=1, block_size=16) as sched:
            assert sched.blocks_for(1) == [1]
            assert sched.blocks_for(17) == [16, 1]  # remainder of one
            assert sched.blocks_for(15) == [15]  # single short block
            assert sched.blocks_for(48) == [16, 16, 16]  # exact multiple
        with ShardedScheduler(jobs=1, block_size=10**6) as huge:
            assert huge.blocks_for(7) == [7]  # block_size >> reps

    def test_block_partition_covers_reps_exactly(self):
        with ShardedScheduler(jobs=1, block_size=7) as sched:
            for reps in range(1, 60):
                blocks = sched.blocks_for(reps)
                assert sum(blocks) == reps
                assert all(b == 7 for b in blocks[:-1])
                assert 1 <= blocks[-1] <= 7

    def test_scalar_and_batched_paths_shard_identically_in_law(self):
        """Sharding composes with either engine: same spec, scalar path,
        still deterministic across job counts."""
        spec = CellSpec(
            kind="lesk", n=64, eps=0.5, T=8, adversary="saturating",
            reps=24, root_seed=3, path=(9,), batched=False,
        )
        a = run_cells_sharded([spec], jobs=1, block_size=8)
        b = run_cells_sharded([spec], jobs=2, block_size=8)
        assert _key(a[0]) == _key(b[0])


class TestBlockSeedCollisionFreedom:
    """Property test: block seeds ``(root_seed, *path, SHARD_BLOCK_TAG, b)``
    depend only on the spec and the partition -- so for any job count and
    any kill schedule the per-spec results are bit-identical, and no two
    (spec, block) units can share a seed path."""

    SPECS = [
        CellSpec(
            kind="lesk", n=32, eps=0.5, T=8, adversary="saturating",
            reps=24, root_seed=5, path=(6, i),
        )
        for i in range(3)
    ]

    @pytest.mark.parametrize(
        "jobs,kill_schedule",
        [
            (1, None),
            (2, None),
            (3, None),
            (2, "block0:kill@1"),
            (2, "block2:kill@1,block5:kill@1"),
            (3, "block1:kill@1,block1:kill@2,block4:kill@1"),
        ],
    )
    def test_any_jobs_and_kill_schedule_bit_identical(self, jobs, kill_schedule):
        from repro.experiments.faults import FaultPlan
        from repro.experiments.retry import RetryPolicy

        reference = run_cells_sharded(self.SPECS, jobs=1, block_size=8)
        plan = (
            FaultPlan.from_spec(kill_schedule) if kill_schedule else None
        )
        chaotic = run_cells_sharded(
            self.SPECS, jobs=jobs, block_size=8, fault_plan=plan,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.001),
        )
        assert [_key(c) for c in chaotic] == [_key(c) for c in reference]

    def test_seed_paths_are_unique_across_blocks_and_specs(self):
        from repro.experiments.cells import SHARD_BLOCK_TAG

        paths = set()
        with ShardedScheduler(jobs=1, block_size=8) as sched:
            for spec in self.SPECS:
                for b, _ in enumerate(sched.blocks_for(spec.reps)):
                    path = (spec.root_seed, *spec.path, SHARD_BLOCK_TAG, b)
                    assert path not in paths
                    paths.add(path)
        assert len(paths) == 9  # 3 specs x 3 blocks

    def test_blocks_of_one_spec_produce_distinct_streams(self):
        """Adjacent blocks must not reuse seeds: identical parameters,
        different block index, different replicate outcomes."""
        cells = run_cells_sharded(
            [self.SPECS[0]], jobs=1, block_size=8
        )
        blocks = [_key(cells[0][i * 8:(i + 1) * 8]) for i in range(3)]
        assert blocks[0] != blocks[1] != blocks[2]


class TestTelemetryMerge:
    def test_worker_shards_merge_into_parent_sink(self):
        spec = CellSpec(
            kind="lesk", n=64, eps=0.5, T=8, adversary="saturating",
            reps=32, root_seed=7, path=(2,),
        )
        with telemetry.collecting() as sink:
            run_cells_sharded([spec], jobs=3, block_size=8)
        assert sink.metrics.counter_total("jam_slots_total") > 0

    def test_in_process_path_merges_once_not_twice(self):
        """jobs=1 runs shards in-process, where ``collecting()`` already
        merges outward; the scheduler must not merge the same shard again."""
        spec = CellSpec(
            kind="lesk", n=64, eps=0.5, T=8, adversary="saturating",
            reps=16, root_seed=7, path=(2,),
        )
        with telemetry.collecting() as once:
            run_cells_sharded([spec], jobs=1, block_size=16)
        with telemetry.collecting() as pooled:
            run_cells_sharded([spec], jobs=2, block_size=16)
        assert (
            once.metrics.counter_total("jam_slots_total")
            == pooled.metrics.counter_total("jam_slots_total")
            > 0
        )


class TestLoudFallback:
    def test_counter_and_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(harness, "_FALLBACK_WARNED", set())
        with telemetry.collecting() as sink:
            with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
                record_engine_fallback("adversary 'hypothetical'", reason="test")
                record_engine_fallback("adversary 'hypothetical'", reason="test")
        assert sink.metrics.counter_total("engine_fallback_total") == 2
        warnings = [r for r in caplog.records if "no vectorized" in r.getMessage()]
        assert len(warnings) == 1  # warned once, counted twice

    def test_unbatchable_adversary_falls_back_loudly(self, monkeypatch, caplog):
        from repro.adversary import suite
        from repro.adversary.oblivious import NoJamming

        monkeypatch.setitem(
            suite.STRATEGY_REGISTRY, "scalar-only", lambda T, eps: NoJamming()
        )
        monkeypatch.setattr(harness, "_FALLBACK_WARNED", set())
        with telemetry.collecting() as sink:
            with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
                results = lesk_cell(
                    64, 0.5, 8, "scalar-only", 4, 13, 0, batched=True
                )
        assert len(results) == 4 and all(r.elected for r in results)
        assert sink.metrics.counter_total("engine_fallback_total") == 1
        assert any(
            "scalar-only" in r.getMessage() and "falling back" in r.getMessage()
            for r in caplog.records
        )


class TestScheduleCache:
    def test_budget_cache_transparent(self):
        cell_slot_budget.cache_clear()
        a = cell_slot_budget(64, 0.5, 8, "lesu")
        b = cell_slot_budget(64, 0.5, 8, "lesu")
        assert a == b == default_slot_budget(64, 0.5, 8, "lesu")
        assert cell_slot_budget.cache_info().hits >= 1

    def test_lesu_schedule_cache_matches_fresh_iterator(self):
        """The memoised diagonal schedule table is lazily extended but must
        reproduce :func:`repro.protocols.lesu.lesu_schedule` exactly."""
        from repro.protocols.lesu import DEFAULT_C, lesu_schedule
        from repro.protocols.vector import _lesu_table

        _lesu_table.cache_clear()
        table = _lesu_table(DEFAULT_C, 3)
        assert _lesu_table(DEFAULT_C, 3) is table
        assert _lesu_table.cache_info().hits == 1
        fresh = lesu_schedule(DEFAULT_C * 2.0 ** (1 + 3))
        for i, sub in zip(range(8), fresh):
            got = table.get(i)
            assert (got.eps, got.duration) == (sub.eps, sub.duration)

    def test_lesu_schedule_cache_fixed_seed_pin(self):
        """Cached schedules must not perturb results: the estimator
        attacker forces real election-phase sub-runs (so the cache is
        actually consumed), repeated cells stay bit-identical, and a
        fixed-seed pin freezes the values."""
        from repro.protocols.vector import _lesu_table

        _lesu_table.cache_clear()
        first = lesu_cell(256, 0.5, 8, "single-suppressor", 6, 77, 5, batched=True)
        assert _lesu_table.cache_info().currsize >= 1
        second = lesu_cell(256, 0.5, 8, "single-suppressor", 6, 77, 5, batched=True)
        assert _lesu_table.cache_info().hits >= 1
        assert _key(first) == _key(second)
        # Fixed-seed pin guarding the cached schedule/budget combination.
        assert tuple(r.slots for r in first) == (12, 108, 14, 11, 11, 11)
        assert all(r.elected for r in first)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="cell kind"):
            CellSpec(
                kind="nope", n=8, eps=0.5, T=8, adversary="none",
                reps=1, root_seed=0, path=(),
            )

    def test_bad_reps_rejected(self):
        with pytest.raises(ConfigurationError, match="reps"):
            CellSpec(
                kind="lesk", n=8, eps=0.5, T=8, adversary="none",
                reps=0, root_seed=0, path=(),
            )

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedScheduler(jobs=0)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedScheduler(block_size=0)

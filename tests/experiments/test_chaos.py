"""Chaos tests: drive the fault-tolerant runner through injected failures.

Each scenario uses a seeded :class:`~repro.experiments.faults.FaultPlan`,
so the "chaos" replays deterministically: crash-then-retry,
permanent-failure-then-skip, timeout-then-skip, corrupt-checkpoint-then-
recompute, abort-on---no-keep-going, and a genuine SIGKILL mid-run
followed by ``--resume``.  Experiments are drawn from the fastest small
presets (T10/A8/T3 all finish in well under a second).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.run_all import main

FAST_IDS = "T10,A8,T3"


def journal_events(run_dir: Path, event: str, exp_id: str | None = None):
    records = []
    for line in (run_dir / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        if record["event"] == event and (exp_id is None or record["id"] == exp_id):
            records.append(record)
    return records


def run_main(*argv):
    return main([*argv, "--preset", "small", "--backoff", "0.01"])


def test_crash_then_retry_succeeds(tmp_path, capsys):
    rc = run_main(
        "--only", "T10", "--out", str(tmp_path), "--retries", "3",
        "--inject-faults", "T10:raise@1",
    )
    assert rc == 0
    assert "in 2 attempts" in capsys.readouterr().out
    attempts = journal_events(tmp_path, "attempt_end", "T10")
    assert [a["status"] for a in attempts] == ["error", "ok"]
    assert not attempts[0]["permanent"]
    assert "InjectedFaultError" in attempts[0]["error"]
    (done,) = journal_events(tmp_path, "done", "T10")
    assert done["status"] == "ok" and done["attempts"] == 2


def test_permanent_failure_is_never_retried(tmp_path, capsys):
    rc = run_main(
        "--only", FAST_IDS, "--out", str(tmp_path), "--retries", "3",
        "--inject-faults", "A8:config@1",
    )
    assert rc == 2  # partial success: T10 and T3 completed
    out = capsys.readouterr().out
    assert "FAILURES" in out and "ConfigurationError" in out
    (done,) = journal_events(tmp_path, "done", "A8")
    assert done["status"] == "failed" and done["attempts"] == 1
    assert (tmp_path / "failures.txt").exists()
    assert (tmp_path / "T10.csv").exists() and (tmp_path / "T3.csv").exists()
    assert not (tmp_path / "A8.csv").exists()


def test_timeout_kills_hung_worker_and_skips(tmp_path, capsys):
    start = time.perf_counter()
    rc = run_main(
        "--only", "T10,A8", "--out", str(tmp_path), "--timeout", "1.5",
        "--inject-faults", "A8:hang@1",
    )
    assert rc == 2
    assert time.perf_counter() - start < 30  # killed, not waited on forever
    assert "timeout" in capsys.readouterr().out
    (done,) = journal_events(tmp_path, "done", "A8")
    assert done["status"] == "timeout" and done["attempts"] == 1  # no retry
    (attempt,) = journal_events(tmp_path, "attempt_end", "A8")
    assert attempt["status"] == "timeout"


def test_corrupt_checkpoint_recomputed_on_resume(tmp_path, capsys):
    run = tmp_path / "run"
    clean = tmp_path / "clean"
    assert run_main(
        "--only", "T10,A8", "--out", str(run), "--inject-faults", "A8:corrupt@1"
    ) == 0
    assert run_main("--only", "T10,A8", "--resume", str(run)) == 0
    assert journal_events(run, "recompute", "A8")
    assert journal_events(run, "restored", "T10")
    assert run_main("--only", "T10,A8", "--out", str(clean)) == 0
    capsys.readouterr()
    for name in ("T10.txt", "T10.csv", "A8.txt", "A8.csv"):
        assert (run / name).read_bytes() == (clean / name).read_bytes()


def test_no_keep_going_aborts_remaining(tmp_path, capsys):
    rc = run_main(
        "--only", FAST_IDS, "--out", str(tmp_path), "--no-keep-going",
        "--inject-faults", "T10:config@1",
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "aborted" in out
    assert journal_events(tmp_path, "aborted") != []
    assert not (tmp_path / "A8.csv").exists() and not (tmp_path / "T3.csv").exists()


def test_resume_refuses_mismatched_manifest(tmp_path, capsys):
    assert run_main("--only", "T10", "--out", str(tmp_path)) == 0
    # different subset
    assert run_main("--only", "T10,A8", "--resume", str(tmp_path)) == 1
    # different seed
    assert run_main("--only", "T10", "--seed", "99", "--resume", str(tmp_path)) == 1
    err = capsys.readouterr().err
    assert "refusing to resume" in err
    assert "--preset/--only/--seed" in err


def test_out_and_resume_are_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        main(["--out", str(tmp_path / "a"), "--resume", str(tmp_path / "b")])


def test_bad_fault_spec_rejected():
    with pytest.raises(SystemExit):
        main(["--inject-faults", "T10:explode@1"])


def test_sigkill_then_resume_converges(tmp_path):
    """A run SIGKILLed mid-flight resumes to byte-identical outputs."""
    run = tmp_path / "run"
    clean = tmp_path / "clean"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.run_all",
            "--preset", "small", "--only", FAST_IDS, "--out", str(run),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60
        first = run / "checkpoints" / "T10.json"
        while not first.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert first.exists(), "first checkpoint never appeared"
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(30)
    assert run_main("--only", FAST_IDS, "--resume", str(run)) == 0
    assert run_main("--only", FAST_IDS, "--out", str(clean)) == 0
    for exp_id in FAST_IDS.split(","):
        for ext in (".txt", ".csv"):
            assert (run / f"{exp_id}{ext}").read_bytes() == (
                clean / f"{exp_id}{ext}"
            ).read_bytes(), f"{exp_id}{ext} diverged after kill+resume"

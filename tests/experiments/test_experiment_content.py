"""Content tests: each experiment's table carries the claim it makes.

The smoke tests check structure; these pin the *semantics* at the small
preset -- success rates, monotonicities, and verdicts that must hold for
the reproduction to be telling the truth.  Tables are computed once per
session (they are deterministic).
"""

from __future__ import annotations

import pytest

from repro.experiments.run_all import EXPERIMENT_MODULES, run_experiment

_cache: dict[str, object] = {}


@pytest.fixture
def table(request):
    """Session-cached small-preset table for the experiment id in the
    test's parametrization."""
    exp_id = request.param
    if exp_id not in _cache:
        _cache[exp_id] = run_experiment(exp_id, "small")
    return _cache[exp_id]


def with_table(exp_id):
    return pytest.mark.parametrize("table", [exp_id], indirect=True)


@with_table("T1")
def test_t1_lesk_always_elects_and_scales(table):
    assert all(r["success_rate"] == 1.0 for r in table.rows)
    assert all(r["per_log2n"] < 30 for r in table.rows)
    adversaries = {r["adversary"] for r in table.rows}
    assert len(adversaries) >= 3


@with_table("T2")
def test_t2_time_grows_as_eps_shrinks(table):
    rows = sorted(table.rows, key=lambda r: -r["eps"])
    medians = [r["median_slots"] for r in rows]
    assert medians == sorted(medians)
    assert all(r["success_rate"] == 1.0 for r in table.rows)


@with_table("T3")
def test_t3_hard_floor_never_violated(table):
    assert all(r["floor_ok"] for r in table.rows)
    assert all(r["success_rate"] == 1.0 for r in table.rows)


@with_table("T4")
def test_t4_bracket_containment(table):
    for r in table.rows:
        # Either the run elected via a Single or the bracket held.
        assert r["in_bracket"] == 1.0 or r["singles"] == 1.0


@with_table("T5")
def test_t5_both_regimes_succeed(table):
    assert {r["regime"] for r in table.rows} == {1, 2}
    assert all(r["success_rate"] == 1.0 for r in table.rows)
    # Upper bound: measured never exceeds the bound shape by more than a
    # small constant.
    assert all(r["ratio"] < 4.0 for r in table.rows)


@with_table("T6")
def test_t6_exactly_one_leader_always(table):
    assert all(r["unique_leader"] == 1.0 for r in table.rows)
    assert all(r["terminated"] == 1.0 for r in table.rows)
    assert all(r["overhead"] < 24.0 for r in table.rows)


@with_table("T7")
def test_t7_both_protocols_elect(table):
    assert all(r["lesk_success"] == 1.0 for r in table.rows)
    assert all(r["ars_success"] == 1.0 for r in table.rows)


@with_table("T8")
def test_t8_lesk_unbothered_sweep_not(table):
    assert all(r["lesk_success"] == 1.0 for r in table.rows)
    by_name = {r["strategy"]: r for r in table.rows}
    # The adaptive suppressor must hurt the non-robust baseline.
    assert by_name["single-suppressor"]["sweep_success"] < 0.5
    assert by_name["none"]["sweep_success"] == 1.0


@with_table("T9")
def test_t9_lesk_energy_is_the_climb_constant(table):
    for r in table.rows:
        assert r["lesk_tx"] == pytest.approx(23.6, abs=3.0)


@with_table("T10")
def test_t10_all_expected_checks_hold(table):
    for r in table.rows:
        if r["holds"] == "known-neg":
            assert r["worst_slack"] < 0  # the documented erratum
        else:
            assert r["holds"] is True, r


@with_table("F1")
def test_f1_lesk_bounded_symmetric_diverges(table):
    lesk = [r["u_lesk"] for r in table.rows]
    symm = [r["u_symmetric"] for r in table.rows]
    assert max(lesk) < 20.0
    assert symm[-1] > 100.0


@with_table("F2")
def test_f2_success_curve_rises_to_whp(table):
    rates = [r["success_rate"] for r in table.rows]
    assert rates[0] <= 0.2
    assert rates[-1] >= 0.9


@with_table("A1")
def test_a1_safe_weights_succeed(table):
    for r in table.rows:
        if r["m"] >= 2.0:
            assert r["success_rate"] == 1.0
    # Climb cost grows with m among the safe weights.
    safe = [r for r in table.rows if r["m"] >= 1.0]
    medians = [r["median_slots"] for r in sorted(safe, key=lambda r: r["m"])]
    assert medians == sorted(medians)


@with_table("A2")
def test_a2_lesu_self_corrects_for_any_c(table):
    assert all(r["success_rate"] == 1.0 for r in table.rows)


@with_table("A3")
def test_a3_both_survive_but_nocd_grows_faster(table):
    assert all(r["nocd_success"] == 1.0 for r in table.rows)
    assert all(r["lesk_success"] == 1.0 for r in table.rows)
    ratios = [r["ratio"] for r in sorted(table.rows, key=lambda r: r["n"])]
    assert ratios[-1] > ratios[0]


@with_table("A4")
def test_a4_ars_throughput_plateau(table):
    assert all(r["late"] > 0.2 for r in table.rows)


@with_table("A5")
def test_a5_building_blocks_work_under_jamming(table):
    for r in table.rows:
        assert r["size_in_bracket"] == 1.0
        assert r["fairness"] > 0.9
        assert r["size_err"] < 2.0


@with_table("A6")
def test_a6_confirmation_jammer_denies_tournament_only(table):
    for r in table.rows:
        assert r["lesk_jam_success"] == 1.0
        assert r["geo_confirm_success"] == 0.0
        assert r["saving"] > 3.0


@with_table("A7")
def test_a7_lesu_succeeds_and_overhead_below_worst_case(table):
    for r in table.rows:
        assert r["lesu_success"] == 1.0
        assert r["overhead"] < r["predicted"]


def test_every_experiment_has_a_content_test():
    import inspect
    import sys

    module = sys.modules[__name__]
    covered = set()
    for _, fn in inspect.getmembers(module, inspect.isfunction):
        for mark in getattr(fn, "pytestmark", []):
            if mark.name == "parametrize" and mark.args[0] == "table":
                covered.update(mark.args[1])
    assert covered == set(EXPERIMENT_MODULES), (
        f"missing content tests for {set(EXPERIMENT_MODULES) - covered}"
    )


@with_table("A8")
def test_a8_searched_attacks_stay_within_bound(table):
    for r in table.rows:
        assert r["within"] is True
        assert r["slowdown"] < 3.0


@with_table("A10")
def test_a10_churn_cheap_corruption_sharp(table):
    rows = {(r["protocol"], r["fault"], r["rate"]): r for r in table.rows}
    for protocol in ("lesk", "lesu"):
        # Fault-free baseline and every churn severity fully succeed;
        # doomed leaders are recovered by restart supervision.
        assert rows[(protocol, "none", 0.0)]["success_rate"] == 1.0
        for key, r in rows.items():
            if key[0] == protocol and key[1] == "churn":
                assert r["success_rate"] == 1.0
                assert r["leader_crashes"] == 0
        # Corruption is the sharp axis: success is non-increasing in
        # severity and drops below 1 at the top of the sweep.
        corr = sorted(
            (r for k, r in rows.items() if k[0] == protocol and k[1] == "corruption"),
            key=lambda r: r["rate"],
        )
        successes = [r["success_rate"] for r in corr]
        assert successes == sorted(successes, reverse=True)
        assert successes[-1] < 1.0


@with_table("A9")
def test_a9_doubling_survives_fixed_does_not(table):
    rows = {(r["partition"].split()[0], r["environment"]): r for r in table.rows}
    assert rows[("doubling", "C3-killer jammer")]["success_rate"] == 1.0
    assert rows[("fixed", "C3-killer jammer")]["success_rate"] == 0.0
    # Both work on a quiet channel (L was chosen above t(n)).
    assert rows[("doubling", "quiet")]["success_rate"] == 1.0
    assert rows[("fixed", "quiet")]["success_rate"] == 1.0

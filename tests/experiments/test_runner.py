"""Unit tests for the fault-tolerant runner building blocks:
retry policy, fault plans, checkpoint directories, and outcome summaries.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.experiments.checkpoint import (
    RunDir,
    atomic_write_text,
    build_manifest,
    corrupt_checkpoint,
    payload_checksum,
    table_payload,
)
from repro.experiments.faults import Fault, FaultPlan, InjectedFaultError
from repro.experiments.harness import Column, Table
from repro.experiments.runner import (
    ExperimentOutcome,
    RetryPolicy,
    RunnerConfig,
    exit_code,
    failure_table,
)


def make_table(name="TX"):
    table = Table(
        name=name,
        title="demo",
        claim="something holds",
        columns=[
            Column("k", "key"),
            Column("v", "value", ".3f"),
            Column("note", "note"),
        ],
    )
    table.add_row(k="a", v=np.float64(1.25), note='says "hi", twice')
    table.add_row(k="b", v=float("nan"), note=None)
    table.add_note("fitted on 2 points")
    return table


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=4.0, seed=7)
        delays = [policy.delay("T1", a) for a in (1, 2, 3, 4, 5)]
        assert delays == [policy.delay("T1", a) for a in (1, 2, 3, 4, 5)]
        for attempt, delay in enumerate(delays, start=1):
            raw = min(4.0, 1.0 * 2 ** (attempt - 1))
            assert 0.5 * raw <= delay < 1.5 * raw

    def test_jitter_decorrelates_experiments(self):
        policy = RetryPolicy(backoff_base=1.0, seed=7)
        assert policy.delay("T1", 1) != policy.delay("T2", 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ConfigurationError):
            RunnerConfig(jobs=0)
        with pytest.raises(ConfigurationError):
            RunnerConfig(timeout=0)


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan.from_spec("T1:raise@1, T7:hang@2 ,A8:corrupt")
        assert plan.faults == (
            Fault("T1", "raise", 1),
            Fault("T7", "hang", 2),
            Fault("A8", "corrupt", 1),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_bad_specs(self):
        for spec in ("T1", "T1:explode", "T1:raise@x", "T1:raise@0"):
            with pytest.raises(ConfigurationError):
                FaultPlan.from_spec(spec)

    def test_fire_raise_and_config(self):
        plan = FaultPlan.from_spec("T1:raise@2,T2:config@1")
        plan.fire("T1", 1)  # not this attempt: no-op
        plan.fire("T9", 1)  # not this experiment: no-op
        with pytest.raises(InjectedFaultError):
            plan.fire("T1", 2)
        with pytest.raises(ConfigurationError):
            plan.fire("T2", 1)

    def test_corrupt_is_post_run_only(self):
        plan = FaultPlan.from_spec("T1:corrupt@1")
        plan.fire("T1", 1)  # corrupt never fires pre-run
        assert plan.should_corrupt("T1", 1)
        assert not plan.should_corrupt("T1", 2)


class TestTableJsonRoundtrip:
    def test_render_and_csv_are_byte_identical(self):
        table = make_table()
        clone = Table.from_jsonable(json.loads(json.dumps(table.to_jsonable())))
        assert clone.render() == table.render()
        assert clone.to_csv() == table.to_csv()

    def test_numpy_scalars_demoted(self):
        data = make_table().to_jsonable()
        assert isinstance(data["rows"][0]["v"], float)


class TestRunDir:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "x.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert list(tmp_path.iterdir()) == [target]

    def test_save_load_roundtrip_and_checksum(self, tmp_path):
        run_dir = RunDir(tmp_path)
        run_dir.init(build_manifest("small", ["TX"], None))
        table = make_table()
        digest = run_dir.save_table(table)
        assert digest == payload_checksum(table_payload(table))
        loaded = run_dir.load_table("TX")
        assert loaded.render() == table.render()

    def test_corruption_detected(self, tmp_path):
        run_dir = RunDir(tmp_path)
        run_dir.init(build_manifest("small", ["TX"], None))
        run_dir.save_table(make_table())
        corrupt_checkpoint(run_dir.checkpoint_path("TX"), seed=3)
        with pytest.raises(ChecksumMismatchError):
            run_dir.load_table("TX")

    def test_journal_skips_torn_tail(self, tmp_path):
        run_dir = RunDir(tmp_path)
        run_dir.append_journal({"event": "attempt_start", "id": "T1"})
        run_dir.append_journal({"event": "done", "id": "T1"})
        with open(run_dir.journal_path, "a") as fh:
            fh.write('{"event": "attempt_sta')  # torn by a kill mid-write
        events = [r["event"] for r in run_dir.read_journal()]
        assert events == ["attempt_start", "done"]

    def test_manifest_strict_mismatch_refused(self, tmp_path):
        run_dir = RunDir(tmp_path)
        run_dir.init(build_manifest("small", ["T1", "T2"], 11))
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_dir.validate_manifest(build_manifest("full", ["T1", "T2"], 11))
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_dir.validate_manifest(build_manifest("small", ["T1"], 11))
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_dir.validate_manifest(build_manifest("small", ["T1", "T2"], 12))
        assert run_dir.validate_manifest(
            build_manifest("small", ["T1", "T2"], 11)
        ) == []

    def test_manifest_advisory_mismatch_warns(self, tmp_path):
        run_dir = RunDir(tmp_path)
        manifest = build_manifest("small", ["T1"], None)
        stored = dict(manifest, numpy="0.0.1")
        run_dir.init(stored)
        warnings = run_dir.validate_manifest(manifest)
        assert len(warnings) == 1 and "numpy" in warnings[0]

    def test_missing_manifest_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no manifest.json"):
            RunDir(tmp_path).validate_manifest(build_manifest("small", ["T1"], None))

    def test_init_clears_stale_state(self, tmp_path):
        run_dir = RunDir(tmp_path)
        run_dir.init(build_manifest("small", ["TX"], 1))
        run_dir.save_table(make_table())
        run_dir.append_journal({"event": "done", "id": "TX"})
        run_dir.init(build_manifest("small", ["TX"], 2))
        assert not run_dir.has_checkpoint("TX")
        assert run_dir.read_journal() == []


class TestOutcomes:
    def outcomes(self, *statuses):
        return [
            ExperimentOutcome(f"T{i}", status, attempts=1, error="boom")
            for i, status in enumerate(statuses, start=1)
        ]

    def test_exit_codes(self):
        assert exit_code(self.outcomes("ok", "restored")) == 0
        assert exit_code(self.outcomes("ok", "failed")) == 2
        assert exit_code(self.outcomes("ok", "timeout")) == 2
        assert exit_code(self.outcomes("failed", "timeout")) == 1
        assert exit_code(self.outcomes("ok", "failed", "aborted")) == 1

    def test_failure_table_lists_only_failures(self):
        table = failure_table(self.outcomes("ok", "failed", "timeout"))
        assert [row["id"] for row in table.rows] == ["T2", "T3"]
        assert "graceful degradation" in table.claim

"""Chaos suite for the block-level shard supervisor.

The contract under test mirrors the paper's adversary model applied to
the execution layer: worker kills, hangs and corrupted results are the
"jamming", and the supervisor must still deliver bit-identical sweep
results (deterministic block seeds + bounded retry + redispatch), or
degrade gracefully into an explicit quarantine -- never silently lose or
duplicate work.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import telemetry
from repro.errors import ConfigurationError, ShardFailureError
from repro.experiments.cells import (
    CellSpec,
    run_cell_direct,
    run_cells,
    run_cells_sharded,
    run_cells_sharded_report,
    run_shard,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.harness import ShardedScheduler
from repro.experiments.retry import RetryPolicy
from repro.experiments.shard_supervisor import (
    BlockCheckpointStore,
    BlockSupervisor,
    ShardContext,
    SupervisionConfig,
    get_shard_context,
    shard_context,
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.01)

SPEC = CellSpec(
    kind="lesk", n=32, eps=0.5, T=8, adversary="saturating",
    reps=16, root_seed=21, path=(3, 0),
)


def _key(results):
    return [(r.slots, r.elected, r.jams) for r in results]


def _baseline(block_size=4):
    return run_cells_sharded([SPEC], jobs=1, block_size=block_size)


# -- module-level worker fns (picklable by reference) ------------------------


def _double(item):
    return [2 * x for x in item]


def _sleepy(item):
    time.sleep(item[0])
    return list(item)


def _raise_value_error(item):
    raise ValueError(f"transient {item}")


def _raise_config_error(item):
    raise ConfigurationError(f"bad cell {item}")


_FLAKY_CALLS = {"n": 0}


def _flaky_twice(item):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] < 3:
        raise ValueError("transient")
    return list(item)


class TestCrashRedispatch:
    def test_killed_worker_block_is_redispatched_bit_identically(self):
        plan = FaultPlan.from_spec("block0:kill@1")
        chaotic = run_cells_sharded(
            [SPEC], jobs=2, block_size=4, retry=FAST_RETRY, fault_plan=plan
        )
        assert [_key(c) for c in chaotic] == [_key(c) for c in _baseline()]

    def test_redispatch_counted_in_report(self):
        plan = FaultPlan.from_spec("block1:kill@1")
        _, _, report = run_cells_sharded_report(
            [SPEC], jobs=2, block_size=4, retry=FAST_RETRY, fault_plan=plan
        )
        assert report.ok
        assert report.redispatches >= 1
        assert report.completed == report.blocks == 4


class TestQuarantine:
    PLAN = "block0:kill@1,block0:kill@2,block0:kill@3"

    def test_poison_block_quarantined_with_keep_going(self):
        results, _, report = run_cells_sharded_report(
            [SPEC], jobs=2, block_size=4, retry=FAST_RETRY,
            fault_plan=FaultPlan.from_spec(self.PLAN), keep_going=True,
        )
        assert len(report.quarantined) == 1
        failure = report.quarantined[0]
        assert (failure.spec_index, failure.block_index) == (0, 0)
        assert failure.kind == "crash"
        assert failure.attempts == 3
        # Partial results: exactly the poisoned block's reps are missing,
        # and the surviving reps match the undisturbed baseline.
        assert len(results[0]) == SPEC.reps - 4
        assert _key(results[0]) == _key(_baseline()[0][4:])

    def test_quarantine_raises_without_keep_going(self):
        with pytest.raises(ShardFailureError, match="quarantined") as err:
            run_cells_sharded(
                [SPEC], jobs=2, block_size=4, retry=FAST_RETRY,
                fault_plan=FaultPlan.from_spec(self.PLAN),
            )
        assert err.value.report.quarantined

    def test_quarantine_table_renders(self):
        _, _, report = run_cells_sharded_report(
            [SPEC], jobs=2, block_size=4, retry=FAST_RETRY,
            fault_plan=FaultPlan.from_spec(self.PLAN), keep_going=True,
        )
        rendered = report.quarantine_table().render()
        assert "SHARD-FAILURES" in rendered
        assert "crash" in rendered


class TestTimeouts:
    def test_hung_block_killed_and_retried(self):
        # speculate=False so the rescue must come from the deadline kill +
        # retry, not from a speculative duplicate racing the hang.
        plan = FaultPlan.from_spec("block0:hang@1")
        chaotic, _, report = run_cells_sharded_report(
            [SPEC], jobs=2, block_size=4, block_timeout=3.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001,
                              retry_timeouts=True),
            fault_plan=plan, speculate=False,
        )
        assert report.ok and report.retries >= 1
        assert [_key(c) for c in chaotic] == [_key(c) for c in _baseline()]

    def test_timeout_permanent_unless_retry_timeouts(self):
        plan = FaultPlan.from_spec("block0:hang@1")
        _, _, report = run_cells_sharded_report(
            [SPEC], jobs=2, block_size=4, block_timeout=1.0,
            retry=FAST_RETRY, fault_plan=plan, keep_going=True,
            speculate=False,
        )
        assert len(report.quarantined) == 1
        assert report.quarantined[0].kind == "timeout"
        assert report.quarantined[0].attempts == 1


class TestCorruptResult:
    def test_corrupt_fault_perturbs_exactly_one_block(self):
        plan = FaultPlan.from_spec("block0:corrupt-result@1")
        corrupted = run_cells_sharded(
            [SPEC], jobs=2, block_size=4, retry=FAST_RETRY, fault_plan=plan
        )
        base = _baseline()
        assert _key(corrupted[0][:4]) != _key(base[0][:4])
        assert [r.slots for r in corrupted[0][:4]] == [
            r.slots + 1 for r in base[0][:4]
        ]
        assert _key(corrupted[0][4:]) == _key(base[0][4:])


class TestSpeculation:
    def test_straggler_is_speculated_first_result_wins(self):
        config = SupervisionConfig(
            jobs=2, retry=FAST_RETRY, straggler_min_done=3,
            straggler_factor=4.0,
        )
        items = [(0, b, (0.0,)) for b in range(6)] + [(0, 6, (0.6,))]
        payloads, report = BlockSupervisor(_sleepy, config).run(items, 1)
        assert report.ok and report.completed == 7
        assert report.speculative_launches >= 1
        assert report.speculative_mismatches == 0
        assert payloads[6] == [0.6]

    def test_speculation_can_be_disabled(self):
        config = SupervisionConfig(jobs=2, retry=FAST_RETRY, speculate=False)
        items = [(0, b, (0.0,)) for b in range(6)] + [(0, 6, (0.3,))]
        _, report = BlockSupervisor(_sleepy, config).run(items, 1)
        assert report.speculative_launches == 0


class TestInlinePath:
    def test_transient_error_retried_then_succeeds(self):
        _FLAKY_CALLS["n"] = 0
        config = SupervisionConfig(jobs=1, retry=FAST_RETRY)
        payloads, report = BlockSupervisor(_flaky_twice, config).run(
            [(0, 0, (7,))], 1
        )
        assert payloads == [[7]]
        assert report.retries == 2 and report.ok

    def test_repro_error_is_permanent(self):
        config = SupervisionConfig(jobs=1, retry=FAST_RETRY, keep_going=True)
        payloads, report = BlockSupervisor(_raise_config_error, config).run(
            [(0, 0, (7,))], 1
        )
        assert payloads == [None]
        assert report.quarantined[0].attempts == 1  # no retry for ReproError

    def test_transient_error_exhausts_attempts(self):
        config = SupervisionConfig(jobs=1, retry=FAST_RETRY, keep_going=True)
        _, report = BlockSupervisor(_raise_value_error, config).run(
            [(0, 0, (7,))], 1
        )
        assert report.quarantined[0].attempts == FAST_RETRY.max_attempts
        assert report.retries == FAST_RETRY.max_attempts - 1

    def test_inline_kill_fault_rejected(self):
        plan = FaultPlan.from_spec("block0:kill@1")
        config = SupervisionConfig(
            jobs=1, retry=FAST_RETRY, fault_plan=plan, keep_going=True
        )
        _, report = BlockSupervisor(_double, config).run([(0, 0, [1])], 1)
        # fire_block(in_process=True) raises ConfigurationError -> permanent.
        assert report.quarantined[0].kind == "error"
        assert "needs worker processes" in report.quarantined[0].message


class TestBlockCheckpoints:
    def _specs(self):
        return [SPEC]

    def test_checkpoint_resume_restores_and_bit_reproduces(self, tmp_path):
        first = run_cells_sharded(
            self._specs(), jobs=2, block_size=4, checkpoint_dir=tmp_path
        )
        assert len(list(tmp_path.glob("block-*.json"))) == 4
        second, _, report = run_cells_sharded_report(
            self._specs(), jobs=2, block_size=4, checkpoint_dir=tmp_path
        )
        assert report.restored == 4 and report.completed == 0
        assert [_key(c) for c in first] == [_key(c) for c in second]

    def test_torn_checkpoint_rejected_and_recomputed(self, tmp_path):
        run_cells_sharded(
            self._specs(), jobs=1, block_size=4, checkpoint_dir=tmp_path
        )
        victim = sorted(tmp_path.glob("block-*.json"))[0]
        victim.write_text(victim.read_text()[: victim.stat().st_size // 2])
        results, _, report = run_cells_sharded_report(
            self._specs(), jobs=1, block_size=4, checkpoint_dir=tmp_path
        )
        assert report.restored == 3 and report.completed == 1
        assert [_key(c) for c in results] == [_key(c) for c in _baseline()]

    def test_tampered_payload_fails_checksum(self, tmp_path):
        store = BlockCheckpointStore(tmp_path)
        key = store.block_key(SPEC, 4, 0)
        results = run_cell_direct(SPEC)[:4]
        store.save(key, results)
        data = json.loads((tmp_path / f"block-{key}.json").read_text())
        data["results"][0]["slots"] += 1
        (tmp_path / f"block-{key}.json").write_text(json.dumps(data))
        assert store.load(key) is None

    def test_keys_differ_across_specs_blocks_and_partitions(self):
        store = BlockCheckpointStore(".")
        other = CellSpec(
            kind="lesk", n=32, eps=0.5, T=8, adversary="saturating",
            reps=16, root_seed=21, path=(3, 1),
        )
        keys = {
            store.block_key(SPEC, 4, 0),
            store.block_key(SPEC, 4, 1),
            store.block_key(SPEC, 8, 0),
            store.block_key(other, 4, 0),
        }
        assert len(keys) == 4


class TestTelemetryCounters:
    def test_chaos_counters_land_in_live_sink(self):
        plan = FaultPlan.from_spec(
            "block0:kill@1,block1:kill@1,block1:kill@2,block1:kill@3"
        )
        with telemetry.collecting() as sink:
            run_cells_sharded(
                [SPEC], jobs=2, block_size=4, retry=FAST_RETRY,
                fault_plan=plan, keep_going=True,
            )
        assert sink.metrics.counter_total("shard_retries_total") >= 1
        assert sink.metrics.counter_total("shard_redispatch_total") >= 2
        assert sink.metrics.counter_total("shard_quarantined_total") == 1

    def test_restore_counter(self, tmp_path):
        run_cells_sharded([SPEC], jobs=1, block_size=4, checkpoint_dir=tmp_path)
        with telemetry.collecting() as sink:
            run_cells_sharded(
                [SPEC], jobs=1, block_size=4, checkpoint_dir=tmp_path
            )
        assert sink.metrics.counter_total("shard_blocks_restored_total") == 4


class TestShardContext:
    def test_inert_by_default(self):
        assert get_shard_context() == ShardContext()
        assert get_shard_context().jobs is None

    def test_run_cells_unsharded_matches_direct(self):
        assert _key(run_cells([SPEC])[0]) == _key(run_cell_direct(SPEC))

    def test_ambient_context_routes_to_supervised_path(self):
        with shard_context(jobs=2, block_size=4):
            ambient = run_cells([SPEC])
        explicit = run_cells_sharded([SPEC], jobs=1, block_size=4)
        assert _key(ambient[0]) == _key(explicit[0])

    def test_context_restored_after_scope(self):
        with shard_context(jobs=3):
            assert get_shard_context().jobs == 3
        assert get_shard_context().jobs is None


class TestSchedulerExitSemantics:
    class _FakePool:
        def __init__(self):
            self.calls = []

        def terminate(self):
            self.calls.append("terminate")

        def close(self):
            self.calls.append("close")

        def join(self):
            self.calls.append("join")

    def test_exception_terminates_pool(self):
        sched = ShardedScheduler(jobs=2, supervised=False)
        fake = self._FakePool()
        with pytest.raises(RuntimeError):
            with sched:
                sched._pool = fake
                raise RuntimeError("boom")
        assert fake.calls == ["terminate", "join"]

    def test_clean_exit_closes_pool(self):
        sched = ShardedScheduler(jobs=2, supervised=False)
        fake = self._FakePool()
        with sched:
            sched._pool = fake
        assert fake.calls == ["close", "join"]


class TestValidation:
    def test_bad_supervision_jobs(self):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(jobs=0)

    def test_bad_block_timeout(self):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(block_timeout=0.0)

    def test_bad_straggler_factor(self):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(straggler_factor=1.0)

    def test_run_report_requires_supervised_scheduler(self):
        with pytest.raises(ConfigurationError, match="supervised"):
            with ShardedScheduler(jobs=1, supervised=False) as sched:
                sched.run_report(run_shard, [SPEC])


class TestRunAllIntegration:
    def test_shard_jobs_flag_runs_supervised(self, tmp_path, capsys):
        import json

        from repro.experiments.run_all import main as run_all_main

        out = tmp_path / "run"
        code = run_all_main(
            ["--preset", "small", "--only", "T4", "--shard-jobs", "2",
             "--shard-block-size", "8", "--out", str(out)]
        )
        assert code == 0
        assert "[T4 done" in capsys.readouterr().out
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["sharded"] == {
            "shard_jobs": 2, "shard_block_size": 8, "shard_timeout": None,
        }
        assert list((out / "shards").glob("block-*.json"))

    def test_shard_flags_require_shard_jobs(self, capsys):
        from repro.experiments.run_all import main as run_all_main

        with pytest.raises(SystemExit):
            run_all_main(["--preset", "small", "--shard-block-size", "8"])
        capsys.readouterr()


class TestBlockFaultGrammar:
    def test_block_atoms_parse(self):
        plan = FaultPlan.from_spec("block3:kill@2,block0:corrupt-result@1")
        assert plan.block_fault_for(3, 2) is not None
        assert plan.block_fault_for(3, 1) is None
        assert plan.should_corrupt_block(0, 1)
        assert not plan.should_corrupt_block(0, 2)

    def test_experiment_kinds_rejected_on_blocks(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("block0:raise@1")

    def test_block_kinds_rejected_on_experiments(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("T1:kill@1")

    def test_mixed_spec_keeps_both_namespaces(self):
        plan = FaultPlan.from_spec("T1:raise@1,block2:hang@1")
        assert plan.fault_for("T1", 1) is not None
        assert plan.block_fault_for(2, 1) is not None

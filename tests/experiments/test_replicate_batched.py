"""replicate_batched: harness wiring of the batched engine.

Checks seed-stability, summary-dict compatibility with the scalar
``replicate`` path, and the experiment-level preset switch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.vector import make_batched_adversary
from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.experiments.cells import lesk_cell
from repro.experiments.harness import (
    batched_enabled,
    replicate,
    replicate_batched,
    summarize_times,
)
from repro.protocols.vector import VectorLESKPolicy

N = 64
EPS = 0.5
T = 8


def _batch(reps, root_seed, *path):
    return replicate_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
        reps,
        root_seed,
        *path,
        max_slots=100_000,
    )


def test_returns_runresult_list():
    results = _batch(20, 77, 3)
    assert len(results) == 20
    assert all(r.elected for r in results)
    assert all(0 <= r.leader < N for r in results)


def test_path_stable_seeding():
    a = _batch(12, 77, 1, 2)
    b = _batch(12, 77, 1, 2)
    c = _batch(12, 77, 2, 1)
    assert [r.slots for r in a] == [r.slots for r in b]
    assert [r.slots for r in a] != [r.slots for r in c]


def test_summary_dict_matches_replicate_schema():
    batched = summarize_times(_batch(30, 5))
    scalar = summarize_times(
        replicate(
            lambda s: elect_leader(
                n=N, eps=EPS, T=T, adversary="saturating", seed=s
            ),
            30,
            5,
        )
    )
    assert set(batched) == set(scalar)
    assert batched["reps"] == scalar["reps"] == 30
    assert batched["success_rate"] == 1.0
    # Same law: medians land close at 30 reps.
    assert batched["median_slots"] == pytest.approx(scalar["median_slots"], rel=0.3)


def test_lesk_cell_scalar_fallback_for_adaptive_adversary():
    """Adaptive strategies have no vector path; the cell falls back to the
    scalar engine and still produces the same result schema."""
    results = lesk_cell(N, EPS, T, "single-suppressor", 5, 11, batched=True)
    assert len(results) == 5
    assert all(r.elected for r in results)


def test_lesk_cell_engines_agree_in_law():
    batched = lesk_cell(N, EPS, T, "saturating", 40, 9, batched=True)
    scalar = lesk_cell(N, EPS, T, "saturating", 40, 9, batched=False)
    assert np.median([r.slots for r in batched]) == pytest.approx(
        np.median([r.slots for r in scalar]), rel=0.3
    )


def test_batched_enabled_defaults():
    assert batched_enabled("small") is True
    assert batched_enabled("full") is True
    assert batched_enabled("unknown-preset") is False


def test_bad_reps():
    with pytest.raises(ConfigurationError):
        _batch(0, 1)

"""FaultPlan.validate_ids: typo'd experiment ids fail fast at the CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.faults import FaultPlan
from repro.experiments.run_all import EXPERIMENT_MODULES, main


class TestValidateIds:
    def test_known_ids_pass_and_chain(self):
        plan = FaultPlan.from_spec("T1:raise@1,A10:hang@2")
        assert plan.validate_ids(EXPERIMENT_MODULES) is plan

    def test_unknown_id_rejected(self):
        plan = FaultPlan.from_spec("T1:raise,T99:hang")
        with pytest.raises(ConfigurationError, match="T99"):
            plan.validate_ids(EXPERIMENT_MODULES)

    def test_empty_plan_passes(self):
        FaultPlan().validate_ids(EXPERIMENT_MODULES)

    def test_cli_rejects_unknown_fault_id(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--preset", "smoke", "--inject-faults", "T99:raise"])
        assert exc.value.code == 2
        assert "T99" in capsys.readouterr().err


def test_a10_registered():
    assert EXPERIMENT_MODULES["A10"] == "repro.experiments.e22_fault_degradation"

"""Tests for the parallel replication runner (repro.experiments.parallel)."""

from __future__ import annotations

import pytest

from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.experiments.harness import replicate
from repro.experiments.parallel import default_jobs, replicate_parallel


def _slots(seed: int, n: int = 128) -> int:
    """Module-level (picklable) work function."""
    result = elect_leader(n=n, eps=0.5, T=8, adversary="saturating", seed=seed)
    return result.slots


class TestDeterminism:
    def test_matches_serial_replicate(self):
        serial = replicate(lambda s: _slots(s), 12, 77, 3)
        parallel = replicate_parallel(_slots, 12, 77, 3, jobs=3)
        assert serial == parallel

    def test_jobs_one_is_serial(self):
        a = replicate_parallel(_slots, 6, 42, jobs=1)
        b = replicate_parallel(_slots, 6, 42, jobs=2)
        assert a == b

    def test_extra_args_forwarded(self):
        small = replicate_parallel(_slots, 4, 1, jobs=2, extra_args=(32,))
        large = replicate_parallel(_slots, 4, 1, jobs=2, extra_args=(4096,))
        # More stations -> longer elections, with the same seeds.
        assert sum(large) > sum(small)

    def test_order_is_by_repetition_index(self):
        seeds_out = replicate_parallel(lambda s: s, 8, 5, jobs=1)
        assert seeds_out == replicate(lambda s: s, 8, 5)


class TestValidation:
    def test_bad_reps(self):
        with pytest.raises(ConfigurationError):
            replicate_parallel(_slots, 0, 1)

    def test_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            replicate_parallel(_slots, 2, 1, jobs=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_lambda_rejected_with_actionable_message(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            replicate_parallel(lambda s: s, 4, 1, jobs=2)

    def test_closure_rejected_with_actionable_message(self):
        def local_fn(seed):
            return seed

        with pytest.raises(ConfigurationError, match="module level"):
            replicate_parallel(local_fn, 4, 1, jobs=2)

    def test_lambda_still_fine_on_the_serial_path(self):
        assert replicate_parallel(lambda s: s, 4, 5, jobs=1) == replicate(
            lambda s: s, 4, 5
        )

"""CellSpec JSON round-trip: exact reconstruction, strict unknown keys."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cells import CellSpec
from repro.resilience.faults import FaultModel


def spec(**overrides) -> CellSpec:
    base = dict(
        kind="lesk", n=64, eps=0.3, T=16, adversary="random",
        reps=8, root_seed=7, path=(99, 0),
    )
    base.update(overrides)
    return CellSpec(**base)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"batched": False},
            {"max_slots": 500},
            {"compact_interval": 32},
            {"faults": FaultModel(crash_rate=0.01, flip_rate=0.002)},
            {
                "kind": "estimation",
                "adversary": "silence-masker",
                "path": (7, 3),
                "max_slots": 900,
                "faults": FaultModel(erase_rate=0.05),
                "compact_interval": 8,
            },
        ],
        ids=["defaults", "scalar", "max_slots", "compact", "faults", "all"],
    )
    def test_exact_round_trip(self, overrides):
        original = spec(**overrides)
        data = original.to_jsonable()
        # the wire form must be pure JSON
        restored = CellSpec.from_jsonable(json.loads(json.dumps(data)))
        assert restored == original
        assert restored.path == original.path  # tuple, not list
        assert restored.to_jsonable() == data

    def test_defaults_are_omitted_from_wire_form(self):
        data = spec().to_jsonable()
        assert "batched" not in data  # True is the default
        assert "max_slots" not in data
        assert "faults" not in data
        assert "compact_interval" not in data

    def test_faults_nest_as_plain_data(self):
        data = spec(faults=FaultModel(crash_rate=0.25)).to_jsonable()
        assert data["faults"]["crash_rate"] == 0.25
        restored = CellSpec.from_jsonable(data)
        assert isinstance(restored.faults, FaultModel)


class TestStrictness:
    def test_unknown_key_rejected(self):
        data = spec().to_jsonable()
        data["jam_budget"] = 3
        with pytest.raises(ConfigurationError, match="unknown CellSpec fields"):
            CellSpec.from_jsonable(data)

    def test_error_names_offenders_and_known_fields(self):
        data = spec().to_jsonable()
        data.update(zz=1, aa=2)
        with pytest.raises(ConfigurationError) as err:
            CellSpec.from_jsonable(data)
        message = str(err.value)
        assert "['aa', 'zz']" in message
        assert "root_seed" in message  # known fields listed

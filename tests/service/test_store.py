"""Run store: content addressing, execution, integrity, bit-replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.service.scenario import scenario_digest, scenario_from_jsonable
from repro.service.store import RUN_ID_LEN, RunStore

SMALL = {
    "scenario": "store-t",
    "schema": 1,
    "seed": 11,
    "grid": {"kind": ["lesk"], "n": [8, 16], "adversary": ["random"]},
    "reps": 4,
    "sharding": {"block_size": 2},
}


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


@pytest.fixture()
def scenario():
    return scenario_from_jsonable(SMALL)


class TestRegister:
    def test_run_id_is_digest_prefix(self, store, scenario):
        record, created = store.register(scenario)
        assert created
        assert record.run_id == scenario_digest(scenario)[:RUN_ID_LEN]
        assert store.status(record.run_id)["state"] == "queued"

    def test_idempotent_by_content(self, store, scenario):
        record, created = store.register(scenario)
        # same document, different key order in source -> same run
        again = scenario_from_jsonable(json.loads(json.dumps(SMALL)))
        record2, created2 = store.register(again)
        assert not created2
        assert record2.run_id == record.run_id
        assert store.run_ids() == [record.run_id]

    def test_manifest_names_digest_and_invocation(self, store, scenario):
        record, _ = store.register(
            scenario, invocation={"subcommand": "test", "argv": ["x"]}
        )
        manifest = store.manifest(record.run_id)
        assert manifest["scenario_digest"] == scenario_digest(scenario)
        assert manifest["invocation"] == {"subcommand": "test", "argv": ["x"]}
        assert manifest["preset"] == "scenario"

    def test_get_by_unique_prefix(self, store, scenario):
        record, _ = store.register(scenario)
        assert store.get(record.run_id[:6]).run_id == record.run_id
        with pytest.raises(ConfigurationError, match="no run"):
            store.get("ffffffff")


class TestExecuteAndReplay:
    def test_execute_writes_checksummed_table(self, store, scenario):
        record, _ = store.register(scenario)
        assert store.execute(record, jobs=1) == "done"
        table = store.load_table(record.run_id)
        assert len(table.rows) == 2
        assert (record.root / "SCENARIO.txt").exists()
        assert (record.root / "SCENARIO.csv").exists()
        status = store.status(record.run_id)
        assert status["state"] == "done"
        assert status["table_checksum"]

    def test_done_run_is_not_reexecuted(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record)
        journal_len = len(store.journal(record.run_id))
        assert store.execute(record) == "done"  # no-op
        assert len(store.journal(record.run_id)) == journal_len

    def test_results_invariant_under_worker_count(self, tmp_path, scenario):
        payloads = []
        for jobs in (1, 3):
            store = RunStore(tmp_path / f"store-{jobs}")
            record, _ = store.register(scenario)
            store.execute(record, jobs=jobs)
            payloads.append(
                (record.root / "tables" / "SCENARIO.json").read_text()
            )
        assert payloads[0] == payloads[1]

    def test_replay_is_bit_identical(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record, jobs=2)
        report = store.replay(record.run_id, jobs=1)
        assert report.identical, report.detail
        assert "REPRODUCED" in report.describe()

    def test_cancel_between_cells(self, store, scenario):
        record, _ = store.register(scenario)
        calls = iter([False, True])  # cancel before the second cell
        state = store.execute(record, should_cancel=lambda: next(calls))
        assert state == "cancelled"
        assert store.status(record.run_id)["state"] == "cancelled"

    def test_interrupted_run_resumes_from_block_checkpoints(
        self, store, scenario
    ):
        record, _ = store.register(scenario)
        calls = iter([False, True])
        assert store.execute(record, should_cancel=lambda: next(calls)) == "cancelled"
        blocks_after_cancel = list(record.shards_dir.glob("block-*.json"))
        assert blocks_after_cancel  # first cell's blocks are checkpointed
        # re-execution restores those blocks and finishes identically
        assert store.execute(record) == "done"
        assert store.replay(record.run_id).identical

    def test_telemetry_export_when_enabled(self, tmp_path):
        scenario = scenario_from_jsonable(
            {**SMALL, "telemetry": {"enabled": True, "stride": 4}}
        )
        store = RunStore(tmp_path / "store")
        record, _ = store.register(scenario)
        store.execute(record)
        assert (record.root / "telemetry" / "telemetry.jsonl").exists()
        assert (record.root / "telemetry" / "metrics.prom").exists()


class TestIntegrity:
    def test_tampered_table_detected(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record)
        path = record.tables_dir / "SCENARIO.json"
        data = json.loads(path.read_text())
        data["table"]["rows"][0]["success"] = 0.123
        path.write_text(json.dumps(data))
        with pytest.raises(ChecksumMismatchError, match="integrity"):
            store.load_table(record.run_id)
        with pytest.raises(ChecksumMismatchError):
            store.verify(record.run_id)

    def test_tampered_scenario_detected(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record)
        path = record.root / "scenario.json"
        doc = json.loads(path.read_text())
        doc["seed"] = 999  # would silently change every seed derivation
        path.write_text(json.dumps(doc))
        with pytest.raises(ChecksumMismatchError, match="altered"):
            store.verify(record.run_id)

    def test_verify_passes_on_intact_run(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record)
        store.verify(record.run_id)  # no raise


class TestQueryAndProgress:
    def test_query_filters(self, store, scenario):
        record, _ = store.register(scenario)
        assert store.query(state="queued")[0]["run_id"] == record.run_id
        assert store.query(state="done") == []
        assert store.query(name="store-t")[0]["run_id"] == record.run_id
        assert store.query(name="other") == []

    def test_progress_counts_cells(self, store, scenario):
        record, _ = store.register(scenario)
        store.execute(record)
        progress = store.progress(record.run_id)
        assert progress["cells_done"] == 2
        assert progress["cells_total"] == 2
        assert progress["state"] == "done"

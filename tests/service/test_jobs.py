"""Job service: lifecycle, backpressure, cancellation, restart recovery."""

from __future__ import annotations

import time

import pytest

from repro.service.jobs import BackpressureError, JobService
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore


def scen(name: str, seed: int = 3, reps: int = 2) -> dict:
    return scenario_from_jsonable(
        {
            "scenario": name,
            "schema": 1,
            "seed": seed,
            "grid": {"kind": ["lesk"], "n": [8], "adversary": ["random"]},
            "reps": reps,
            "sharding": {"block_size": 2},
        }
    )


def wait_state(store, run_id, states=("done", "failed"), timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = store.status(run_id).get("state")
        if state in states:
            return state
        time.sleep(0.02)
    raise AssertionError(
        f"run {run_id} never reached {states}; stuck at "
        f"{store.status(run_id)!r}"
    )


class TestLifecycle:
    def test_submit_executes_to_done(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        try:
            summary = svc.submit(scen("lifecycle"))
            assert summary["state"] == "queued"
            assert wait_state(store, summary["run_id"]) == "done"
            store.load_table(summary["run_id"])  # table exists + verifies
        finally:
            svc.stop(drain=True)

    def test_resubmit_of_done_run_is_cached(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        try:
            first = svc.submit(scen("cached"))
            wait_state(store, first["run_id"])
            again = svc.submit(scen("cached"))
            assert again["run_id"] == first["run_id"]
            assert again["state"] == "done"
        finally:
            svc.stop(drain=True)

    def test_invalid_params_rejected(self, tmp_path):
        store = RunStore(tmp_path / "s")
        with pytest.raises(Exception):
            JobService(store, queue_limit=0)
        with pytest.raises(Exception):
            JobService(store, workers=0)


class TestBackpressure:
    def test_full_queue_rejects_submission(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store, queue_limit=2)  # workers never started
        assert svc.submit(scen("bp-0", seed=100))["state"] == "queued"
        assert svc.submit(scen("bp-1", seed=101))["state"] == "queued"
        with pytest.raises(BackpressureError, match="queue full"):
            svc.submit(scen("bp-2", seed=102))

    def test_duplicate_pending_submission_coalesces(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store, queue_limit=1)
        svc.submit(scen("bp-dup"))
        # the same document again occupies no extra queue slot
        assert svc.submit(scen("bp-dup"))["state"] == "queued"

    def test_stopping_service_rejects_submissions(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        svc.stop(drain=True)
        with pytest.raises(BackpressureError, match="shutting down"):
            svc.submit(scen("late"))


class TestCancel:
    def test_cancel_queued_run(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)  # not started: stays queued
        summary = svc.submit(scen("cancel-q"))
        assert svc.cancel(summary["run_id"])["state"] == "cancelling"
        svc.start()
        try:
            assert (
                wait_state(store, summary["run_id"], states=("cancelled",))
                == "cancelled"
            )
        finally:
            svc.stop(drain=True)

    def test_cancel_finished_run_reports_final_state(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        try:
            summary = svc.submit(scen("cancel-done"))
            wait_state(store, summary["run_id"])
            assert svc.cancel(summary["run_id"])["state"] == "done"
        finally:
            svc.stop(drain=True)


class TestRestartRecovery:
    def test_rescan_requeues_interrupted_runs(self, tmp_path):
        store = RunStore(tmp_path / "s")
        # simulate a dead service: runs registered but never executed,
        # one marked running as if the process died mid-flight
        queued, _ = store.register(scen("recover-a", seed=201))
        crashed, _ = store.register(scen("recover-b", seed=202))
        store.set_state(crashed.run_id, "running")

        svc = JobService(store)
        svc.start()  # rescan happens here
        try:
            assert wait_state(store, queued.run_id) == "done"
            assert wait_state(store, crashed.run_id) == "done"
            assert store.replay(crashed.run_id).identical
        finally:
            svc.stop(drain=True)

    def test_stats_shape(self, tmp_path):
        svc = JobService(RunStore(tmp_path / "s"), queue_limit=5)
        stats = svc.stats()
        assert stats["queue_limit"] == 5
        assert stats["pending"] == 0
        assert not stats["stopping"]

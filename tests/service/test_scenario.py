"""Scenario DSL: validation, canonical digests, deterministic expansion."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cells import CellSpec
from repro.experiments.sweep import build_specs
from repro.resilience.faults import FaultModel
from repro.service.scenario import (
    SCENARIO_SCHEMA_VERSION,
    expand,
    load_scenario,
    parse_scenario,
    scenario_digest,
    scenario_from_jsonable,
)


def doc(**overrides) -> dict:
    """A minimal valid scenario document, with overrides merged on top."""
    base = {
        "scenario": "t",
        "schema": SCENARIO_SCHEMA_VERSION,
        "seed": 7,
        "grid": {"kind": ["lesk"], "n": [8], "adversary": ["random"]},
        "reps": 4,
    }
    base.update(overrides)
    return base


class TestValidationErrors:
    """Every bad document fails with a path-qualified message."""

    # (overrides, path that must appear, message fragment that must appear)
    CASES = [
        (
            {"grid": {"n": [8], "adversary": ["bogus"]}},
            "grid.adversary[0]",
            "unknown adversary 'bogus'",
        ),
        (
            {"grid": {"n": [8], "kind": ["nope"]}},
            "grid.kind[0]",
            "unknown cell kind 'nope'",
        ),
        (
            {"grid": {"n": [8], "eps": [1.5]}},
            "grid.eps[0]",
            "eps must be in (0, 1)",
        ),
        (
            {"grid": {"n": [8], "eps": [0.0]}},
            "grid.eps[0]",
            "eps must be in (0, 1)",
        ),
        ({"reps": -3}, "reps", "must be an integer >= 1, got -3"),
        ({"schema": 99}, "schema", "unsupported scenario schema 99"),
        (
            {"engine": {"batched": False, "compact_interval": 32}},
            "engine.compact_interval",
            "conflicts with engine.batched: false",
        ),
        ({"grid": {"adversary": ["random"]}}, "grid.n", "required axis is missing"),
        ({"grid": {"n": [0]}}, "grid.n[0]", "positive integer"),
        ({"seed": -1}, "seed", "[0, 2**63)"),
        ({"scenario": "bad name!"}, "scenario", "may only contain"),
        ({"frobnicate": 1}, "frobnicate", "unknown key"),
        ({"engine": {"warp": 9}}, "engine.warp", "unknown key"),
        ({"sharding": {"block_size": 0}}, "sharding.block_size", ">= 1"),
        ({"telemetry": {"stride": 0}}, "telemetry.stride", ">= 1"),
        (
            {"faults": {"crash_rate": 2.0}},
            "faults",
            "crash_rate",
        ),
        (
            {"grid": {"n": [8], "T": [16]}, "limits": {"max_cells": 0}},
            "limits.max_cells",
            ">= 1",
        ),
    ]

    @pytest.mark.parametrize(
        "overrides, path, fragment",
        CASES,
        ids=[c[1] for c in CASES],
    )
    def test_rejected_with_path(self, overrides, path, fragment):
        with pytest.raises(ConfigurationError) as err:
            scenario_from_jsonable(doc(**overrides), source="<test>")
        message = str(err.value)
        assert "<test>" in message
        assert f"{path}:" in message
        assert fragment in message

    def test_all_errors_reported_at_once(self):
        bad = doc(
            schema=9,
            seed=-1,
            reps=0,
            grid={"n": [0], "adversary": ["bogus"], "eps": [2.0]},
        )
        with pytest.raises(ConfigurationError) as err:
            scenario_from_jsonable(bad, source="<test>")
        message = str(err.value)
        for path in ("schema:", "seed:", "reps:", "grid.n[0]:",
                     "grid.adversary[0]:", "grid.eps[0]:"):
            assert path in message, f"missing {path} in:\n{message}"

    def test_grid_budget_guardrails(self):
        too_many = doc(
            grid={"n": list(range(8, 80)), "adversary": ["random"]},
            limits={"max_cells": 10},
        )
        with pytest.raises(ConfigurationError, match="exceed limits.max_cells"):
            scenario_from_jsonable(too_many)
        too_deep = doc(reps=100, limits={"max_total_reps": 50})
        with pytest.raises(ConfigurationError, match="max_total_reps"):
            scenario_from_jsonable(too_deep)

    def test_non_mapping_top_level(self):
        with pytest.raises(ConfigurationError, match="top level must be a mapping"):
            scenario_from_jsonable(["not", "a", "mapping"])

    def test_unparseable_text(self):
        with pytest.raises(ConfigurationError, match="not parseable"):
            parse_scenario("{unclosed: [", source="<syntax>")


class TestCanonicalDigest:
    def test_key_order_and_format_do_not_matter(self):
        a = parse_scenario(json.dumps(doc()))
        yaml_text = "\n".join(
            [
                "reps: 4",
                "seed: 7",
                "grid:",
                "  adversary: [random]",
                "  kind: [lesk]",
                "  n: [8]",
                "schema: 1",
                "scenario: t",
            ]
        )
        b = parse_scenario(yaml_text)
        assert scenario_digest(a) == scenario_digest(b)
        assert a == b

    def test_scalar_axes_normalize_to_lists(self):
        scalar = scenario_from_jsonable(
            doc(grid={"kind": "lesk", "n": 8, "adversary": "random"})
        )
        listed = scenario_from_jsonable(doc())
        assert scenario_digest(scalar) == scenario_digest(listed)

    def test_telemetry_and_limits_excluded_from_digest(self):
        plain = scenario_from_jsonable(doc())
        observed = scenario_from_jsonable(
            doc(
                telemetry={"enabled": True, "stride": 8},
                limits={"max_cells": 99},
            )
        )
        assert scenario_digest(plain) == scenario_digest(observed)

    def test_result_determining_fields_change_digest(self):
        base = scenario_from_jsonable(doc())
        for overrides in (
            {"seed": 8},
            {"reps": 5},
            {"grid": {"kind": ["lesu"], "n": [8], "adversary": ["random"]}},
            {"engine": {"compact_interval": 32}},
            {"sharding": {"block_size": 2}},
            {"faults": {"crash_rate": 0.01}},
        ):
            other = scenario_from_jsonable(doc(**overrides))
            assert scenario_digest(other) != scenario_digest(base), overrides

    def test_normalized_document_round_trips(self):
        scenario = scenario_from_jsonable(
            doc(
                engine={"batched": True, "max_slots": 500},
                faults={"crash_rate": 0.01},
                telemetry={"enabled": True},
            )
        )
        again = scenario_from_jsonable(scenario.to_jsonable())
        assert again == scenario
        assert scenario_digest(again) == scenario_digest(scenario)


class TestExpand:
    def test_fixed_grid_order_and_ordinal_paths(self):
        scenario = scenario_from_jsonable(
            doc(
                path_tag=5,
                grid={
                    "kind": ["lesk", "nocd"],
                    "n": [8, 16],
                    "eps": [0.3, 0.5],
                    "T": [16],
                    "adversary": ["random", "none"],
                },
            )
        )
        specs = expand(scenario)
        assert len(specs) == scenario.cell_count == 16
        assert [s.path for s in specs] == [(5, i) for i in range(16)]
        # kind-major, then adversary, n, eps, T
        assert specs[0].kind == "lesk" and specs[8].kind == "nocd"
        assert specs[0].adversary == "random" and specs[4].adversary == "none"
        assert (specs[0].n, specs[2].n) == (8, 16)
        assert (specs[0].eps, specs[1].eps) == (0.3, 0.5)

    def test_engine_and_fault_options_reach_every_spec(self):
        scenario = scenario_from_jsonable(
            doc(
                engine={"batched": True, "max_slots": 700, "compact_interval": 16},
                faults={"crash_rate": 0.02},
            )
        )
        (spec,) = expand(scenario)
        assert spec.max_slots == 700
        assert spec.compact_interval == 16
        assert spec.faults == FaultModel(crash_rate=0.02)

    def test_matches_sweep_build_specs_bit_for_bit(self):
        """One grid compiler: sweep CLI grids == scenario grids, exactly."""
        kinds, ns, advs = ["lesk", "estimation"], [8, 32], ["random", "none"]
        via_sweep = build_specs(kinds, ns, advs, 0.4, 8, 6, 77, 99)
        via_scenario = expand(
            scenario_from_jsonable(
                {
                    "scenario": "sweep",
                    "schema": 1,
                    "seed": 77,
                    "path_tag": 99,
                    "grid": {
                        "kind": kinds,
                        "n": ns,
                        "eps": [0.4],
                        "T": [8],
                        "adversary": advs,
                    },
                    "reps": 6,
                }
            )
        )
        assert via_sweep == via_scenario
        # and the legacy hand-rolled expansion, pinned forever:
        legacy = []
        for kind in kinds:
            for adversary in advs:
                for n in ns:
                    legacy.append(
                        CellSpec(
                            kind=kind, n=n, eps=0.4, T=8, adversary=adversary,
                            reps=6, root_seed=77, path=(99, len(legacy)),
                        )
                    )
        assert via_sweep == legacy


class TestLoadScenario:
    def test_loads_yaml_file(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("scenario: f\nschema: 1\ngrid: {n: [8]}\nreps: 2\n")
        scenario = load_scenario(path)
        assert scenario.name == "f"
        assert scenario.cell_count == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read scenario file"):
            load_scenario(tmp_path / "absent.yaml")

"""HTTP API: live-server round-trips over the full surface."""

from __future__ import annotations

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.api import make_server
from repro.service.jobs import JobService
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore

DOC = b"""
scenario: api-t
schema: 1
seed: 5
grid:
  kind: [lesk]
  n: [8]
  adversary: [random]
reps: 3
sharding: {block_size: 2}
"""


@pytest.fixture()
def server(tmp_path):
    """A live service on an ephemeral port; yields its base URL."""
    service = JobService(RunStore(tmp_path / "store"), queue_limit=4)
    service.start()
    srv = make_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}", service
    finally:
        srv.shutdown()
        srv.server_close()
        service.stop(drain=True)


def request(method: str, url: str, body: bytes | None = None):
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def request_full(method: str, url: str, body: bytes | None = None):
    """Like :func:`request` but also returns the response headers."""
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), dict(exc.headers)


@contextlib.contextmanager
def live_server(service: JobService):
    """Serve an (optionally unstarted) JobService on an ephemeral port."""
    srv = make_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}"
    finally:
        srv.shutdown()
        srv.server_close()


def scen(name: str, seed: int) -> bytes:
    return json.dumps(
        {
            "scenario": name,
            "schema": 1,
            "seed": seed,
            "grid": {"kind": ["lesk"], "n": [8], "adversary": ["random"]},
            "reps": 1,
        }
    ).encode()


def submit_and_wait(base: str, doc: bytes = DOC, timeout: float = 30.0) -> str:
    code, body = request("POST", f"{base}/v1/scenarios", doc)
    assert code == 200, body
    run_id = json.loads(body)["run_id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = request("GET", f"{base}/v1/runs/{run_id}")
        if json.loads(status).get("state") in ("done", "failed"):
            return run_id
        time.sleep(0.02)
    raise AssertionError(f"run {run_id} never finished: {status}")


class TestSubmitAndFetch:
    def test_full_round_trip(self, server):
        base, _ = server
        run_id = submit_and_wait(base)

        code, body = request("GET", f"{base}/v1/runs/{run_id}")
        status = json.loads(body)
        assert (code, status["state"]) == (200, "done")
        assert status["cells_done"] == status["cells_total"] == 1

        code, body = request("GET", f"{base}/v1/runs/{run_id}/results")
        assert code == 200
        table = json.loads(body)["table"]
        assert table["rows"][0]["reps"] == 3

        code, text = request(
            "GET", f"{base}/v1/runs/{run_id}/results?format=txt"
        )
        assert code == 200 and "scenario api-t" in text
        code, csv_text = request(
            "GET", f"{base}/v1/runs/{run_id}/results?format=csv"
        )
        assert code == 200 and csv_text.startswith("kind,")

        code, journal = request("GET", f"{base}/v1/runs/{run_id}/journal")
        events = [json.loads(line)["event"] for line in journal.splitlines()]
        assert events[0] == "registered" and events[-1] == "done"

        code, body = request("GET", f"{base}/v1/runs")
        assert code == 200 and json.loads(body)[0]["run_id"] == run_id

    def test_replay_endpoint_reproduces(self, server):
        base, _ = server
        run_id = submit_and_wait(base)
        code, body = request("POST", f"{base}/v1/runs/{run_id}/replay")
        assert code == 200
        assert json.loads(body)["identical"] is True

    def test_tampered_results_return_500(self, server):
        base, service = server
        run_id = submit_and_wait(base)
        path = (
            service.store.run_dir(run_id) / "tables" / "SCENARIO.json"
        )
        data = json.loads(path.read_text())
        data["table"]["rows"][0]["success"] = 0.5
        path.write_text(json.dumps(data))
        code, body = request("GET", f"{base}/v1/runs/{run_id}/results")
        assert code == 500
        assert "integrity" in json.loads(body)["error"]
        code, body = request("POST", f"{base}/v1/runs/{run_id}/replay")
        assert code == 500


class TestErrors:
    def test_invalid_document_is_400_with_paths(self, server):
        base, _ = server
        bad = b'{"scenario":"x","schema":1,"grid":{"n":[8],"adversary":["bogus"]},"reps":1}'
        code, body = request("POST", f"{base}/v1/scenarios", bad)
        assert code == 400
        assert "grid.adversary[0]" in json.loads(body)["error"]

    def test_unknown_run_is_404(self, server):
        base, _ = server
        code, body = request("GET", f"{base}/v1/runs/ffffffffffffffff")
        assert code == 404
        code, body = request("GET", f"{base}/v1/runs/ffffffffffffffff/results")
        assert code == 404

    def test_results_before_done_is_409(self, server):
        base, service = server
        record, _ = service.store.register(
            scenario_from_jsonable(
                {
                    "scenario": "never-run",
                    "schema": 1,
                    "seed": 6,
                    "grid": {"n": [8]},
                    "reps": 1,
                }
            )
        )
        code, body = request("GET", f"{base}/v1/runs/{record.run_id}/results")
        assert code == 409

    def test_unknown_route_is_404(self, server):
        base, _ = server
        assert request("GET", f"{base}/nope")[0] == 404
        assert request("POST", f"{base}/v1/nope")[0] == 404


class TestPagination:
    def test_envelope_with_params_bare_list_without(self, tmp_path):
        # an unstarted service: registered runs stay queued, order is stable
        service = JobService(RunStore(tmp_path / "store"), queue_limit=8)
        ids = []
        with live_server(service) as base:
            for i in range(3):
                code, body = request(
                    "POST", f"{base}/v1/scenarios", scen(f"page-{i}", 20 + i)
                )
                assert code == 200, body
                ids.append(json.loads(body)["run_id"])

            # back-compat: no params -> the bare JSON list, all runs
            code, body = request("GET", f"{base}/v1/runs")
            assert code == 200
            assert [r["run_id"] for r in json.loads(body)] == ids

            # with params -> the pagination envelope, from the ledger
            code, body = request("GET", f"{base}/v1/runs?limit=2&offset=1")
            assert code == 200
            page = json.loads(body)
            assert [r["run_id"] for r in page["runs"]] == ids[1:3]
            assert (page["total"], page["limit"], page["offset"]) == (3, 2, 1)

            # offset past the end is an empty page, not an error
            code, body = request("GET", f"{base}/v1/runs?limit=2&offset=9")
            assert code == 200 and json.loads(body)["runs"] == []

    def test_bad_pagination_params_are_400(self, tmp_path):
        service = JobService(RunStore(tmp_path / "store"))
        with live_server(service) as base:
            for query in ("limit=-1", "limit=x", "offset=-2", "offset=nan"):
                code, body = request("GET", f"{base}/v1/runs?{query}")
                assert code == 400, query
                assert "non-negative" in json.loads(body)["error"]


class TestRetryAfter:
    def test_429_carries_retry_after_header(self, tmp_path):
        # unstarted service with a one-slot queue: the second submission
        # must be told to back off, with a machine-readable hint
        service = JobService(RunStore(tmp_path / "store"), queue_limit=1)
        with live_server(service) as base:
            code, _, _ = request_full(
                "POST", f"{base}/v1/scenarios", scen("fill", 30)
            )
            assert code == 200
            code, body, headers = request_full(
                "POST", f"{base}/v1/scenarios", scen("overflow", 31)
            )
            assert code == 429
            assert "retry later" in json.loads(body)["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_degraded_service_is_503_with_retry_after(self, tmp_path):
        service = JobService(RunStore(tmp_path / "store"), degraded_after=2)
        service._note_substrate_failure()
        service._note_substrate_failure()
        with live_server(service) as base:
            code, body, headers = request_full(
                "POST", f"{base}/v1/scenarios", scen("degraded", 32)
            )
            assert code == 503
            assert "degraded" in json.loads(body)["error"]
            assert int(headers["Retry-After"]) >= 1
            # reads are still served while degraded
            assert request("GET", f"{base}/v1/runs")[0] == 200


class TestFailures:
    def test_failures_endpoint_lists_quarantined_and_failed(self, tmp_path):
        store = RunStore(tmp_path / "store")
        service = JobService(store)
        ok, _ = store.register(
            scenario_from_jsonable(json.loads(scen("f-ok", 40)))
        )
        bad, _ = store.register(
            scenario_from_jsonable(json.loads(scen("f-bad", 41)))
        )
        store.set_state(bad.run_id, "failed", error="boom")
        with live_server(service) as base:
            code, body = request("GET", f"{base}/v1/failures")
            assert code == 200
            rows = json.loads(body)
            assert [r["run_id"] for r in rows] == [bad.run_id]
            assert rows[0]["error"] == "boom"


class TestOps:
    def test_healthz_and_metrics(self, server):
        base, _ = server
        code, body = request("GET", f"{base}/healthz")
        assert code == 200 and json.loads(body)["ok"]
        code, body = request("GET", f"{base}/metrics")
        assert code == 200  # telemetry disabled by default -> stub body

"""HTTP API: live-server round-trips over the full surface."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.api import make_server
from repro.service.jobs import JobService
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore

DOC = b"""
scenario: api-t
schema: 1
seed: 5
grid:
  kind: [lesk]
  n: [8]
  adversary: [random]
reps: 3
sharding: {block_size: 2}
"""


@pytest.fixture()
def server(tmp_path):
    """A live service on an ephemeral port; yields its base URL."""
    service = JobService(RunStore(tmp_path / "store"), queue_limit=4)
    service.start()
    srv = make_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}", service
    finally:
        srv.shutdown()
        srv.server_close()
        service.stop(drain=True)


def request(method: str, url: str, body: bytes | None = None):
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def submit_and_wait(base: str, doc: bytes = DOC, timeout: float = 30.0) -> str:
    code, body = request("POST", f"{base}/v1/scenarios", doc)
    assert code == 200, body
    run_id = json.loads(body)["run_id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = request("GET", f"{base}/v1/runs/{run_id}")
        if json.loads(status).get("state") in ("done", "failed"):
            return run_id
        time.sleep(0.02)
    raise AssertionError(f"run {run_id} never finished: {status}")


class TestSubmitAndFetch:
    def test_full_round_trip(self, server):
        base, _ = server
        run_id = submit_and_wait(base)

        code, body = request("GET", f"{base}/v1/runs/{run_id}")
        status = json.loads(body)
        assert (code, status["state"]) == (200, "done")
        assert status["cells_done"] == status["cells_total"] == 1

        code, body = request("GET", f"{base}/v1/runs/{run_id}/results")
        assert code == 200
        table = json.loads(body)["table"]
        assert table["rows"][0]["reps"] == 3

        code, text = request(
            "GET", f"{base}/v1/runs/{run_id}/results?format=txt"
        )
        assert code == 200 and "scenario api-t" in text
        code, csv_text = request(
            "GET", f"{base}/v1/runs/{run_id}/results?format=csv"
        )
        assert code == 200 and csv_text.startswith("kind,")

        code, journal = request("GET", f"{base}/v1/runs/{run_id}/journal")
        events = [json.loads(line)["event"] for line in journal.splitlines()]
        assert events[0] == "registered" and events[-1] == "done"

        code, body = request("GET", f"{base}/v1/runs")
        assert code == 200 and json.loads(body)[0]["run_id"] == run_id

    def test_replay_endpoint_reproduces(self, server):
        base, _ = server
        run_id = submit_and_wait(base)
        code, body = request("POST", f"{base}/v1/runs/{run_id}/replay")
        assert code == 200
        assert json.loads(body)["identical"] is True

    def test_tampered_results_return_500(self, server):
        base, service = server
        run_id = submit_and_wait(base)
        path = (
            service.store.run_dir(run_id) / "tables" / "SCENARIO.json"
        )
        data = json.loads(path.read_text())
        data["table"]["rows"][0]["success"] = 0.5
        path.write_text(json.dumps(data))
        code, body = request("GET", f"{base}/v1/runs/{run_id}/results")
        assert code == 500
        assert "integrity" in json.loads(body)["error"]
        code, body = request("POST", f"{base}/v1/runs/{run_id}/replay")
        assert code == 500


class TestErrors:
    def test_invalid_document_is_400_with_paths(self, server):
        base, _ = server
        bad = b'{"scenario":"x","schema":1,"grid":{"n":[8],"adversary":["bogus"]},"reps":1}'
        code, body = request("POST", f"{base}/v1/scenarios", bad)
        assert code == 400
        assert "grid.adversary[0]" in json.loads(body)["error"]

    def test_unknown_run_is_404(self, server):
        base, _ = server
        code, body = request("GET", f"{base}/v1/runs/ffffffffffffffff")
        assert code == 404
        code, body = request("GET", f"{base}/v1/runs/ffffffffffffffff/results")
        assert code == 404

    def test_results_before_done_is_409(self, server):
        base, service = server
        record, _ = service.store.register(
            scenario_from_jsonable(
                {
                    "scenario": "never-run",
                    "schema": 1,
                    "seed": 6,
                    "grid": {"n": [8]},
                    "reps": 1,
                }
            )
        )
        code, body = request("GET", f"{base}/v1/runs/{record.run_id}/results")
        assert code == 409

    def test_unknown_route_is_404(self, server):
        base, _ = server
        assert request("GET", f"{base}/nope")[0] == 404
        assert request("POST", f"{base}/v1/nope")[0] == 404


class TestOps:
    def test_healthz_and_metrics(self, server):
        base, _ = server
        code, body = request("GET", f"{base}/healthz")
        assert code == 200 and json.loads(body)["ok"]
        code, body = request("GET", f"{base}/metrics")
        assert code == 200  # telemetry disabled by default -> stub body

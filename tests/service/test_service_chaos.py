"""Service chaos: worker kill/hang, disk full, store tamper, quarantine.

The chaos property under test (ISSUE 9): under any injected kill/hang
schedule, no run is lost or double-completed, and recovered result
tables are byte-identical to an undisturbed run of the same scenario.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.experiments.retry import RetryPolicy
from repro.service.chaos import ServiceFaultPlan, tamper_stored_table
from repro.service.jobs import JobService, ServiceDegradedError
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore


def scen(name: str, seed: int = 3, reps: int = 2):
    return scenario_from_jsonable(
        {
            "scenario": name,
            "schema": 1,
            "seed": seed,
            "grid": {"kind": ["lesk"], "n": [8], "adversary": ["random"]},
            "reps": reps,
            "sharding": {"block_size": 2},
        }
    )


def wait_state(store, run_id, states, timeout=60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = store.status(run_id).get("state")
        if state in states:
            return state
        time.sleep(0.02)
    raise AssertionError(
        f"run {run_id} never reached {states}; stuck at "
        f"{store.status(run_id)!r}"
    )


def undisturbed_table_bytes(tmp_path, scenario) -> bytes:
    """The scenario's stored table from a pristine, fault-free store."""
    store = RunStore(tmp_path / "undisturbed")
    record, _ = store.register(scenario)
    assert store.execute(record) == "done"
    return (record.tables_dir / "SCENARIO.json").read_bytes()


def fast_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=attempts, backoff_base=0.05, backoff_cap=0.2,
        retry_timeouts=True,
    )


class TestFaultPlanValidation:
    def test_accepts_only_service_atoms(self):
        plan = ServiceFaultPlan.from_spec("worker:kill@1,store:tamper@2")
        assert plan.plan.service_seqs() == (1, 2)
        with pytest.raises(ConfigurationError, match="service fault ids"):
            ServiceFaultPlan.from_spec("T1:raise@1")
        with pytest.raises(ConfigurationError, match="service fault kind"):
            ServiceFaultPlan.from_spec("worker:tamper@1")

    def test_thread_mode_rejects_fault_injection(self, tmp_path):
        with pytest.raises(ConfigurationError, match="worker processes"):
            JobService(
                RunStore(tmp_path / "s"),
                worker_mode="thread",
                fault_spec="worker:kill@1",
            )


class TestWorkerKill:
    def test_killed_worker_requeues_and_matches_undisturbed_run(self, tmp_path):
        scenario = scen("chaos-kill", seed=31)
        expected = undisturbed_table_bytes(tmp_path, scenario)
        store = RunStore(tmp_path / "s")
        svc = JobService(
            store, retry=fast_retry(), fault_spec="worker:kill@1",
            heartbeat_interval=0.2,
        )
        svc.start()
        try:
            summary = svc.submit(scenario)
            run_id = summary["run_id"]
            assert wait_state(store, run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        # exactly one completion, resumed after the death
        events = [r["event"] for r in store.journal(run_id)]
        assert events.count("done") == 1
        assert "worker-died" in events
        # the chaos property: byte-identical to the undisturbed run
        run_dir = store.run_dir(run_id)
        assert (run_dir / "tables" / "SCENARIO.json").read_bytes() == expected
        assert store.replay(run_id).identical


class TestWorkerHang:
    def test_hung_worker_is_deadline_killed_then_recovers(self, tmp_path):
        scenario = scen("chaos-hang", seed=32)
        expected = undisturbed_table_bytes(tmp_path, scenario)
        store = RunStore(tmp_path / "s")
        svc = JobService(
            store, retry=fast_retry(), fault_spec="worker:hang@1",
            run_timeout=2.0, heartbeat_interval=0.2,
        )
        svc.start()
        try:
            summary = svc.submit(scenario)
            run_id = summary["run_id"]
            assert wait_state(store, run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        events = [r["event"] for r in store.journal(run_id)]
        assert "worker-timeout" in events
        assert events.count("done") == 1
        run_dir = store.run_dir(run_id)
        assert (run_dir / "tables" / "SCENARIO.json").read_bytes() == expected


class TestDiskFull:
    def test_enospc_is_transient_and_retried_to_success(self, tmp_path):
        scenario = scen("chaos-disk", seed=33)
        store = RunStore(tmp_path / "s")
        svc = JobService(
            store, retry=fast_retry(), fault_spec="disk:full@1",
        )
        svc.start()
        try:
            summary = svc.submit(scenario)
            run_id = summary["run_id"]
            assert wait_state(store, run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        errors = [
            r["error"] for r in store.journal(run_id)
            if r["event"] == "worker-error"
        ]
        assert any("No space left" in e for e in errors)
        assert store.replay(run_id).identical


class TestStoreTamper:
    def test_tampered_table_is_quarantined_never_served(self, tmp_path):
        scenario = scen("chaos-tamper", seed=34)
        store = RunStore(tmp_path / "s")
        svc = JobService(store, fault_spec="store:tamper@1")
        svc.start()
        try:
            summary = svc.submit(scenario)
            run_id = summary["run_id"]
            assert wait_state(store, run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        # verify-on-read refuses the bytes and parks the run
        with pytest.raises(ChecksumMismatchError, match="integrity"):
            store.serve_table(run_id)
        assert store.status(run_id).get("state") == "quarantined"
        failures = store.failures()
        assert [f["run_id"] for f in failures] == [run_id]
        assert "integrity" in failures[0]["error"]
        # the untouched loader still reports the mismatch too
        with pytest.raises(ChecksumMismatchError):
            store.load_table(run_id)

    def test_tamper_helper_perturbs_without_fixing_checksum(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record, _ = store.register(scen("tamper-direct", seed=35))
        store.execute(record)
        before = (record.tables_dir / "SCENARIO.json").read_bytes()
        assert tamper_stored_table(record.root)
        after = (record.tables_dir / "SCENARIO.json").read_bytes()
        assert before != after
        data = json.loads(after)
        assert data["checksum"] == json.loads(before)["checksum"]


class TestQuarantineAndDegraded:
    def test_poison_run_quarantined_and_service_degrades(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(
            store, retry=fast_retry(attempts=3), degraded_after=3,
            fault_spec="worker:kill@1,worker:kill@2,worker:kill@3",
        )
        svc.start()
        try:
            summary = svc.submit(scen("poison", seed=36))
            run_id = summary["run_id"]
            assert wait_state(store, run_id, ("quarantined",)) == "quarantined"
            # three consecutive substrate deaths: degraded mode engaged
            assert svc.stats()["degraded"] is True
            with pytest.raises(ServiceDegradedError, match="degraded"):
                svc.submit(scen("rejected", seed=37))
            # quarantined runs report their final state on cancel
            assert svc.cancel(run_id)["state"] == "quarantined"
        finally:
            svc.stop(drain=True)
        status = store.status(run_id)
        assert "attempt 3/3" in status.get("error", "")
        events = [r["event"] for r in store.journal(run_id)]
        assert events.count("worker-died") == 3
        assert "quarantined" in events

    def test_one_success_restores_degraded_service(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store, degraded_after=2)
        svc._note_substrate_failure()
        svc._note_substrate_failure()
        assert svc.stats()["degraded"] is True
        with pytest.raises(ServiceDegradedError):
            svc.submit(scen("while-degraded", seed=38))
        svc._note_success()
        assert svc.stats()["degraded"] is False
        assert svc.submit(scen("after-recovery", seed=39))["state"] == "queued"

    def test_permanent_failure_is_not_retried(self, tmp_path):
        store = RunStore(tmp_path / "s")
        # n=8 with an unknown adversary never validates, so instead make
        # the run permanently fail at execution: corrupt scenario.json
        # after registration (ConfigurationError -> ReproError -> permanent).
        record, _ = store.register(scen("permanent", seed=40))
        (record.root / "scenario.json").write_text("{not json")
        svc = JobService(store, retry=fast_retry(attempts=3))
        svc.start()
        try:
            state = wait_state(store, record.run_id, ("failed", "quarantined"))
        finally:
            svc.stop(drain=True)
        assert state == "failed"  # permanent: failed directly, no retries
        attempts = [
            r for r in store.journal(record.run_id)
            if r["event"] == "worker-error"
        ]
        assert len(attempts) == 1

"""Scenario CLI: exit codes, store round-trips, tamper detection."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.service.cli import main

GOOD = """
scenario: cli-t
schema: 1
seed: 9
grid:
  kind: [lesk]
  n: [8]
  adversary: [random]
reps: 3
sharding: {block_size: 2}
"""

BAD = """
scenario: cli-bad
schema: 1
grid:
  n: [8]
  adversary: [bogus]
reps: 3
"""


@pytest.fixture()
def good(tmp_path):
    path = tmp_path / "good.yaml"
    path.write_text(GOOD)
    return path


@pytest.fixture()
def bad(tmp_path):
    path = tmp_path / "bad.yaml"
    path.write_text(BAD)
    return path


class TestValidate:
    def test_valid_document_exits_zero(self, good, capsys):
        assert main(["validate", str(good)]) == 0
        out = capsys.readouterr().out
        assert "cli-t" in out and "digest" in out

    def test_invalid_document_exits_one_with_paths(self, bad, capsys):
        assert main(["validate", str(bad)]) == 1
        assert "grid.adversary[0]" in capsys.readouterr().err

    def test_mixed_batch_fails(self, good, bad, capsys):
        assert main(["validate", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "cli-t" in captured.out  # the good one still reported
        assert "grid.adversary[0]" in captured.err

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "absent.yaml")]) == 1
        capsys.readouterr()


class TestRunAndReplay:
    def test_run_status_results_replay(self, good, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", str(good), "--store", store, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        run_id = out.split("run ")[1].split(" ")[0]

        assert main(["status", run_id, "--store", store]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"

        assert main(["results", run_id, "--store", store]) == 0
        assert "scenario cli-t" in capsys.readouterr().out

        assert main(["results", run_id, "--store", store, "--format", "csv"]) == 0
        assert capsys.readouterr().out.startswith("kind,")

        assert main(["replay", run_id, "--store", store]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

        assert main(["list", "--store", store]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == run_id

    def test_replay_of_tampered_store_exits_nonzero(
        self, good, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["run", str(good), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        (table_path,) = store_dir.glob("runs/*/tables/SCENARIO.json")
        data = json.loads(table_path.read_text())
        data["table"]["rows"][0]["median_slots"] = 1.0
        table_path.write_text(json.dumps(data))
        run_id = table_path.parent.parent.name
        assert main(["replay", run_id, "--store", str(store_dir)]) == 1
        assert "integrity violation" in capsys.readouterr().err

    def test_submit_registers_without_executing(self, good, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["submit", str(good), "--store", store]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["created"] is True
        assert summary["state"] == "queued"

    def test_unknown_run_id_exits_one(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["status", "ffff", "--store", store]) == 1
        assert "no run" in capsys.readouterr().err

    def test_store_or_url_required(self, capsys):
        assert main(["status", "abc"]) == 1
        assert "--store" in capsys.readouterr().err


class TestMainForwarding:
    def test_scenario_subcommand_forwards(self, good, capsys):
        assert repro_main(["scenario", "validate", str(good)]) == 0
        assert "cli-t" in capsys.readouterr().out

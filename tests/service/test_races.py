"""Restart races: double start, rescan vs in-flight runs, drain vs replay.

ISSUE 9 satellite: these paths must be idempotent and leave the store
consistent -- no run lost, none double-completed.
"""

from __future__ import annotations

import threading
import time

from repro.service.jobs import JobService
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore


def scen(name: str, seed: int = 3, reps: int = 2, n: int = 8):
    return scenario_from_jsonable(
        {
            "scenario": name,
            "schema": 1,
            "seed": seed,
            "grid": {"kind": ["lesk"], "n": [n], "adversary": ["random"]},
            "reps": reps,
            "sharding": {"block_size": 2},
        }
    )


def wait_state(store, run_id, states, timeout=60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = store.status(run_id).get("state")
        if state in states:
            return state
        time.sleep(0.01)
    raise AssertionError(
        f"run {run_id} never reached {states}; stuck at "
        f"{store.status(run_id)!r}"
    )


class TestDoubleStart:
    def test_second_start_is_a_noop(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        fleet = svc._fleet
        svc.start()  # must not respawn the fleet or re-run recovery
        assert svc._fleet is fleet
        try:
            summary = svc.submit(scen("double-start"))
            assert wait_state(store, summary["run_id"], ("done",)) == "done"
        finally:
            svc.stop(drain=True)


class TestRescanRaces:
    def test_rescan_while_worker_holds_the_run_coalesces(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        try:
            # enough reps that the run is observably in flight
            summary = svc.submit(scen("rescan-race", reps=24, n=16))
            run_id = summary["run_id"]
            wait_state(store, run_id, ("running",), timeout=30.0)
            # a rescan storm while the worker holds the run must coalesce
            for _ in range(5):
                svc.rescan()
            assert wait_state(store, run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        events = [r["event"] for r in store.journal(run_id)]
        # exactly one completion: the run was never double-dispatched
        assert events.count("done") == 1
        assert store.replay(run_id).identical

    def test_rescan_before_and_after_start_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record, _ = store.register(scen("rescan-idem", seed=91))
        svc = JobService(store)
        first = svc.rescan()
        second = svc.rescan()  # already pending: coalesced, not re-queued
        assert first == [record.run_id]
        assert second == []
        assert svc.stats()["pending"] == 1
        svc.start()
        try:
            assert wait_state(store, record.run_id, ("done",)) == "done"
        finally:
            svc.stop(drain=True)
        events = [r["event"] for r in store.journal(record.run_id)]
        assert events.count("done") == 1


class TestDrainVsReplay:
    def test_sigterm_drain_during_replay_leaves_store_consistent(self, tmp_path):
        store = RunStore(tmp_path / "s")
        svc = JobService(store)
        svc.start()
        summary = svc.submit(scen("drain-replay"))
        run_id = summary["run_id"]
        wait_state(store, run_id, ("done",))

        # an HTTP replay is mid-flight when the SIGTERM drain arrives
        reports = []

        def replay():
            reports.append(store.replay(run_id))

        thread = threading.Thread(target=replay)
        thread.start()
        svc.stop(drain=True)  # the SIGTERM path
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert reports and reports[0].identical
        assert store.status(run_id).get("state") == "done"
        # a second stop is also idempotent
        svc.stop(drain=True)

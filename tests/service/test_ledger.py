"""Sqlite run ledger: transitions, pagination, reconciliation, fallback."""

from __future__ import annotations

import json

from repro.service.jobs import JobService
from repro.service.ledger import RunLedger
from repro.service.scenario import scenario_from_jsonable
from repro.service.store import RunStore


def scen(name: str, seed: int = 3) -> dict:
    return scenario_from_jsonable(
        {
            "scenario": name,
            "schema": 1,
            "seed": seed,
            "grid": {"kind": ["lesk"], "n": [8], "adversary": ["random"]},
            "reps": 2,
            "sharding": {"block_size": 2},
        }
    )


class TestLedgerCore:
    def test_record_upserts_and_logs_transitions(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.db")
        ledger.record("r1", "queued", scenario="s", digest="d")
        ledger.record("r1", "running")
        ledger.record("r1", "done")
        rows = ledger.query()
        assert len(rows) == 1
        assert rows[0]["state"] == "done"
        assert rows[0]["scenario"] == "s"  # COALESCE keeps the metadata
        states = [t["state"] for t in ledger.transitions("r1")]
        assert states == ["queued", "running", "done"]

    def test_query_order_filters_and_pagination(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.db")
        for i in range(5):
            ledger.record(f"r{i}", "queued", scenario=f"s{i % 2}")
        ledger.record("r3", "done")
        # stable registration order, not update order
        assert [r["run_id"] for r in ledger.query()] == [
            "r0", "r1", "r2", "r3", "r4",
        ]
        assert [r["run_id"] for r in ledger.query(limit=2, offset=1)] == [
            "r1", "r2",
        ]
        assert [r["run_id"] for r in ledger.query(state="done")] == ["r3"]
        assert ledger.count() == 5
        assert ledger.count(state="queued") == 4
        assert ledger.count(name="s1") == 2
        assert ledger.states() == {"queued": 4, "done": 1}

    def test_failures_view_newest_first(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.db")
        ledger.record("ok", "done")
        ledger.record("bad1", "failed", error="boom")
        ledger.record("bad2", "quarantined", error="poison")
        rows = ledger.failures()
        assert [r["run_id"] for r in rows] == ["bad2", "bad1"]
        assert rows[1]["error"] == "boom"

    def test_attempts_counter(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.db")
        ledger.record("r1", "queued")
        assert ledger.record_attempt("r1") == 1
        assert ledger.record_attempt("r1") == 2
        assert ledger.query()[0]["attempts"] == 2
        assert ledger.record_attempt("missing") == 0

    def test_annotate_backfills_without_transition(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.db")
        ledger.record("r1", "queued")
        ledger.annotate("r1", scenario="s", digest="d")
        row = ledger.query()[0]
        assert (row["scenario"], len(ledger.transitions("r1"))) == ("s", 1)


class TestStoreIntegration:
    def test_register_and_state_changes_mirror_into_ledger(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record, _ = store.register(scen("mirrored"))
        store.set_state(record.run_id, "running")
        rows = store.ledger.query()
        assert rows[0]["run_id"] == record.run_id
        assert rows[0]["state"] == "running"
        assert rows[0]["scenario"] == "mirrored"

    def test_deleted_ledger_is_rebuilt_from_directory(self, tmp_path):
        store = RunStore(tmp_path / "s")
        a, _ = store.register(scen("rebuild-a", seed=11))
        b, _ = store.register(scen("rebuild-b", seed=12))
        store.set_state(b.run_id, "failed", error="x")
        store.ledger.close()
        (tmp_path / "s" / "ledger.db").unlink()
        # a fresh store instance auto-reconciles on first query
        fresh = RunStore(tmp_path / "s")
        by_id = {r["run_id"]: r for r in fresh.query()}
        assert by_id[a.run_id]["state"] == "queued"
        assert by_id[b.run_id]["state"] == "failed"
        assert by_id[a.run_id]["scenario"] == "rebuild-a"

    def test_reconcile_repairs_stale_rows_and_drops_ghosts(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record, _ = store.register(scen("stale"))
        # simulate the SIGKILL window: status.json moved on, ledger did not
        status = record.root / "status.json"
        status.write_text(json.dumps({"state": "done", "updated": 1.0}))
        store.ledger.record("ghost-run", "queued")
        summary = store.reconcile_ledger()
        assert summary["updated"] == 1 and summary["dropped"] == 1
        rows = store.ledger.query()
        assert [r["run_id"] for r in rows] == [record.run_id]
        assert rows[0]["state"] == "done"

    def test_unusable_ledger_falls_back_to_directory_scan(self, tmp_path):
        store = RunStore(tmp_path / "s")
        record, _ = store.register(scen("fallback"))
        store.ledger.close()
        db = tmp_path / "s" / "ledger.db"
        db.unlink()
        db.mkdir()  # a directory: sqlite cannot open it
        fresh = RunStore(tmp_path / "s")
        rows = fresh.query()
        assert [r["run_id"] for r in rows] == [record.run_id]
        assert rows[0]["state"] == "queued"
        assert fresh.count() == 1
        assert fresh.failures() == []

    def test_query_pagination_through_store(self, tmp_path):
        store = RunStore(tmp_path / "s")
        ids = [store.register(scen(f"p{i}", seed=50 + i))[0].run_id
               for i in range(4)]
        page = store.query(limit=2, offset=1)
        assert [r["run_id"] for r in page] == ids[1:3]
        assert store.count() == 4


class TestServiceRecovery:
    def test_rescan_recovers_from_ledgered_store(self, tmp_path):
        """The ledger-backed rescan path still recovers queued + running."""
        store = RunStore(tmp_path / "s")
        queued, _ = store.register(scen("led-q", seed=70))
        crashed, _ = store.register(scen("led-r", seed=71))
        store.set_state(crashed.run_id, "running")
        svc = JobService(store)
        recovered = svc.rescan()
        assert set(recovered) == {queued.run_id, crashed.run_id}

"""Tests for the sleep-capable geometric-level election baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.suite import make_adversary
from repro.errors import ConfigurationError
from repro.protocols.baselines.geometric_energy import (
    GeometricLevelStation,
    round_length,
)
from repro.sim.engine import simulate_stations
from repro.types import Action, CDMode, PerceivedState, SlotFeedback


def fb(transmitted: bool, perceived: PerceivedState) -> SlotFeedback:
    return SlotFeedback(transmitted=transmitted, perceived=perceived)


def run_election(n, adversary="none", seed=0, max_slots=100_000, T=8, eps=0.5):
    stations = [GeometricLevelStation() for _ in range(n)]
    adv = make_adversary(adversary, T=T, eps=eps)
    return (
        simulate_stations(
            stations,
            adversary=adv,
            cd_mode=CDMode.STRONG,
            max_slots=max_slots,
            seed=seed,
        ),
        stations,
    )


class TestRoundStructure:
    def test_round_length(self):
        assert round_length(4) == 5
        with pytest.raises(ConfigurationError):
            round_length(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricLevelStation(initial_guess=0)
        with pytest.raises(ConfigurationError):
            GeometricLevelStation().begin_slot(0)

    def test_station_transmits_exactly_once_per_sweep(self):
        st = GeometricLevelStation(initial_guess=4)
        st.reset(0, np.random.default_rng(1))
        actions = []
        for slot in range(4):  # the sweep of round 1
            actions.append(st.begin_slot(slot))
            st.end_slot(slot, fb(actions[-1] is Action.TRANSMIT, PerceivedState.NULL))
        assert actions.count(Action.TRANSMIT) == 1
        assert actions.count(Action.SLEEP) == 3

    def test_everyone_listens_at_confirmation(self):
        st = GeometricLevelStation(initial_guess=2)
        st.reset(0, np.random.default_rng(2))
        for slot in range(2):
            a = st.begin_slot(slot)
            st.end_slot(slot, fb(a is Action.TRANSMIT, PerceivedState.COLLISION))
        assert st.begin_slot(2) in (Action.LISTEN, Action.TRANSMIT)

    def test_failed_confirmation_doubles_guess(self):
        st = GeometricLevelStation(initial_guess=2)
        st.reset(0, np.random.default_rng(3))
        for slot in range(3):  # full round: 2 sweep + 1 confirm, all collide
            a = st.begin_slot(slot)
            st.end_slot(slot, fb(a is Action.TRANSMIT, PerceivedState.COLLISION))
        assert st._guess == 4
        assert st.rounds_played == 2

    def test_sweep_single_makes_round_winner_and_confirm_elects(self):
        st = GeometricLevelStation(initial_guess=2)
        st.reset(0, np.random.default_rng(4))
        won_sweep = False
        for slot in range(2):
            a = st.begin_slot(slot)
            if a is Action.TRANSMIT:
                st.end_slot(slot, fb(True, PerceivedState.SINGLE))
                won_sweep = True
            else:
                st.end_slot(slot, fb(False, PerceivedState.UNKNOWN))
        assert won_sweep  # level clamped to <= guess: always one transmit slot
        assert st.begin_slot(2) is Action.TRANSMIT  # confirmation
        st.end_slot(2, fb(True, PerceivedState.SINGLE))
        assert st.done and st.is_leader is True

    def test_listener_hears_confirmation(self):
        st = GeometricLevelStation(initial_guess=2)
        st.reset(0, np.random.default_rng(5))
        for slot in range(2):
            a = st.begin_slot(slot)
            st.end_slot(slot, fb(a is Action.TRANSMIT, PerceivedState.COLLISION))
        assert st.begin_slot(2) is Action.LISTEN
        st.end_slot(2, fb(False, PerceivedState.SINGLE))
        assert st.done and st.is_leader is False


class TestEndToEnd:
    @pytest.mark.parametrize("n", [4, 32, 256])
    def test_elects_exactly_one_leader(self, n):
        result, _ = run_election(n, seed=n)
        assert result.elected
        assert result.leaders_count == 1
        assert result.all_terminated

    def test_energy_is_sublogarithmic(self):
        """The whole point: per-station energy ~ rounds (loglog n), while
        LESK spends ~slots (log n) just listening."""
        n = 512
        result, stations = run_election(n, seed=9)
        assert result.elected
        per_station_energy = result.energy.total / n
        # LESK at this size runs ~120 slots, i.e. ~120 energy/station.
        assert per_station_energy < 25
        rounds = stations[0].rounds_played
        assert per_station_energy <= 3 * rounds + 3

    def test_fragile_under_confirmation_jamming(self):
        """The energy-vs-robustness trade-off: the round schedule is public
        and deterministic, so the confirmation slots are a precomputable
        jamming target.  They are sparse (one per round), so the budget
        grants every such jam -- and the protocol can never confirm."""
        from repro.adversary.base import Adversary, as_strategy
        from repro.protocols.baselines.geometric_energy import confirmation_slots

        cap = 3_000
        confirms = confirmation_slots(2, cap)
        strategy = as_strategy(
            lambda view, rng: view.slot in confirms, "confirmation-jammer"
        )
        adv = Adversary(strategy, T=16, eps=0.4, seed=1)
        stations = [GeometricLevelStation() for _ in range(64)]
        jammed = simulate_stations(
            stations, adversary=adv, cd_mode=CDMode.STRONG, max_slots=cap, seed=11
        )
        assert not jammed.elected
        # Sanity: every jam request was within budget (confirms are sparse).
        assert jammed.jam_denied == 0

        quiet, _ = run_election(64, adversary="none", seed=11)
        assert quiet.elected  # same protocol, same seed, no jamming


class TestFastCrossValidation:
    """The histogram-vectorized simulator is distributionally identical."""

    # Runs may time out under jamming (the protocol's documented
    # fragility); both engines censor at the same cap, so the censored
    # slot distributions remain comparable.
    CAP = 100_000

    def _fast(self, adversary, reps=80, n=48):
        from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

        out = []
        for seed in range(reps):
            r = simulate_geometric_fast(
                n,
                make_adversary(adversary, T=8, eps=0.5),
                max_slots=self.CAP,
                seed=seed,
            )
            out.append(min(r.slots, self.CAP))
        return np.asarray(out, dtype=float)

    def _faithful(self, adversary, reps=80, n=48):
        out = []
        for seed in range(reps):
            result, _ = run_election(
                n, adversary=adversary, seed=40_000 + seed, max_slots=self.CAP
            )
            out.append(min(result.slots, self.CAP))
        return np.asarray(out, dtype=float)

    @pytest.mark.parametrize("adversary", ["none", "saturating"])
    def test_time_distributions_agree(self, adversary):
        from scipy import stats

        fast = self._fast(adversary)
        faithful = self._faithful(adversary)
        ks = stats.ks_2samp(fast, faithful)
        assert ks.pvalue > 1e-4, (
            f"geometric fast vs faithful diverge under {adversary}: "
            f"p={ks.pvalue:.2e}"
        )

    def test_energy_agrees(self):
        from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

        n = 64
        fast_e, faithful_e = [], []
        for seed in range(40):
            rf = simulate_geometric_fast(
                n, make_adversary("none", T=8, eps=0.5), max_slots=100_000, seed=seed
            )
            fast_e.append(rf.energy.total / n)
            rs, _ = run_election(n, seed=50_000 + seed)
            faithful_e.append(rs.energy.total / n)
        assert np.mean(fast_e) == pytest.approx(np.mean(faithful_e), rel=0.3)

    def test_validation(self):
        from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

        adv = make_adversary("none", T=4, eps=0.5)
        with pytest.raises(ConfigurationError):
            simulate_geometric_fast(0, adv, 10)
        with pytest.raises(ConfigurationError):
            simulate_geometric_fast(4, adv, 0)
        with pytest.raises(ConfigurationError):
            simulate_geometric_fast(4, adv, 10, initial_guess=0)

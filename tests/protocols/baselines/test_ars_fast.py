"""Cross-validation of the vectorized ARS simulator against the
per-station ARSMACStation implementation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import make_adversary
from repro.errors import ConfigurationError
from repro.protocols.baselines.ars_fast import simulate_ars_fast
from repro.protocols.baselines.ars_mac import ARSMACStation, ars_gamma
from repro.sim.engine import simulate_stations
from repro.types import CDMode

N = 48
T = 8
EPS = 0.5
GAMMA = ars_gamma(N, T)


def fast_times(adversary, reps=80):
    out = []
    for seed in range(reps):
        result = simulate_ars_fast(
            N,
            GAMMA,
            make_adversary(adversary, T=T, eps=EPS),
            max_slots=500_000,
            seed=seed,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


def faithful_times(adversary, reps=80):
    out = []
    for seed in range(reps):
        stations = [ARSMACStation(GAMMA) for _ in range(N)]
        result = simulate_stations(
            stations,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            cd_mode=CDMode.STRONG,
            max_slots=500_000,
            seed=20_000 + seed,
            stop_on_first_single=True,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


@pytest.mark.parametrize("adversary", ["none", "saturating"])
def test_distributions_agree(adversary):
    fast = fast_times(adversary)
    faithful = faithful_times(adversary)
    ks = stats.ks_2samp(fast, faithful)
    assert ks.pvalue > 1e-4, (
        f"ARS fast vs faithful diverge under {adversary}: p={ks.pvalue:.2e}, "
        f"medians {np.median(fast):.0f} vs {np.median(faithful):.0f}"
    )


def test_validation():
    adv = make_adversary("none", T=4, eps=0.5)
    with pytest.raises(ConfigurationError):
        simulate_ars_fast(0, 0.1, adv, 10)
    with pytest.raises(ConfigurationError):
        simulate_ars_fast(4, 0.0, adv, 10)
    with pytest.raises(ConfigurationError):
        simulate_ars_fast(4, 0.1, adv, 0)


def test_leader_and_reproducibility():
    adv = make_adversary("saturating", T=T, eps=EPS)
    a = simulate_ars_fast(N, GAMMA, adv, max_slots=500_000, seed=3)
    adv2 = make_adversary("saturating", T=T, eps=EPS)
    b = simulate_ars_fast(N, GAMMA, adv2, max_slots=500_000, seed=3)
    assert a.elected and 0 <= a.leader < N
    assert (a.slots, a.leader, a.jams) == (b.slots, b.leader, b.jams)

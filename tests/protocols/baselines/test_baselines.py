"""Tests for the baseline protocols (ARS MAC, Willard, sweeps, strawman)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.suite import make_adversary
from repro.core.election import run_selection_resolution
from repro.errors import ConfigurationError
from repro.protocols.baselines.ars_mac import ARSMACStation, P_MAX, ars_gamma
from repro.protocols.baselines.nakano_olariu import NoCDSweepPolicy, UniformSweepPolicy
from repro.protocols.baselines.symmetric_walk import SymmetricWalkPolicy
from repro.protocols.baselines.willard import WillardPolicy
from repro.sim.engine import simulate_stations
from repro.types import CDMode, ChannelState, PerceivedState, SlotFeedback


def fb(transmitted: bool, perceived: PerceivedState) -> SlotFeedback:
    return SlotFeedback(transmitted=transmitted, perceived=perceived)


class TestARSGamma:
    def test_formula(self):
        assert ars_gamma(2**16, 2) == pytest.approx(1.0 / (1.0 + 4.0))

    def test_scale(self):
        assert ars_gamma(2**16, 2, scale=0.5) == pytest.approx(0.1)

    def test_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            ars_gamma(1, 4)


class TestARSMACStation:
    def make(self, gamma=0.1, **kw):
        st = ARSMACStation(gamma, **kw)
        st.reset(0, np.random.default_rng(3))
        return st

    def test_initial_state(self):
        st = self.make()
        assert st.p == P_MAX and st.T_v == 1 and st.c_v == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ARSMACStation(0.0)
        with pytest.raises(ConfigurationError):
            ARSMACStation(0.1, p_start=0.5)  # above p_max

    def test_idle_increases_p_capped(self):
        st = self.make(p_start=P_MAX / 2)
        st.begin_slot(0)
        st.end_slot(0, fb(False, PerceivedState.NULL))
        assert st.p == pytest.approx(1.1 * P_MAX / 2)
        for slot in range(1, 40):
            st.begin_slot(slot)
            st.end_slot(slot, fb(False, PerceivedState.NULL))
        assert st.p == P_MAX  # capped

    def test_election_mode_single_terminates(self):
        st = self.make()
        st.begin_slot(0)
        st.end_slot(0, fb(False, PerceivedState.SINGLE))
        assert st.done and st.is_leader is False
        st2 = self.make()
        st2.begin_slot(0)
        st2.end_slot(0, fb(True, PerceivedState.SINGLE))
        assert st2.done and st2.is_leader is True

    def test_mac_mode_single_backs_off(self):
        st = self.make(gamma=0.1, terminate_on_single=False)
        st.T_v = 5
        st.begin_slot(0)
        st.end_slot(0, fb(False, PerceivedState.SINGLE))
        assert not st.done
        assert st.p == pytest.approx(P_MAX / 1.1)
        assert st.T_v == 4

    def test_no_idle_window_decreases_p_and_grows_T(self):
        """The multiplicative back-off driven by c_v/T_v: with only
        collisions sensed, p halves (by (1+gamma) steps) every T_v slots
        and T_v grows by 2 each time."""
        st = self.make(gamma=0.5)
        p0 = st.p
        st.begin_slot(0)
        st.end_slot(0, fb(False, PerceivedState.COLLISION))
        # c_v exceeded T_v = 1 with no idle seen: back off.
        assert st.p == pytest.approx(p0 / 1.5)
        assert st.T_v == 3

    def test_transmit_hint(self):
        st = self.make()
        assert st.transmit_probability_hint() == P_MAX


class TestARSElection:
    def test_elects_against_jamming(self):
        n = 64
        stations = [ARSMACStation(ars_gamma(n, 8)) for _ in range(n)]
        adv = make_adversary("saturating", T=8, eps=0.5)
        result = simulate_stations(
            stations,
            adversary=adv,
            cd_mode=CDMode.STRONG,
            max_slots=500_000,
            seed=4,
            stop_on_first_single=True,
        )
        assert result.elected
        assert result.leader is not None


class TestWillard:
    def test_probe_doubles_exponent(self):
        p = WillardPolicy()
        assert p.transmit_probability(0) == 0.5  # u = 1
        p.observe(0, ChannelState.COLLISION)
        assert p.u == 2.0
        p.observe(1, ChannelState.COLLISION)
        assert p.u == 4.0

    def test_null_starts_bisection(self):
        p = WillardPolicy()
        p.observe(0, ChannelState.COLLISION)  # u: 1 -> 2
        p.observe(1, ChannelState.COLLISION)  # u: 2 -> 4
        p.observe(2, ChannelState.NULL)  # bracket [2, 4]
        assert p.phase == "bisect"
        assert p.u == pytest.approx(3.0)

    def test_bisection_converges_to_settle(self):
        p = WillardPolicy()
        for i in range(3):
            p.observe(i, ChannelState.COLLISION)
        p.observe(3, ChannelState.NULL)  # bracket [4, 8]
        p.observe(4, ChannelState.COLLISION)  # -> [6, 8]
        p.observe(5, ChannelState.NULL)  # -> [6, 7]: width 1 -> settle
        assert p.phase == "settle"
        assert 6.0 <= p.u <= 7.0

    def test_single_completes(self):
        p = WillardPolicy()
        p.observe(0, ChannelState.SINGLE)
        assert p.completed

    def test_settle_restart_after_patience(self):
        p = WillardPolicy()
        p._phase = "settle"
        for i in range(WillardPolicy.SETTLE_PATIENCE):
            p.observe(i, ChannelState.COLLISION)
        assert p.phase == "probe"
        assert p._restarts == 1

    def test_fast_without_adversary(self):
        result = run_selection_resolution(
            WillardPolicy(), n=2**14, eps=0.5, T=8, adversary="none", seed=1
        )
        assert result.elected
        assert result.slots < 60  # O(log log n) + settle attempts


class TestSweeps:
    def test_uniform_sweep_sawtooth(self):
        p = UniformSweepPolicy()
        exps = []
        for i in range(7):
            exps.append(p.u)
            p.observe(i, ChannelState.COLLISION)
        assert exps == [0.0, 1.0, 0.0, 1.0, 2.0, 0.0, 1.0]
        assert p.ceiling == 4

    def test_uniform_sweep_elects(self):
        result = run_selection_resolution(
            UniformSweepPolicy(), n=1024, eps=0.5, T=8, adversary="none", seed=3
        )
        assert result.elected
        assert result.slots < 400

    def test_no_cd_sweep_repeats_each_exponent(self):
        p = NoCDSweepPolicy(initial_ceiling=2)
        seen = []
        for i in range(6):
            seen.append(p.u)
            p.observe(i, ChannelState.COLLISION)
        # ceiling 2: exponent 0 twice, 1 twice, 2 twice...
        assert seen == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]

    def test_no_cd_sweep_elects(self):
        result = run_selection_resolution(
            NoCDSweepPolicy(), n=256, eps=0.5, T=8, adversary="none", seed=5,
            max_slots=50_000,
        )
        assert result.elected

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformSweepPolicy(initial_ceiling=0)
        with pytest.raises(ConfigurationError):
            NoCDSweepPolicy(initial_ceiling=0)


class TestSymmetricWalkStrawman:
    def test_updates_are_symmetric(self):
        p = SymmetricWalkPolicy()
        p.observe(0, ChannelState.COLLISION)
        assert p.u == 1.0
        p.observe(1, ChannelState.NULL)
        assert p.u == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SymmetricWalkPolicy(collision_delta=0.0)

    def test_walk_diverges_under_collision_forcer(self):
        """Section 2.1: with eps < 1/2 the adversary can push a symmetric
        estimate to infinity.  The collision-forcer jams every slot whose
        natural outcome would not be a Collision; at eps = 0.3 it owns 70%
        of every window and the +1/-1 walk drifts up without return."""
        import numpy as np

        from repro.adversary.suite import make_adversary
        from repro.sim.fast import simulate_uniform_fast

        adv = make_adversary("collision-forcer", T=16, eps=0.3, seed=1)
        result = simulate_uniform_fast(
            SymmetricWalkPolicy(),
            n=256,
            adversary=adv,
            max_slots=4_000,
            seed=7,
            record_trace=True,
            halt_on_single=False,
        )
        u = result.trace.u_array()
        # Monotone escape: after the initial climb the walk never returns
        # to the election band around log2(256) = 8.
        assert u[-1] > 200.0
        assert np.all(u[200:] > 20.0)

    def test_lesk_survives_same_attack(self):
        from repro.protocols.lesk import LESKPolicy

        result = run_selection_resolution(
            LESKPolicy(0.3),
            n=256,
            eps=0.3,
            T=16,
            adversary="collision-forcer",
            seed=7,
            max_slots=20_000,
        )
        assert result.elected

"""Tests for the protocol interfaces and the per-station adapter
(repro.protocols.base, repro.protocols.broadcast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.protocols.base import (
    UniformStationAdapter,
    probability_from_exponent,
)
from repro.protocols.broadcast import broadcast_feedback, transmit_probability
from repro.protocols.lesk import LESKPolicy
from repro.types import Action, CDMode, ChannelState, SlotFeedback, PerceivedState


class TestProbabilityFromExponent:
    def test_basic_values(self):
        assert probability_from_exponent(0.0) == 1.0
        assert probability_from_exponent(1.0) == 0.5
        assert probability_from_exponent(10.0) == pytest.approx(2.0**-10)

    def test_negative_clamps_to_one(self):
        assert probability_from_exponent(-3.0) == 1.0

    def test_huge_exponent_clamps_to_zero(self):
        assert probability_from_exponent(2000.0) == 0.0


class TestBroadcastSemantics:
    def test_transmit_probability_matches(self):
        assert transmit_probability(3.0) == pytest.approx(0.125)

    def test_strong_cd_returns_channel_state(self):
        for state in ChannelState:
            assert broadcast_feedback(True, state, CDMode.STRONG) is state
            assert broadcast_feedback(False, state, CDMode.STRONG) is state

    def test_weak_cd_transmitter_assumes_collision(self):
        """Function 3: 'if transmitted then return Collision'."""
        for state in ChannelState:
            assert (
                broadcast_feedback(True, state, CDMode.WEAK)
                is ChannelState.COLLISION
            )

    def test_weak_cd_listener_hears_channel(self):
        for state in ChannelState:
            assert broadcast_feedback(False, state, CDMode.WEAK) is state

    def test_no_cd_rejected(self):
        with pytest.raises(ConfigurationError):
            broadcast_feedback(False, ChannelState.NULL, CDMode.NO_CD)


def fb(transmitted: bool, perceived: PerceivedState) -> SlotFeedback:
    return SlotFeedback(transmitted=transmitted, perceived=perceived)


class TestAdapterLifecycle:
    def make(self, cd=CDMode.STRONG, eps=0.5):
        adapter = UniformStationAdapter(LESKPolicy(eps), cd_mode=cd)
        adapter.reset(0, np.random.default_rng(7))
        return adapter

    def test_requires_reset(self):
        adapter = UniformStationAdapter(LESKPolicy(0.5))
        with pytest.raises(ProtocolError):
            adapter.begin_slot(0)

    def test_double_begin_rejected(self):
        adapter = self.make()
        adapter.begin_slot(0)
        with pytest.raises(ProtocolError):
            adapter.begin_slot(1)

    def test_end_without_begin_rejected(self):
        adapter = self.make()
        with pytest.raises(ProtocolError):
            adapter.end_slot(0, fb(False, PerceivedState.NULL))

    def test_no_cd_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.NO_CD)

    def test_u_zero_always_transmits(self):
        adapter = self.make()
        assert adapter.begin_slot(0) is Action.TRANSMIT

    def test_done_station_listens(self):
        adapter = self.make()
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(True, PerceivedState.SINGLE))  # strong-CD win
        assert adapter.done and adapter.is_leader is True
        assert adapter.begin_slot(1) is Action.LISTEN
        assert adapter.transmit_probability_hint() == 0.0


class TestAdapterStrongCD:
    def make(self):
        adapter = UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.STRONG)
        adapter.reset(0, np.random.default_rng(7))
        return adapter

    def test_transmitter_single_becomes_leader(self):
        adapter = self.make()
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(True, PerceivedState.SINGLE))
        assert adapter.is_leader is True and adapter.done

    def test_listener_single_becomes_non_leader(self):
        adapter = self.make()
        adapter.policy._u = 5.0  # make listening plausible
        action = adapter.begin_slot(0)
        adapter.end_slot(0, fb(False, PerceivedState.SINGLE))
        assert adapter.is_leader is False and adapter.done
        assert action in (Action.TRANSMIT, Action.LISTEN)

    def test_collision_updates_policy(self):
        adapter = self.make()
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(True, PerceivedState.COLLISION))
        assert adapter.policy.u == pytest.approx(1.0 / 16.0)

    def test_null_updates_policy(self):
        adapter = self.make()
        adapter.policy._u = 4.0
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(False, PerceivedState.NULL))
        assert adapter.policy.u == pytest.approx(3.0)


class TestAdapterWeakCD:
    def make(self):
        adapter = UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.WEAK)
        adapter.reset(0, np.random.default_rng(7))
        return adapter

    def test_transmitter_assumes_collision_even_on_true_single(self):
        """The weak-CD transmitter cannot know it won: it applies the
        Collision update and keeps running (the Notification wrapper's
        whole reason to exist)."""
        adapter = self.make()
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(True, PerceivedState.UNKNOWN))
        assert not adapter.done
        assert adapter.policy.u == pytest.approx(1.0 / 16.0)

    def test_listener_single_terminates(self):
        adapter = self.make()
        adapter.policy._u = 5.0
        adapter.begin_slot(0)
        adapter.end_slot(0, fb(False, PerceivedState.SINGLE))
        assert adapter.done and adapter.is_leader is False

    def test_hints_expose_policy_state(self):
        adapter = self.make()
        assert adapter.transmit_probability_hint() == 1.0
        assert adapter.u_hint() == 0.0

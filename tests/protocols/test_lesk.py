"""Tests for LESK (Algorithm 1) -- repro.protocols.lesk."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocols.lesk import LESKPolicy, lesk_parameter_a
from repro.types import ChannelState


class TestParameters:
    def test_a_is_8_over_eps(self):
        assert lesk_parameter_a(0.5) == 16.0
        assert lesk_parameter_a(0.1) == pytest.approx(80.0)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_eps_rejected(self, eps):
        with pytest.raises(ConfigurationError):
            lesk_parameter_a(eps)

    def test_negative_initial_u_rejected(self):
        with pytest.raises(ConfigurationError):
            LESKPolicy(0.5, initial_u=-1.0)


class TestUpdates:
    def test_initial_probability_is_one(self):
        """u starts at 0: Broadcast(0) transmits with probability 1."""
        assert LESKPolicy(0.5).transmit_probability(0) == 1.0

    def test_collision_increments_by_1_over_a(self):
        p = LESKPolicy(0.5)  # a = 16
        p.observe(0, ChannelState.COLLISION)
        assert p.u == pytest.approx(1.0 / 16.0)
        assert p.collisions_seen == 1

    def test_null_decrements_by_one_with_floor(self):
        p = LESKPolicy(0.5, initial_u=0.5)
        p.observe(0, ChannelState.NULL)
        assert p.u == 0.0  # max(u - 1, 0)
        p2 = LESKPolicy(0.5, initial_u=3.0)
        p2.observe(0, ChannelState.NULL)
        assert p2.u == 2.0
        assert p2.nulls_seen == 1

    def test_floor_can_be_disabled(self):
        p = LESKPolicy(0.5, floor_at_zero=False)
        p.observe(0, ChannelState.NULL)
        assert p.u == -1.0

    def test_single_marks_completed(self):
        p = LESKPolicy(0.5)
        assert not p.completed
        p.observe(0, ChannelState.SINGLE)
        assert p.completed

    def test_asymmetry_ratio(self):
        """One Null neutralizes a = 8/eps Collisions (Sec 2.1 intuition)."""
        eps = 0.25
        p = LESKPolicy(eps, initial_u=5.0)
        for i in range(int(8 / eps)):
            p.observe(i, ChannelState.COLLISION)
        assert p.u == pytest.approx(6.0)
        p.observe(99, ChannelState.NULL)
        assert p.u == pytest.approx(5.0)

    def test_probability_tracks_u(self):
        p = LESKPolicy(0.5, initial_u=3.0)
        assert p.transmit_probability(0) == pytest.approx(0.125)

    def test_extreme_u_does_not_underflow(self):
        p = LESKPolicy(0.5, initial_u=5000.0)
        assert p.transmit_probability(0) == 0.0

    def test_clone_resets_state(self):
        p = LESKPolicy(0.3, initial_u=1.0)
        p.observe(0, ChannelState.COLLISION)
        q = p.clone()
        assert q.u == 1.0
        assert q.eps == 0.3
        assert not q.completed


class TestRegularBand:
    def test_band_contains_log2n(self):
        p = LESKPolicy(0.5)
        lo, hi = p.regular_band(1024)
        assert lo < math.log2(1024) < hi

    def test_band_matches_paper_formulas(self):
        eps = 0.5
        a = 16.0
        p = LESKPolicy(eps)
        lo, hi = p.regular_band(256)
        u0 = 8.0
        assert lo == pytest.approx(u0 - math.log2(2 * math.log(a)))
        assert hi == pytest.approx(u0 + 0.5 * math.log2(a) + 1.0)


@given(
    states=st.lists(
        st.sampled_from([ChannelState.NULL, ChannelState.COLLISION]),
        min_size=0,
        max_size=200,
    ),
    eps=st.floats(min_value=0.05, max_value=0.95),
)
def test_u_matches_closed_form_recurrence(states, eps):
    """Property: u equals the fold of the Algorithm 1 update rule."""
    policy = LESKPolicy(eps)
    a = 8.0 / eps
    expected = 0.0
    for i, state in enumerate(states):
        policy.observe(i, state)
        if state is ChannelState.NULL:
            expected = max(expected - 1.0, 0.0)
        else:
            expected += 1.0 / a
    assert policy.u == pytest.approx(expected, abs=1e-9)
    assert policy.u >= 0.0
    assert 0.0 <= policy.transmit_probability(len(states)) <= 1.0

"""Tests for the C1/C2/C3 interval partition -- repro.protocols.intervals."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocols.intervals import (
    interval_bounds,
    interval_of_slot,
    first_slot_of_interval,
    slots_of_interval,
)


class TestPaperValues:
    def test_first_block_matches_paper(self):
        """C^1_1 = {3,4}, C^1_2 = {5,6}, C^1_3 = {7,8}."""
        assert list(slots_of_interval(1, 1)) == [3, 4]
        assert list(slots_of_interval(1, 2)) == [5, 6]
        assert list(slots_of_interval(1, 3)) == [7, 8]

    def test_second_block(self):
        """C^2_1 = {9..12} etc."""
        assert list(slots_of_interval(2, 1)) == [9, 10, 11, 12]
        assert list(slots_of_interval(2, 3)) == [17, 18, 19, 20]

    def test_interval_size_is_2_to_i(self):
        for i in range(1, 12):
            for j in (1, 2, 3):
                start, end = interval_bounds(i, j)
                assert end - start == 2**i

    def test_slots_before_three_are_unassigned(self):
        for slot in range(3):
            assert interval_of_slot(slot) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interval_bounds(0, 1)
        with pytest.raises(ConfigurationError):
            interval_bounds(1, 4)
        with pytest.raises(ConfigurationError):
            interval_of_slot(-1)

    def test_first_slot_helper(self):
        assert first_slot_of_interval(1, 1) == 3
        assert first_slot_of_interval(3, 2) == 4 * 8 - 3


class TestTiling:
    def test_partition_tiles_timeline_without_gaps(self):
        """Every slot >= 3 lies in exactly one interval, contiguously."""
        expected = []
        for i in range(1, 7):
            for j in (1, 2, 3):
                expected.extend((i, j, off) for off in range(2**i))
        for slot_index, (i, j, off) in enumerate(expected):
            iv = interval_of_slot(slot_index + 3)
            assert (iv.i, iv.j, iv.offset) == (i, j, off)


@given(slot=st.integers(min_value=3, max_value=10**12))
def test_locator_agrees_with_bounds(slot):
    """Property: interval_of_slot inverts interval_bounds at any scale."""
    iv = interval_of_slot(slot)
    assert iv is not None
    start, end = interval_bounds(iv.i, iv.j)
    assert start <= slot < end
    assert iv.offset == slot - start
    assert iv.size == 2**iv.i


class TestFixedPartition:
    def test_tiling_from_slot_zero(self):
        from repro.protocols.intervals import fixed_partition

        locate = fixed_partition(4)
        iv0 = locate(0)
        assert (iv0.i, iv0.j, iv0.offset, iv0.size) == (1, 1, 0, 4)
        iv11 = locate(11)
        assert (iv11.i, iv11.j, iv11.offset) == (1, 3, 3)
        iv12 = locate(12)
        assert (iv12.i, iv12.j) == (2, 1)

    def test_constant_size(self):
        from repro.protocols.intervals import fixed_partition

        locate = fixed_partition(7)
        assert all(locate(s).size == 7 for s in range(0, 100, 13))

    def test_validation(self):
        from repro.protocols.intervals import fixed_partition

        with pytest.raises(ConfigurationError):
            fixed_partition(0)
        with pytest.raises(ConfigurationError):
            fixed_partition(4)(-1)

    def test_notification_runs_on_fixed_partition(self):
        """The state machine is partition-agnostic: with a fixed partition
        large enough for A, LEWK still elects on a quiet channel."""
        from repro.adversary.suite import make_adversary
        from repro.protocols.intervals import fixed_partition
        from repro.protocols.lesk import LESKPolicy
        from repro.protocols.notification import NotificationStation
        from repro.sim.engine import simulate_stations
        from repro.types import CDMode

        stations = [
            NotificationStation(lambda: LESKPolicy(0.5), partition=fixed_partition(256))
            for _ in range(6)
        ]
        result = simulate_stations(
            stations,
            adversary=make_adversary("none", T=8, eps=0.5),
            cd_mode=CDMode.WEAK,
            max_slots=20_000,
            seed=3,
        )
        assert result.elected and result.leaders_count == 1

"""Tests for Estimation(L) (Function 2) -- repro.protocols.estimation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocols.estimation import EstimationPolicy
from repro.types import ChannelState


def drive(policy: EstimationPolicy, states):
    for i, s in enumerate(states):
        policy.observe(i, s)


class TestRoundStructure:
    def test_round_r_has_2_to_r_slots(self):
        p = EstimationPolicy(L=2)
        assert p.current_round == 1
        drive(p, [ChannelState.COLLISION] * 2)  # round 1: 2 slots, no nulls
        assert p.current_round == 2
        drive(p, [ChannelState.COLLISION] * 4)  # round 2: 4 slots
        assert p.current_round == 3

    def test_probability_is_2_to_minus_2_to_round(self):
        p = EstimationPolicy()
        assert p.transmit_probability(0) == pytest.approx(2.0**-2)
        drive(p, [ChannelState.COLLISION] * 2)
        assert p.transmit_probability(2) == pytest.approx(2.0**-4)
        drive(p, [ChannelState.COLLISION] * 4)
        assert p.transmit_probability(6) == pytest.approx(2.0**-8)

    def test_returns_round_when_L_nulls_seen(self):
        p = EstimationPolicy(L=2)
        drive(p, [ChannelState.COLLISION] * 2)  # round 1 fails
        drive(
            p,
            [
                ChannelState.NULL,
                ChannelState.COLLISION,
                ChannelState.NULL,
                ChannelState.COLLISION,
            ],
        )  # round 2: two nulls
        assert p.completed
        assert p.result == 2

    def test_nulls_do_not_carry_across_rounds(self):
        p = EstimationPolicy(L=2)
        drive(p, [ChannelState.NULL, ChannelState.COLLISION])  # round 1: 1 null
        assert not p.completed
        drive(p, [ChannelState.NULL] + [ChannelState.COLLISION] * 3)  # round 2: 1 null
        assert not p.completed

    def test_single_counts_as_non_null(self):
        p = EstimationPolicy(L=1)
        drive(p, [ChannelState.SINGLE, ChannelState.SINGLE])
        assert not p.completed

    def test_L_one_returns_immediately_on_null(self):
        p = EstimationPolicy(L=1)
        drive(p, [ChannelState.NULL, ChannelState.COLLISION])
        assert p.completed
        assert p.result == 1

    def test_observe_after_completion_is_noop(self):
        p = EstimationPolicy(L=1)
        drive(p, [ChannelState.NULL, ChannelState.NULL])
        steps = p.total_steps
        p.observe(99, ChannelState.NULL)
        assert p.total_steps == steps

    def test_max_round_cap(self):
        p = EstimationPolicy(L=1, max_round=3)
        drive(p, [ChannelState.COLLISION] * (2 + 4 + 8))
        assert p.completed
        assert p.result == 3


class TestValidation:
    def test_rejects_bad_L(self):
        with pytest.raises(ConfigurationError):
            EstimationPolicy(L=0)

    def test_rejects_bad_max_round(self):
        with pytest.raises(ConfigurationError):
            EstimationPolicy(max_round=0)

    def test_clone(self):
        p = EstimationPolicy(L=3, max_round=10)
        drive(p, [ChannelState.COLLISION] * 2)
        q = p.clone()
        assert q.L == 3 and q.max_round == 10 and q.current_round == 1


@given(
    null_round=st.integers(min_value=1, max_value=6),
    # L <= 2 so even the first (2-slot) round can reach the threshold.
    L=st.integers(min_value=1, max_value=2),
)
def test_total_steps_is_geometric_sum(null_round, L):
    """If the first round with >= L nulls is r, the total step count is
    2 + 4 + ... + 2^r = 2^(r+1) - 2 -- the Lemma 2.8 runtime structure."""
    p = EstimationPolicy(L=L)
    for r in range(1, null_round + 1):
        size = 2**r
        if r < null_round:
            states = [ChannelState.COLLISION] * size
        else:
            states = [ChannelState.NULL] * L + [ChannelState.COLLISION] * (size - L)
        drive(p, states)
    assert p.completed
    assert p.result == null_round
    assert p.total_steps == 2 ** (null_round + 1) - 2

"""Tests for LESU (Algorithm 2) -- repro.protocols.lesu."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.protocols.lesu import DEFAULT_C, LESUPolicy, lesu_schedule
from repro.types import ChannelState


class TestSchedule:
    def test_diagonal_order(self):
        subs = [s for _, s in zip(range(6), lesu_schedule(t0=8.0))]
        assert [(s.i, s.j) for s in subs] == [
            (1, 1),
            (2, 1),
            (2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
        ]

    def test_eps_j_is_2_to_minus_j_thirds(self):
        subs = list(zip(range(10), lesu_schedule(t0=4.0)))
        for _, s in subs:
            assert s.eps == pytest.approx(2.0 ** (-s.j / 3.0))

    def test_duration_formula(self):
        """duration = ceil(3 * 2^i * t0 / j) = ceil(t_i * i / j) with
        t_i = t0/(eps_i^3 log2(1/eps_i))."""
        t0 = 10.0
        for _, s in zip(range(12), lesu_schedule(t0)):
            t_i = t0 / ((2.0 ** (-s.i / 3.0)) ** 3 * (s.i / 3.0))
            assert s.duration == math.ceil(t_i * s.i / s.j)

    def test_bad_t0_rejected(self):
        with pytest.raises(ConfigurationError):
            list(lesu_schedule(0.0))


class TestPolicyPhases:
    def test_starts_in_estimation(self):
        p = LESUPolicy()
        assert p.phase == "estimation"
        assert p.transmit_probability(0) == pytest.approx(2.0**-2)

    def test_transitions_to_election_after_estimation(self):
        p = LESUPolicy(c=2.0)
        # Round 1 of Estimation(2): two Nulls complete it immediately.
        p.observe(0, ChannelState.NULL)
        p.observe(1, ChannelState.NULL)
        assert p.phase == "election"
        assert p.t0 == pytest.approx(2.0 * 2.0 ** (1 + 1))
        assert p.current_subrun is not None
        assert (p.current_subrun.i, p.current_subrun.j) == (1, 1)

    def test_subruns_advance_after_duration(self):
        p = LESUPolicy(c=0.25)  # small t0 for short sub-runs
        p.observe(0, ChannelState.NULL)
        p.observe(1, ChannelState.NULL)
        first = p.current_subrun
        for step in range(first.duration):
            p.observe(step, ChannelState.COLLISION)
        assert p.current_subrun != first
        assert p.subruns_started == 2

    def test_lesk_state_resets_between_subruns(self):
        p = LESUPolicy(c=0.25)
        p.observe(0, ChannelState.NULL)
        p.observe(1, ChannelState.NULL)
        for step in range(p.current_subrun.duration):
            p.observe(step, ChannelState.COLLISION)
        # A fresh LESK sub-run starts at u = 0 -> probability 1.
        assert p.transmit_probability(0) == 1.0

    def test_single_completes_policy(self):
        p = LESUPolicy()
        p.observe(0, ChannelState.SINGLE)
        assert p.completed

    def test_u_exposes_broadcast_exponent(self):
        p = LESUPolicy()
        assert p.u == 2.0  # estimation round 1 -> Broadcast(2^1)
        p.observe(0, ChannelState.NULL)
        p.observe(1, ChannelState.NULL)
        assert p.u == 0.0  # fresh LESK sub-run

    def test_bad_c_rejected(self):
        with pytest.raises(ConfigurationError):
            LESUPolicy(c=0.0)

    def test_clone_restarts(self):
        p = LESUPolicy(c=3.0)
        p.observe(0, ChannelState.NULL)
        p.observe(1, ChannelState.NULL)
        q = p.clone()
        assert q.phase == "estimation"
        assert q.c == 3.0

    def test_default_c_is_documented_value(self):
        assert LESUPolicy().c == DEFAULT_C


class TestScheduleCoverage:
    def test_schedule_eventually_tries_small_eps_long_enough(self):
        """Theorem 2.9's mechanism: for any true eps there is a sub-run with
        eps/2 <= eps_j <= eps whose duration exceeds the Theorem 2.6 need."""
        t0 = 8.0
        eps_true = 0.21
        needed = 5000.0
        for _, s in zip(range(500), lesu_schedule(t0)):
            if eps_true / 2.0 <= s.eps <= eps_true and s.duration >= needed:
                return
        pytest.fail("schedule never covered the target (eps, duration)")

"""Tests for the Notification wrapper (Function 4) -- scripted state-machine
walkthrough plus full engine integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.suite import make_adversary
from repro.core.election import elect_leader
from repro.protocols.base import UniformPolicy
from repro.protocols.lesk import LESKPolicy
from repro.protocols.notification import NotificationStation, Phase
from repro.types import Action, ChannelState, PerceivedState, SlotFeedback


class SilentPolicy(UniformPolicy):
    """Never transmits; records its observations (test instrument)."""

    def __init__(self) -> None:
        self.observations: list[ChannelState] = []

    def transmit_probability(self, step: int) -> float:
        return 0.0

    def observe(self, step: int, state: ChannelState) -> None:
        self.observations.append(state)

    def clone(self) -> "SilentPolicy":
        return SilentPolicy()


def fb(transmitted: bool, perceived: PerceivedState) -> SlotFeedback:
    return SlotFeedback(transmitted=transmitted, perceived=perceived)


def make_station(factory=SilentPolicy, sid=0) -> NotificationStation:
    st = NotificationStation(factory)
    st.reset(sid, np.random.default_rng(sid))
    return st


def advance_quiet(stations, slot):
    """Run one slot in which nothing is heard (Null everywhere)."""
    for st in stations:
        st.begin_slot(slot)
        st.end_slot(slot, fb(False, PerceivedState.NULL))


class TestScriptedScenario:
    """Replays the Lemma 3.1 proof narrative with three stations:
    l wins in C1, s wins in C2, l notifies in C3, l quits on Null in C1."""

    def test_full_protocol_walkthrough(self):
        l, s, r = (make_station(sid=i) for i in range(3))
        stations = [l, s, r]

        # Slots 0-2: outside the partition; nothing can happen.
        for slot in range(3):
            advance_quiet(stations, slot)
        assert all(st.phase is Phase.RUN_C1 for st in stations)

        # Slot 3 (first slot of C^1_1): l transmits a successful Single.
        for st in stations:
            st.begin_slot(3)
        l.end_slot(3, fb(True, PerceivedState.UNKNOWN))
        s.end_slot(3, fb(False, PerceivedState.SINGLE))
        r.end_slot(3, fb(False, PerceivedState.SINGLE))
        assert l.phase is Phase.RUN_C1 and l.is_leader is None
        assert s.phase is Phase.RUN_C2 and s.is_leader is False
        assert r.phase is Phase.RUN_C2 and r.is_leader is False

        # Slot 4 (rest of C^1_1): quiet.
        advance_quiet(stations, 4)

        # Slot 5 (C^1_2): s transmits a successful Single.
        for st in stations:
            st.begin_slot(5)
        s.end_slot(5, fb(True, PerceivedState.UNKNOWN))
        l.end_slot(5, fb(False, PerceivedState.SINGLE))
        r.end_slot(5, fb(False, PerceivedState.SINGLE))
        # l was the only station with leader undefined -> it is the leader.
        assert l.phase is Phase.NOTIFY_LEADER and l.is_leader is True
        # r heard the second Single with leader=false -> notify mode.
        assert r.phase is Phase.NOTIFY_NONLEADER
        # s (the transmitter) heard nothing and keeps running A in C2.
        assert s.phase is Phase.RUN_C2

        advance_quiet(stations, 6)

        # Slot 7 (C^1_3): the leader transmits; everyone else hears it.
        actions = {id(st): st.begin_slot(7) for st in stations}
        assert actions[id(l)] is Action.TRANSMIT
        assert actions[id(s)] is Action.LISTEN
        l.end_slot(7, fb(True, PerceivedState.UNKNOWN))
        s.end_slot(7, fb(False, PerceivedState.SINGLE))
        r.end_slot(7, fb(False, PerceivedState.SINGLE))
        assert s.done and s.is_leader is False
        assert r.done and r.is_leader is False
        assert not l.done

        advance_quiet(stations, 8)

        # Slot 9 (C^2_1): silence in C1 tells the leader everyone knows.
        l.begin_slot(9)
        l.end_slot(9, fb(False, PerceivedState.NULL))
        assert l.done and l.is_leader is True

    def test_nonleader_transmits_in_c1_while_waiting(self):
        st = make_station()
        st.phase = Phase.NOTIFY_NONLEADER
        st._leader = False
        assert st.begin_slot(3) is Action.TRANSMIT  # C^1_1 slot
        st.end_slot(3, fb(True, PerceivedState.UNKNOWN))
        assert st.begin_slot(5) is Action.LISTEN  # C^1_2 slot
        st.end_slot(5, fb(False, PerceivedState.NULL))

    def test_leader_ignores_c1_single_while_notifying(self):
        st = make_station()
        st.phase = Phase.NOTIFY_LEADER
        st._leader = True
        st.begin_slot(3)
        st.end_slot(3, fb(False, PerceivedState.SINGLE))
        assert st.phase is Phase.NOTIFY_LEADER and not st.done

    def test_run_c1_station_hearing_c3_single_finishes_as_nonleader(self):
        """Defensive branch: a straggler still in RUN_C1 that hears the
        leader's C3 announcement terminates as a non-leader."""
        st = make_station()
        st.begin_slot(7)  # C^1_3
        st.end_slot(7, fb(False, PerceivedState.SINGLE))
        assert st.done and st.is_leader is False


class TestAlgorithmRestarts:
    def test_fresh_policy_per_interval(self):
        """The paper reverts A to its initial state (fresh randomness) at
        every interval boundary."""
        created = []

        def factory():
            p = SilentPolicy()
            created.append(p)
            return p

        st = make_station(factory)
        # C^1_1 = {3, 4}: one instance, two observations.
        for slot in (3, 4):
            st.begin_slot(slot)
            st.end_slot(slot, fb(False, PerceivedState.NULL))
        assert len(created) == 1
        assert len(created[0].observations) == 2
        # Nothing runs in C^1_2 / C^1_3 while still in RUN_C1...
        for slot in (5, 6, 7, 8):
            st.begin_slot(slot)
            st.end_slot(slot, fb(False, PerceivedState.COLLISION))
        assert len(created) == 1
        # ...and C^2_1 = {9..12} starts a fresh instance.
        st.begin_slot(9)
        st.end_slot(9, fb(False, PerceivedState.NULL))
        assert len(created) == 2
        assert created[1].observations == [ChannelState.NULL]

    def test_transmitting_step_feeds_collision_to_policy(self):
        """Weak-CD Broadcast: the transmitter assumes Collision."""

        class AlwaysTransmit(SilentPolicy):
            def transmit_probability(self, step: int) -> float:
                return 1.0

        st = make_station(AlwaysTransmit)
        assert st.begin_slot(3) is Action.TRANSMIT
        st.end_slot(3, fb(True, PerceivedState.UNKNOWN))
        assert st._alg.observations == [ChannelState.COLLISION]


class TestEngineIntegration:
    @pytest.mark.parametrize("n", [2, 3, 5, 16])
    def test_lewk_elects_exactly_one_leader(self, n):
        result = elect_leader(
            n=n, protocol="lewk", eps=0.5, T=8, adversary="none", seed=n
        )
        assert result.elected
        assert result.leaders_count == 1
        assert result.all_terminated

    @pytest.mark.parametrize(
        "adversary", ["saturating", "single-suppressor", "periodic-front"]
    )
    def test_lewk_robust_to_jamming(self, adversary):
        result = elect_leader(
            n=12, protocol="lewk", eps=0.5, T=8, adversary=adversary, seed=99
        )
        assert result.elected
        assert result.leaders_count == 1

    def test_lewu_fully_parameter_free(self):
        result = elect_leader(
            n=10, protocol="lewu", eps=0.5, T=8, adversary="saturating", seed=5
        )
        assert result.elected
        assert result.leaders_count == 1

    def test_leader_is_first_c1_single_transmitter(self):
        """The elected leader must be the station whose C1 transmission
        produced the first Single in C1 (the proof's station l)."""
        result = elect_leader(
            n=8, protocol="lewk", eps=0.5, T=8, adversary="none", seed=17,
            record_trace=True,
        )
        assert result.elected
        # The winning slot is the first successful single overall (it must
        # occur in C1, since nothing runs in C2 before it).
        from repro.protocols.intervals import interval_of_slot

        iv = interval_of_slot(result.first_single_slot)
        assert iv is not None and iv.j == 1

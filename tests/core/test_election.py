"""Tests for the public elect_leader API (repro.core.election)."""

from __future__ import annotations

import pytest

from repro.core.config import ElectionConfig
from repro.core.election import elect_leader, run_config, run_selection_resolution
from repro.errors import ConfigurationError
from repro.protocols.baselines.willard import WillardPolicy


class TestElectLeader:
    @pytest.mark.parametrize("protocol", ["lesk", "lesu", "lewk", "lewu"])
    def test_all_protocols_elect(self, protocol):
        result = elect_leader(
            n=24, protocol=protocol, eps=0.5, T=8, adversary="saturating", seed=1
        )
        assert result.elected
        assert result.leaders_count == 1

    def test_leader_id_in_range(self):
        result = elect_leader(n=40, seed=2)
        assert result.leader is not None and 0 <= result.leader < 40

    def test_seed_reproducibility_through_api(self):
        a = elect_leader(n=100, adversary="saturating", seed=7)
        b = elect_leader(n=100, adversary="saturating", seed=7)
        assert (a.slots, a.leader, a.jams) == (b.slots, b.leader, b.jams)

    def test_record_trace_flag(self):
        result = elect_leader(n=16, seed=3, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.slots
        assert elect_leader(n=16, seed=3).trace is None

    def test_weak_protocol_on_fast_engine(self):
        """engine='fast' on a weak-CD protocol uses the aggregate-state
        Notification simulator (n >= 3 required)."""
        result = elect_leader(n=8, protocol="lewk", engine="fast", seed=1)
        assert result.elected and result.leaders_count == 1
        with pytest.raises(ConfigurationError):
            elect_leader(n=2, protocol="lewk", engine="fast")

    def test_explicit_faithful_engine_for_strong(self):
        result = elect_leader(n=16, protocol="lesk", engine="faithful", seed=4)
        assert result.elected

    def test_max_slots_respected(self):
        result = elect_leader(n=1024, max_slots=3, seed=5)
        assert result.slots <= 3
        assert not result.elected

    def test_lesu_c_is_threaded_through(self):
        # A huge c makes t0 huge; with a tiny slot cap the estimation phase
        # alone fits but behaviour must stay valid.
        result = elect_leader(n=16, protocol="lesu", lesu_c=50.0, seed=6)
        assert result.elected


class TestRunConfig:
    def test_equivalent_to_elect_leader(self):
        config = ElectionConfig(n=64, protocol="lesk", adversary="saturating", seed=11)
        a = run_config(config)
        b = elect_leader(n=64, protocol="lesk", adversary="saturating", seed=11)
        assert (a.slots, a.leader) == (b.slots, b.leader)


class TestRunSelectionResolution:
    def test_custom_policy(self):
        result = run_selection_resolution(
            WillardPolicy(), n=512, eps=0.5, T=8, adversary="none", seed=8
        )
        assert result.elected

    def test_respects_max_slots(self):
        result = run_selection_resolution(
            WillardPolicy(), n=512, eps=0.5, T=8, adversary="none", seed=8, max_slots=1
        )
        assert result.slots == 1


class TestCustomStrategyObjects:
    def test_elect_leader_accepts_strategy_instance(self):
        from repro.adversary.base import as_strategy

        strategy = as_strategy(lambda view, rng: view.slot % 2 == 0, "odd-even")
        result = elect_leader(
            n=128, eps=0.5, T=8, adversary=strategy, seed=4, record_trace=True
        )
        assert result.elected
        jams = result.trace.jammed_array()
        # Jams only ever on even slots (clamped subset of the intent).
        import numpy as np

        assert not np.any(jams[1::2])

    def test_strategy_instance_is_reset_between_runs(self):
        from repro.adversary.combinators import AnyOf
        from repro.adversary.oblivious import SaturatingJammer

        strategy = AnyOf(SaturatingJammer())
        a = elect_leader(n=64, eps=0.5, T=8, adversary=strategy, seed=5)
        b = elect_leader(n=64, eps=0.5, T=8, adversary=strategy, seed=5)
        assert (a.slots, a.jams) == (b.slots, b.jams)

"""Tests for ElectionConfig and slot budgets (repro.core.config)."""

from __future__ import annotations

import pytest

from repro.core.config import PROTOCOLS, ElectionConfig, default_slot_budget
from repro.errors import ConfigurationError
from repro.types import CDMode


class TestElectionConfig:
    def test_protocol_table(self):
        assert set(PROTOCOLS) == {"lesk", "lesu", "lewk", "lewu"}

    @pytest.mark.parametrize(
        "protocol,cd,knows",
        [
            ("lesk", CDMode.STRONG, True),
            ("lesu", CDMode.STRONG, False),
            ("lewk", CDMode.WEAK, True),
            ("lewu", CDMode.WEAK, False),
        ],
    )
    def test_modes_and_knowledge(self, protocol, cd, knows):
        config = ElectionConfig(n=4, protocol=protocol)
        assert config.cd_mode is cd
        assert config.knows_eps is knows

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectionConfig(n=4, protocol="raft")

    @pytest.mark.parametrize("bad", [dict(n=0), dict(eps=0.0), dict(eps=1.0), dict(T=0)])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ElectionConfig(**{"n": 4, **bad})

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectionConfig(n=4, engine="warp")

    def test_engine_resolution(self):
        assert ElectionConfig(n=4, protocol="lesk").resolved_engine() == "fast"
        assert ElectionConfig(n=4, protocol="lewk").resolved_engine() == "faithful"
        assert (
            ElectionConfig(n=4, protocol="lesk", engine="faithful").resolved_engine()
            == "faithful"
        )

    def test_slot_budget_override(self):
        assert ElectionConfig(n=4, max_slots=77).slot_budget() == 77


class TestDefaultSlotBudget:
    def test_monotone_in_n(self):
        budgets = [default_slot_budget(n, 0.5, 16) for n in (16, 256, 4096, 2**16)]
        assert budgets == sorted(budgets)

    def test_monotone_in_T(self):
        budgets = [default_slot_budget(1024, 0.5, T) for T in (16, 256, 4096)]
        assert budgets == sorted(budgets)

    def test_grows_as_eps_shrinks(self):
        assert default_slot_budget(1024, 0.1, 16) > default_slot_budget(1024, 0.8, 16)

    def test_weak_protocols_get_notification_factor(self):
        strong = default_slot_budget(1024, 0.5, 16, "lesk")
        weak = default_slot_budget(1024, 0.5, 16, "lewk")
        assert weak == pytest.approx(8 * strong, rel=0.01)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            default_slot_budget(0, 0.5, 16)

    def test_budget_is_actually_sufficient(self):
        """The budget must be generous: LESK succeeds within it for every
        registry adversary at a representative size."""
        from repro.core.election import elect_leader

        for adversary in ("saturating", "single-suppressor", "periodic-front"):
            result = elect_leader(
                n=512, protocol="lesk", eps=0.4, T=64, adversary=adversary, seed=9
            )
            assert result.elected, adversary

"""Tests for the applications layer (size estimation, k-selection, fair use)."""

from __future__ import annotations

import math

import pytest

from repro.applications.fair_use import FairUseReport, jain_index, simulate_fair_use
from repro.applications.k_selection import select_k_leaders
from repro.applications.size_estimation import (
    estimate_loglog_size,
    estimate_size_walk,
)
from repro.errors import ConfigurationError


class TestSizeWalkEstimator:
    @pytest.mark.parametrize("n", [64, 1024, 2**14])
    def test_estimate_within_bracket_no_adversary(self, n):
        est = estimate_size_walk(n=n, eps=0.5, T=16, adversary="none", seed=1)
        assert est.n_low <= n <= est.n_high
        assert est.log2_estimate == pytest.approx(math.log2(n), abs=2.5)

    @pytest.mark.parametrize("adversary", ["saturating", "silence-masker"])
    def test_estimate_survives_jamming(self, adversary):
        n = 1024
        est = estimate_size_walk(n=n, eps=0.5, T=16, adversary=adversary, seed=2)
        assert est.n_low <= n <= est.n_high
        assert est.jams > 0 or adversary == "silence-masker"

    def test_needs_two_stations(self):
        with pytest.raises(ConfigurationError):
            estimate_size_walk(n=1)

    def test_reproducible(self):
        a = estimate_size_walk(n=256, seed=3)
        b = estimate_size_walk(n=256, seed=3)
        assert a.log2_estimate == b.log2_estimate


class TestLogLogEstimator:
    def test_bracket_contains_n(self):
        est = estimate_loglog_size(n=2**16, seed=4)
        assert est.n_low <= 2**16 <= est.n_high

    def test_runtime_scales_with_log_n(self):
        small = estimate_loglog_size(n=2**8, seed=5)
        large = estimate_loglog_size(n=2**20, seed=5)
        assert small.slots < large.slots


class TestKSelection:
    def test_selects_k_distinct_leaders(self):
        result = select_k_leaders(n=200, k=7, adversary="none", seed=6)
        assert result.k == 7
        assert len(set(result.leaders)) == 7
        assert all(0 <= sid < 200 for sid in result.leaders)
        assert list(result.win_slots) == sorted(result.win_slots)

    def test_under_jamming(self):
        result = select_k_leaders(n=100, k=3, adversary="saturating", seed=7)
        assert result.k == 3
        assert result.jams > 0

    def test_warm_start_makes_later_wins_cheap(self):
        """After the first win the estimator is calibrated: subsequent
        winners arrive much faster than the first."""
        result = select_k_leaders(n=2048, k=5, adversary="none", seed=8)
        first = result.win_slots[0]
        gaps = [
            b - a for a, b in zip(result.win_slots, list(result.win_slots)[1:])
        ]
        assert max(gaps) < first

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            select_k_leaders(n=5, k=5)
        with pytest.raises(ConfigurationError):
            select_k_leaders(n=5, k=0)


class TestFairUse:
    def test_jain_index_bounds(self):
        assert jain_index([1, 1, 1, 1]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_report_fields(self):
        report = simulate_fair_use(n=20, adversary="none", cycles=4, seed=9)
        assert isinstance(report, FairUseReport)
        assert report.leader is not None
        assert report.tdma_slots == 80
        assert report.tdma_loss == 0.0
        assert report.tdma_fairness == pytest.approx(1.0)
        assert all(d == 4 for d in report.deliveries)

    def test_jamming_costs_loss_but_fairness_degrades_gracefully(self):
        report = simulate_fair_use(n=16, adversary="saturating", cycles=8, seed=10)
        assert 0.0 < report.tdma_loss < 1.0
        # Each station still gets ~eps of its share: fairness stays high.
        assert report.tdma_fairness > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_fair_use(n=1)
        with pytest.raises(ConfigurationError):
            simulate_fair_use(n=4, cycles=0)


class TestWeakCDKSelection:
    def test_selects_k_distinct_leaders(self):
        from repro.applications import select_k_leaders_weak_cd

        result = select_k_leaders_weak_cd(n=40, k=3, adversary="saturating", seed=20)
        assert result.k == 3
        assert len(set(result.leaders)) == 3
        assert list(result.win_slots) == sorted(result.win_slots)

    def test_each_round_pays_full_notification_cost(self):
        from repro.applications import select_k_leaders, select_k_leaders_weak_cd

        weak = select_k_leaders_weak_cd(n=40, k=2, seed=21)
        strong = select_k_leaders(n=40, k=2, seed=21)
        # Weak-CD rounds cannot share estimator state: far more expensive.
        assert weak.slots > 3 * strong.slots

    def test_validation(self):
        from repro.applications import select_k_leaders_weak_cd

        with pytest.raises(ConfigurationError):
            select_k_leaders_weak_cd(n=5, k=3)  # n - k < 3

"""Tests for trace recording (repro.channel.trace)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.types import ChannelState


def record(trace: ChannelTrace, k: int, jammed: bool, p: float = math.nan, u: float = math.nan):
    outcome = resolve_slot(len(trace), k, jammed)
    trace.append(k, jammed, outcome.true_state, outcome.observed_state, p, u)
    return outcome


class TestCounters:
    def test_incremental_counters(self):
        trace = ChannelTrace()
        record(trace, 0, False)  # null
        record(trace, 1, True)  # jammed single -> observed collision
        record(trace, 5, False)  # collision
        record(trace, 1, False)  # successful single
        assert trace.observed_nulls == 1
        assert trace.observed_collisions == 2
        assert trace.observed_singles == 1
        assert trace.jam_count == 1
        assert trace.successful_singles == 1
        assert trace.first_single_slot == 3

    def test_jammed_single_is_not_successful(self):
        trace = ChannelTrace()
        record(trace, 1, True)
        assert trace.successful_singles == 0
        assert trace.first_single_slot is None

    def test_jam_fraction(self):
        trace = ChannelTrace()
        assert trace.jam_fraction() == 0.0
        record(trace, 0, True)
        record(trace, 0, False)
        assert trace.jam_fraction() == 0.5


class TestAccess:
    def test_getitem_and_negative_index(self):
        trace = ChannelTrace()
        record(trace, 2, False, p=0.25, u=2.0)
        record(trace, 0, True, p=0.125, u=3.0)
        rec = trace[0]
        assert rec.transmitters == 2
        assert rec.true_state is ChannelState.COLLISION
        assert rec.probability == 0.25
        last = trace[-1]
        assert last.slot == 1
        assert last.jammed
        assert last.observed_state is ChannelState.COLLISION
        assert last.true_state is ChannelState.NULL

    def test_iteration_matches_len(self):
        trace = ChannelTrace()
        for k in [0, 1, 2, 3]:
            record(trace, k, False)
        assert len(list(trace)) == len(trace) == 4

    def test_observed_state_query(self):
        trace = ChannelTrace()
        record(trace, 0, False)
        record(trace, 1, True)
        assert trace.observed_state(0) is ChannelState.NULL
        assert trace.observed_state(1) is ChannelState.COLLISION
        assert trace.was_jammed(1)

    def test_tail_observed(self):
        trace = ChannelTrace()
        for k in [0, 1, 2]:
            record(trace, k, False)
        tail = trace.tail_observed(2)
        assert tail == [ChannelState.SINGLE, ChannelState.COLLISION]
        assert trace.tail_observed(10) == [
            ChannelState.NULL,
            ChannelState.SINGLE,
            ChannelState.COLLISION,
        ]


class TestExport:
    def test_columnar_arrays(self):
        trace = ChannelTrace()
        record(trace, 0, False, p=1.0, u=0.0)
        record(trace, 3, True, p=0.5, u=1.0)
        np.testing.assert_array_equal(trace.transmitters_array(), [0, 3])
        np.testing.assert_array_equal(trace.jammed_array(), [False, True])
        np.testing.assert_array_equal(trace.true_states_array(), [0, 2])
        np.testing.assert_array_equal(trace.observed_states_array(), [0, 2])
        np.testing.assert_allclose(trace.probability_array(), [1.0, 0.5])
        np.testing.assert_allclose(trace.u_array(), [0.0, 1.0])

    def test_to_rows(self):
        trace = ChannelTrace()
        record(trace, 1, False, p=0.5, u=1.0)
        rows = trace.to_rows()
        assert rows == [
            {
                "slot": 0,
                "transmitters": 1,
                "jammed": False,
                "true_state": "SINGLE",
                "observed_state": "SINGLE",
                "probability": 0.5,
                "u": 1.0,
            }
        ]

    def test_probability_recording_disabled(self):
        trace = ChannelTrace(record_probabilities=False)
        record(trace, 1, False, p=0.5, u=1.0)
        assert math.isnan(trace[0].probability)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_counter_consistency_property(slots):
    """Counters always agree with a recount over the stored columns."""
    trace = ChannelTrace()
    for k, jammed in slots:
        record(trace, k, jammed)
    observed = trace.observed_states_array()
    assert trace.observed_nulls == int(np.sum(observed == 0))
    assert trace.observed_singles == int(np.sum(observed == 1))
    assert trace.observed_collisions == int(np.sum(observed == 2))
    assert trace.jam_count == int(np.sum(trace.jammed_array()))
    clear_singles = (trace.true_states_array() == 1) & ~trace.jammed_array()
    assert trace.successful_singles == int(np.sum(clear_singles))
    expected_first = np.flatnonzero(clear_singles)
    if expected_first.size:
        assert trace.first_single_slot == int(expected_first[0])
    else:
        assert trace.first_single_slot is None

"""Tests for CD-mode feedback delivery (repro.channel.feedback)."""

from __future__ import annotations

import pytest

from repro.channel.feedback import (
    feedback_for,
    perceived_by_listener,
    perceived_by_transmitter,
)
from repro.types import CDMode, ChannelState, PerceivedState


class TestListenerPerception:
    @pytest.mark.parametrize("mode", [CDMode.STRONG, CDMode.WEAK])
    def test_cd_listener_sees_all_three_states(self, mode):
        assert perceived_by_listener(ChannelState.NULL, mode) is PerceivedState.NULL
        assert perceived_by_listener(ChannelState.SINGLE, mode) is PerceivedState.SINGLE
        assert (
            perceived_by_listener(ChannelState.COLLISION, mode)
            is PerceivedState.COLLISION
        )

    def test_no_cd_listener_sees_single_vs_no_single(self):
        """no-CD: the channel has only two distinguishable states (Sec 1.1)."""
        assert (
            perceived_by_listener(ChannelState.SINGLE, CDMode.NO_CD)
            is PerceivedState.SINGLE
        )
        assert (
            perceived_by_listener(ChannelState.NULL, CDMode.NO_CD)
            is PerceivedState.NO_SINGLE
        )
        assert (
            perceived_by_listener(ChannelState.COLLISION, CDMode.NO_CD)
            is PerceivedState.NO_SINGLE
        )


class TestTransmitterPerception:
    def test_strong_cd_transmitter_hears_channel(self):
        """Strong-CD: simultaneous transmit+listen; the successful
        transmitter hears its own Single -- that is how the leader learns."""
        assert (
            perceived_by_transmitter(ChannelState.SINGLE, CDMode.STRONG)
            is PerceivedState.SINGLE
        )
        assert (
            perceived_by_transmitter(ChannelState.COLLISION, CDMode.STRONG)
            is PerceivedState.COLLISION
        )

    @pytest.mark.parametrize("mode", [CDMode.WEAK, CDMode.NO_CD])
    @pytest.mark.parametrize(
        "state", [ChannelState.NULL, ChannelState.SINGLE, ChannelState.COLLISION]
    )
    def test_weak_and_nocd_transmitter_learns_nothing(self, mode, state):
        assert perceived_by_transmitter(state, mode) is PerceivedState.UNKNOWN


class TestFeedbackAssembly:
    def test_feedback_carries_transmit_flag(self):
        fb = feedback_for(True, ChannelState.COLLISION, CDMode.WEAK)
        assert fb.transmitted
        assert fb.perceived is PerceivedState.UNKNOWN

    def test_heard_single_property(self):
        listener = feedback_for(False, ChannelState.SINGLE, CDMode.WEAK)
        assert listener.heard_single
        # In strong-CD the transmitter perceives its Single but did not
        # "hear" it as a listener.
        transmitter = feedback_for(True, ChannelState.SINGLE, CDMode.STRONG)
        assert not transmitter.heard_single
        assert transmitter.perceived is PerceivedState.SINGLE

"""Tests for channel state resolution (repro.channel.channel, repro.types)."""

from __future__ import annotations

import pytest

from repro.channel.channel import Channel, resolve_slot
from repro.types import ChannelState


class TestChannelStateFromCount:
    def test_zero_transmitters_is_null(self):
        assert ChannelState.from_transmitter_count(0) is ChannelState.NULL

    def test_one_transmitter_is_single(self):
        assert ChannelState.from_transmitter_count(1) is ChannelState.SINGLE

    @pytest.mark.parametrize("k", [2, 3, 10, 10_000])
    def test_many_transmitters_is_collision(self, k):
        assert ChannelState.from_transmitter_count(k) is ChannelState.COLLISION

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ChannelState.from_transmitter_count(-1)


class TestResolveSlot:
    def test_clear_slot_observed_equals_true(self):
        for k, state in [(0, ChannelState.NULL), (1, ChannelState.SINGLE), (5, ChannelState.COLLISION)]:
            outcome = resolve_slot(7, k, jammed=False)
            assert outcome.true_state is state
            assert outcome.observed_state is state
            assert outcome.slot == 7
            assert outcome.transmitters == k

    @pytest.mark.parametrize("k", [0, 1, 2, 100])
    def test_jammed_slot_always_observed_collision(self, k):
        """Jamming is indistinguishable from >= 2 transmitters (Sec 1.1)."""
        outcome = resolve_slot(0, k, jammed=True)
        assert outcome.observed_state is ChannelState.COLLISION
        assert outcome.true_state is ChannelState.from_transmitter_count(k)

    def test_successful_single_requires_clear_slot(self):
        assert resolve_slot(0, 1, jammed=False).successful_single
        assert not resolve_slot(0, 1, jammed=True).successful_single
        assert not resolve_slot(0, 0, jammed=False).successful_single
        assert not resolve_slot(0, 2, jammed=False).successful_single

    def test_adversary_cannot_fabricate_null_or_single(self):
        """The one-sided-error property LESK's asymmetry relies on."""
        for k in range(5):
            observed = resolve_slot(0, k, jammed=True).observed_state
            assert observed is ChannelState.COLLISION


class TestChannelWrapper:
    def test_step_advances_slots(self):
        ch = Channel()
        assert ch.slot == 0
        out0 = ch.step(0)
        out1 = ch.step(1, jammed=True)
        assert (out0.slot, out1.slot) == (0, 1)
        assert ch.slot == 2
        assert ch.last_outcome is out1

    def test_reset(self):
        ch = Channel()
        ch.step(3)
        ch.reset()
        assert ch.slot == 0
        assert ch.last_outcome is None

"""JammingBudgetArray column decisions must equal scalar JammingBudget.

The batched engine's soundness rests on the vectorized (A)/(B) enforcement
making *exactly* the decisions the scalar class would make for the same
want-sequence -- not just distributionally, but per slot.  We fuzz random
``(T, eps)`` configurations and want-sequences and compare every grant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.budget import JammingBudget, JammingBudgetArray
from repro.adversary.validation import check_bounded
from repro.errors import BudgetViolationError, ConfigurationError


def scalar_grants(T: int, eps: float, wants: np.ndarray) -> np.ndarray:
    budget = JammingBudget(T=T, eps=eps)
    return np.asarray([budget.grant(bool(w)) for w in wants], dtype=bool)


def test_matches_scalar_on_100_random_configs():
    """Acceptance criterion: 100 random (T, eps) configs, random wants."""
    rng = np.random.default_rng(20150613)
    for _ in range(100):
        T = int(rng.integers(1, 40))
        eps = float(rng.uniform(0.05, 1.0))
        slots = int(rng.integers(T + 1, 200))
        want_rate = float(rng.uniform(0.0, 1.0))
        reps = 4
        wants = rng.random((slots, reps)) < want_rate

        array = JammingBudgetArray(T=T, eps=eps, reps=reps)
        granted = np.empty((slots, reps), dtype=bool)
        for t in range(slots):
            granted[t] = array.grant(wants[t])

        for r in range(reps):
            expect = scalar_grants(T, eps, wants[:, r])
            assert np.array_equal(granted[:, r], expect), (
                f"T={T}, eps={eps:.3f}, rep={r}: vector grants diverge "
                f"from scalar at slot {int(np.argmax(granted[:, r] != expect))}"
            )
        # Cross-check the counters too.
        scalar = JammingBudget(T=T, eps=eps)
        for t in range(slots):
            scalar.grant(bool(wants[t, 0]))
        assert int(array.jams_granted[0]) == scalar.jams_granted
        assert int(array.denied_requests[0]) == scalar.denied_requests


def test_granted_patterns_are_bounded():
    """Every column's granted pattern satisfies the (T, 1-eps) definition."""
    rng = np.random.default_rng(7)
    T, eps, reps, slots = 16, 0.4, 8, 400
    array = JammingBudgetArray(T=T, eps=eps, reps=reps)
    granted = np.empty((slots, reps), dtype=bool)
    for t in range(slots):
        granted[t] = array.grant(np.ones(reps, dtype=bool) if t % 3 else rng.random(reps) < 0.5)
    for r in range(reps):
        assert check_bounded(granted[:, r].tolist(), T=T, eps=eps)


def test_can_jam_matches_next_grant():
    rng = np.random.default_rng(3)
    array = JammingBudgetArray(T=8, eps=0.5, reps=6)
    for t in range(100):
        can = array.can_jam().copy()
        got = array.grant(np.ones(6, dtype=bool))
        assert np.array_equal(can, got)
        # Interleave some idle slots.
        if rng.random() < 0.3:
            array.grant(np.zeros(6, dtype=bool))


def test_strict_mode_raises_with_rep_index():
    array = JammingBudgetArray(T=4, eps=0.9, reps=3, strict=True)
    with pytest.raises(BudgetViolationError, match="replication"):
        for _ in range(10):
            array.grant(np.ones(3, dtype=bool))


def test_validation():
    with pytest.raises(ConfigurationError):
        JammingBudgetArray(T=0, eps=0.5, reps=2)
    with pytest.raises(ConfigurationError):
        JammingBudgetArray(T=4, eps=0.0, reps=2)
    with pytest.raises(ConfigurationError):
        JammingBudgetArray(T=4, eps=0.5, reps=0)
    array = JammingBudgetArray(T=4, eps=0.5, reps=2)
    with pytest.raises(ConfigurationError):
        array.grant(np.ones(3, dtype=bool))

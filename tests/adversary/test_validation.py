"""Tests for the post-hoc (T, 1-eps) checker (repro.adversary.validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary.validation import check_bounded, max_window_violation
from repro.errors import ConfigurationError


def brute_force_violation(jams, T, eps):
    """O(L^2) reference implementation of the definition."""
    jams = np.asarray(jams, dtype=int)
    L = len(jams)
    rate = 1.0 - eps
    worst = None
    for s in range(L):
        for e in range(s + T, L + 1):
            count = int(jams[s:e].sum())
            if count > rate * (e - s) + 1e-9:
                excess = count - rate * (e - s)
                if worst is None or excess > worst[0]:
                    worst = (excess, s, e, count)
    return worst


class TestBasics:
    def test_empty_and_short_sequences_are_bounded(self):
        assert check_bounded([], 4, 0.5)
        assert check_bounded([True, True, True], 4, 0.5)  # shorter than T

    def test_obvious_violation(self):
        v = max_window_violation([True] * 8, 4, 0.5)
        assert v is not None
        assert v.jams > v.allowed
        assert v.length >= 4

    def test_exact_boundary_is_allowed(self):
        # 2 jams in a 4-window with rate 0.5: exactly (1-eps)w, permitted.
        assert check_bounded([True, True, False, False], 4, 0.5)

    def test_violation_reports_real_window(self):
        jams = [False, True, True, True, False, False]
        v = max_window_violation(jams, 3, 0.5)
        assert v is not None
        assert sum(jams[v.start : v.end]) == v.jams

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            check_bounded([True], 0, 0.5)
        with pytest.raises(ConfigurationError):
            check_bounded([True], 4, 0.0)


@given(
    jams=st.lists(st.booleans(), min_size=0, max_size=80),
    T=st.integers(min_value=1, max_value=12),
    eps=st.floats(min_value=0.05, max_value=0.95),
)
def test_checker_matches_brute_force(jams, T, eps):
    """The O(L) potential-based checker agrees with the O(L^2) definition."""
    fast = max_window_violation(jams, T, eps)
    slow = brute_force_violation(jams, T, eps)
    if slow is None:
        assert fast is None
    else:
        assert fast is not None
        # Both identify a genuinely violating window of the same worst excess.
        assert fast.jams > fast.allowed
        assert fast.end - fast.start >= T
        assert sum(jams[fast.start : fast.end]) == fast.jams
        assert fast.jams - fast.allowed == pytest.approx(slow[0], abs=1e-6)

"""Tests for online (T, 1-eps) budget enforcement (repro.adversary.budget).

The central safety property: **whatever** sequence of jam requests a
strategy makes, the granted sequence satisfies the paper's definition --
at most ``(1-eps) * w`` jams in every realized window of ``w >= T``
contiguous slots.  Verified against the independent post-hoc checker.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary.budget import JammingBudget
from repro.adversary.validation import check_bounded, max_window_violation
from repro.errors import BudgetViolationError, ConfigurationError


class TestConstruction:
    def test_rejects_bad_T(self):
        with pytest.raises(ConfigurationError):
            JammingBudget(0, 0.5)

    @pytest.mark.parametrize("eps", [0.0, -0.1, 1.5])
    def test_rejects_bad_eps(self, eps):
        with pytest.raises(ConfigurationError):
            JammingBudget(8, eps)

    def test_eps_one_allows_no_jamming(self):
        budget = JammingBudget(4, 1.0)
        assert not budget.can_jam()
        assert budget.grant(True) is False


class TestBasicAccounting:
    def test_grant_advances_slot(self):
        budget = JammingBudget(8, 0.5)
        budget.grant(False)
        budget.grant(True)
        assert budget.slot == 2
        assert budget.jams_granted == 1

    def test_denied_requests_counted(self):
        budget = JammingBudget(4, 0.5)  # at most 2 jams per 4-window
        outcomes = [budget.grant(True) for _ in range(4)]
        assert outcomes == [True, True, False, False]
        assert budget.denied_requests == 2

    def test_strict_mode_raises(self):
        budget = JammingBudget(2, 0.5, strict=True)
        budget.grant(True)
        with pytest.raises(BudgetViolationError):
            budget.grant(True)

    def test_budget_replenishes_after_window(self):
        budget = JammingBudget(4, 0.5)
        granted = [budget.grant(True) for _ in range(200)]
        # Front-loaded: the first window gets its full allowance at once...
        assert granted[:2] == [True, True]
        # ...then the greedy pattern settles to a steady state, never
        # exceeding 2 jams in any 4 consecutive slots.  Note the long-run
        # density is *below* 1-eps = 0.5: the w=5 windows only admit
        # floor(2.5) = 2 jams, capping the density at 2/5 -- a consequence
        # of the definition quantifying over every w >= T.
        counts = np.convolve(np.array(granted, dtype=int), np.ones(4, dtype=int), "valid")
        assert counts.max() <= 2
        assert sum(granted) == pytest.approx(0.4 * len(granted), abs=3)

    def test_can_jam_is_side_effect_free(self):
        budget = JammingBudget(4, 0.5)
        before = budget.can_jam()
        after = budget.can_jam()
        assert before == after
        assert budget.slot == 0


class TestFrontLoading:
    def test_cannot_overjam_opening_window(self):
        """Even before T slots have elapsed, jams are limited to (1-eps)T
        because the window [0, T) will eventually close."""
        budget = JammingBudget(10, 0.4)  # 6 jams allowed per 10-window
        granted = sum(budget.grant(True) for _ in range(10))
        assert granted == 6

    def test_consecutive_jam_cap(self):
        budget = JammingBudget(100, 0.1)
        run = 0
        while budget.can_jam():
            budget.grant(True)
            run += 1
        assert run == 90  # floor((1-eps) * T)

    def test_headroom_matches_actual_grants(self):
        budget = JammingBudget(16, 0.3)
        for want in [True, False, True, True, False]:
            budget.grant(want)
        head = budget.headroom()
        grants = 0
        while budget.can_jam():
            budget.grant(True)
            grants += 1
        assert head == grants


class TestCopySemantics:
    def test_copy_is_independent(self):
        budget = JammingBudget(8, 0.5)
        budget.grant(True)
        clone = budget.copy()
        clone.grant(True)
        assert budget.slot == 1
        assert clone.slot == 2
        assert budget.jams_granted == 1
        assert clone.jams_granted == 2


@given(
    requests=st.lists(st.booleans(), min_size=1, max_size=300),
    T=st.integers(min_value=1, max_value=40),
    eps=st.floats(min_value=0.05, max_value=0.95),
)
def test_granted_sequence_is_always_bounded(requests, T, eps):
    """Safety: clamped output satisfies the exact paper definition."""
    budget = JammingBudget(T, eps)
    granted = [budget.grant(want) for want in requests]
    assert check_bounded(granted, T, eps), max_window_violation(granted, T, eps)


@given(
    T=st.integers(min_value=1, max_value=30),
    eps=st.floats(min_value=0.05, max_value=0.95),
    length=st.integers(min_value=1, max_value=400),
)
def test_saturating_grants_maximal_density(T, eps, length):
    """Liveness: an always-requesting adversary achieves the full
    floor((1-eps)T) jams in every complete T-window."""
    budget = JammingBudget(T, eps)
    granted = np.array([budget.grant(True) for _ in range(length)])
    per_window = int((1.0 - eps) * T)
    if length >= T:
        counts = np.convolve(granted.astype(int), np.ones(T, dtype=int), "valid")
        assert counts.max() <= per_window
        # The greedy pattern packs the full allowance into window [0, T).
        assert counts[0] == per_window


@given(
    data=st.data(),
    T=st.integers(min_value=2, max_value=24),
    eps=st.floats(min_value=0.1, max_value=0.9),
)
def test_grant_never_denies_legal_request(data, T, eps):
    """Completeness: if appending a jam would keep the whole sequence
    bounded (including the padded future-window rule), grant() allows it.

    We verify by cross-checking each decision against the post-hoc checker
    on the hypothetical extended sequence, padded with T zeros (the
    feasibility interpretation -- see budget.py docstring)."""
    budget = JammingBudget(T, eps)
    granted: list[bool] = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=120))):
        hypothetical = granted + [True] + [False] * T
        legal = check_bounded(hypothetical, T, eps)
        want = data.draw(st.booleans())
        got = budget.grant(want)
        assert got == (want and legal)
        granted.append(got)

"""Stateful property testing of JammingBudget.

A hypothesis rule-based machine interleaves grants, side-effect-free
queries and copies, and checks every invariant against a naive reference
model that stores the whole grant history.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.adversary.budget import JammingBudget
from repro.adversary.validation import check_bounded


class BudgetMachine(RuleBasedStateMachine):
    T = 6
    EPS = 0.4

    def __init__(self):
        super().__init__()
        self.budget = JammingBudget(self.T, self.EPS)
        self.granted: list[bool] = []
        self.clones: list[tuple[JammingBudget, list[bool]]] = []

    @rule(want=st.booleans())
    def grant(self, want):
        before_can = self.budget.can_jam()
        got = self.budget.grant(want)
        # grant agrees with the preceding can_jam answer.
        assert got == (want and before_can)
        self.granted.append(got)

    @rule()
    def query_is_pure(self):
        slot = self.budget.slot
        jams = self.budget.jams_granted
        self.budget.can_jam()
        self.budget.headroom()
        assert self.budget.slot == slot
        assert self.budget.jams_granted == jams

    @rule()
    def take_copy(self):
        if len(self.clones) < 3:
            self.clones.append((self.budget.copy(), list(self.granted)))

    @rule(extra=st.lists(st.booleans(), min_size=1, max_size=10))
    def drive_copy_independently(self, extra):
        if not self.clones:
            return
        clone, history = self.clones.pop()
        for want in extra:
            history.append(clone.grant(want))
        assert check_bounded(history, self.T, self.EPS)
        # The original is untouched by the clone's activity.
        assert self.budget.slot == len(self.granted)

    @invariant()
    def granted_history_is_always_bounded(self):
        assert check_bounded(self.granted, self.T, self.EPS)

    @invariant()
    def counters_match_history(self):
        assert self.budget.slot == len(self.granted)
        assert self.budget.jams_granted == sum(self.granted)


TestBudgetMachine = BudgetMachine.TestCase
TestBudgetMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None, derandomize=True
)

"""Tests for the jamming strategies (oblivious and adaptive) and the
Adversary harness / registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary.adaptive import (
    EstimatorAttacker,
    ReactiveJammer,
    SilenceMasker,
    SingleSuppressor,
)
from repro.adversary.base import Adversary, AdversaryView, as_strategy
from repro.adversary.budget import JammingBudget
from repro.adversary.oblivious import (
    BurstJammer,
    NoJamming,
    PeriodicFrontJammer,
    RandomJammer,
    SaturatingJammer,
)
from repro.adversary.suite import STRATEGY_REGISTRY, make_adversary, strategy_names
from repro.adversary.validation import check_bounded
from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.types import ChannelState


def make_view(slot=0, n=100, trace=None, budget=None, p=math.nan, u=math.nan):
    return AdversaryView(
        slot=slot,
        n=n,
        trace=trace if trace is not None else ChannelTrace(),
        budget=budget if budget is not None else JammingBudget(8, 0.5),
        transmit_probability=p,
        protocol_u=u,
    )


RNG = np.random.default_rng(0)


class TestOblivious:
    def test_no_jamming_never_wants(self):
        s = NoJamming()
        assert not any(s.wants_jam(make_view(slot=t), RNG) for t in range(50))

    def test_periodic_front_pattern(self):
        s = PeriodicFrontJammer(T=8, eps=0.5)
        wants = [s.wants_jam(make_view(slot=t), RNG) for t in range(16)]
        assert wants == [True] * 4 + [False] * 4 + [True] * 4 + [False] * 4

    def test_periodic_front_small_eps_jams_most(self):
        s = PeriodicFrontJammer(T=10, eps=0.1)
        assert s.jam_prefix == 9

    def test_periodic_front_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicFrontJammer(T=0, eps=0.5)
        with pytest.raises(ConfigurationError):
            PeriodicFrontJammer(T=8, eps=0.0)

    def test_random_jammer_rate(self):
        s = RandomJammer(rate=0.3)
        rng = np.random.default_rng(1)
        wants = [s.wants_jam(make_view(slot=t), rng) for t in range(4000)]
        assert 0.25 < np.mean(wants) < 0.35

    def test_random_jammer_validation(self):
        with pytest.raises(ConfigurationError):
            RandomJammer(rate=1.5)

    def test_burst_jammer_cycle(self):
        s = BurstJammer(burst=2, gap=3)
        wants = [s.wants_jam(make_view(slot=t), RNG) for t in range(10)]
        assert wants == [True, True, False, False, False] * 2

    def test_burst_jammer_validation(self):
        with pytest.raises(ConfigurationError):
            BurstJammer(burst=0, gap=0)

    def test_saturating_always_wants(self):
        s = SaturatingJammer()
        assert all(s.wants_jam(make_view(slot=t), RNG) for t in range(10))


class TestAdaptive:
    def test_reactive_triggers_on_previous_null(self):
        s = ReactiveJammer()
        trace = ChannelTrace()
        out = resolve_slot(0, 0, False)  # Null
        trace.append(0, False, out.true_state, out.observed_state)
        assert s.wants_jam(make_view(slot=1, trace=trace), RNG)
        out2 = resolve_slot(1, 3, False)  # Collision
        trace.append(3, False, out2.true_state, out2.observed_state)
        assert not s.wants_jam(make_view(slot=2, trace=trace), RNG)

    def test_reactive_first_slot_never_jams(self):
        assert not ReactiveJammer().wants_jam(make_view(slot=0), RNG)

    def test_reactive_custom_triggers(self):
        s = ReactiveJammer(triggers=(ChannelState.COLLISION,))
        trace = ChannelTrace()
        out = resolve_slot(0, 5, False)
        trace.append(5, False, out.true_state, out.observed_state)
        assert s.wants_jam(make_view(slot=1, trace=trace), RNG)

    def test_single_suppressor_targets_dangerous_p(self):
        s = SingleSuppressor(threshold=0.1)
        n = 1000
        # p = 1/n: P[Single] ~ 1/e, dangerous.
        assert s.wants_jam(make_view(n=n, p=1.0 / n), RNG)
        # p = 1 (everyone transmits): certain collision, harmless.
        assert not s.wants_jam(make_view(n=n, p=1.0), RNG)
        # p tiny: certain null, harmless.
        assert not s.wants_jam(make_view(n=n, p=1e-9), RNG)

    def test_single_suppressor_saturates_without_info(self):
        assert SingleSuppressor().wants_jam(make_view(p=math.nan), RNG)

    def test_estimator_attacker_band(self):
        s = EstimatorAttacker(margin=2.0)
        n = 1024  # log2 n = 10
        assert s.wants_jam(make_view(n=n, u=10.0), RNG)
        assert s.wants_jam(make_view(n=n, u=8.5), RNG)
        assert not s.wants_jam(make_view(n=n, u=4.0), RNG)
        assert not s.wants_jam(make_view(n=n, u=14.0), RNG)

    def test_silence_masker_targets_likely_nulls(self):
        s = SilenceMasker(threshold=0.5)
        n = 1000
        # p far below 1/n: Null almost certain.
        assert s.wants_jam(make_view(n=n, p=1.0 / (100 * n)), RNG)
        # p = 10/n: Null very unlikely.
        assert not s.wants_jam(make_view(n=n, p=10.0 / n), RNG)


class TestAdversaryHarness:
    def test_decide_clamps_to_budget(self):
        adv = Adversary(SaturatingJammer(), T=4, eps=0.5, seed=0)
        trace = ChannelTrace()
        granted = []
        for slot in range(40):
            view = make_view(slot=slot, trace=trace, budget=adv.budget)
            granted.append(adv.decide(view))
            out = resolve_slot(slot, 0, granted[-1])
            trace.append(0, granted[-1], out.true_state, out.observed_state)
        assert check_bounded(granted, 4, 0.5)
        assert adv.budget.denied_requests > 0

    def test_reset_restores_budget(self):
        adv = Adversary(SaturatingJammer(), T=2, eps=0.5, seed=0)
        adv.decide(make_view(budget=adv.budget))
        adv.reset()
        assert adv.budget.slot == 0
        assert adv.budget.jams_granted == 0

    def test_as_strategy_wrapper(self):
        s = as_strategy(lambda view, rng: view.slot % 2 == 0, "alternate")
        assert s.wants_jam(make_view(slot=0), RNG)
        assert not s.wants_jam(make_view(slot=1), RNG)
        assert s.name == "alternate"


class TestRegistry:
    def test_all_names_construct(self):
        for name in strategy_names():
            adv = make_adversary(name, T=8, eps=0.5, seed=1)
            assert isinstance(adv, Adversary)
            assert adv.T == 8

    def test_registry_covers_expected_suite(self):
        expected = {
            "none",
            "periodic-front",
            "random",
            "burst",
            "saturating",
            "reactive",
            "single-suppressor",
            "estimator-attacker",
            "silence-masker",
            "collision-forcer",
        }
        assert expected == set(STRATEGY_REGISTRY)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_adversary("nope", T=4, eps=0.5)


class TestScriptedJammer:
    def test_replays_script(self):
        from repro.adversary.oblivious import ScriptedJammer

        s = ScriptedJammer([True, False, True])
        wants = [s.wants_jam(make_view(slot=t), RNG) for t in range(5)]
        assert wants == [True, False, True, False, False]

    def test_cycling(self):
        from repro.adversary.oblivious import ScriptedJammer

        s = ScriptedJammer([True, False], cycle=True)
        wants = [s.wants_jam(make_view(slot=t), RNG) for t in range(6)]
        assert wants == [True, False] * 3

    def test_empty_rejected(self):
        from repro.adversary.oblivious import ScriptedJammer

        with pytest.raises(ConfigurationError):
            ScriptedJammer([])

    def test_replay_from_trace_reproduces_jams(self):
        """The round-trip a bug report would use: record a run's jam
        pattern, replay it as a script, observe the same jams."""
        from repro.adversary.base import Adversary
        from repro.adversary.oblivious import ScriptedJammer
        from repro.protocols.lesk import LESKPolicy
        from repro.sim.fast import simulate_uniform_fast

        first = simulate_uniform_fast(
            LESKPolicy(0.5),
            n=128,
            adversary=make_adversary("saturating", T=8, eps=0.5),
            max_slots=10_000,
            seed=3,
            record_trace=True,
        )
        script = list(first.trace.jammed_array())
        adv = Adversary(ScriptedJammer(script), T=8, eps=0.5, seed=0)
        replay = simulate_uniform_fast(
            LESKPolicy(0.5), n=128, adversary=adv, max_slots=10_000, seed=3,
            record_trace=True,
        )
        assert list(replay.trace.jammed_array()) == script[: replay.slots]
        assert replay.slots == first.slots

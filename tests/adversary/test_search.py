"""Tests for the adversarial pattern search (repro.adversary.search)."""

from __future__ import annotations

import pytest

from repro.adversary.search import SearchResult, find_worst_pattern
from repro.analysis.bounds import lesk_exact_slot_bound
from repro.errors import ConfigurationError
from repro.protocols.lesk import LESKPolicy


class TestSearch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            find_worst_pattern(lambda: LESKPolicy(0.5), 16, 4, 0.5, script_length=0)
        with pytest.raises(ConfigurationError):
            find_worst_pattern(lambda: LESKPolicy(0.5), 16, 4, 0.5, eval_seeds=0)

    def test_deterministic(self):
        kw = dict(n=64, T=8, eps=0.5, script_length=64, generations=4,
                  eval_seeds=3, cap=5_000, seed=1)
        a = find_worst_pattern(lambda: LESKPolicy(0.5), **kw)
        b = find_worst_pattern(lambda: LESKPolicy(0.5), **kw)
        assert a == b

    def test_best_found_at_least_saturating(self):
        result = find_worst_pattern(
            lambda: LESKPolicy(0.5), n=64, T=8, eps=0.5,
            script_length=64, generations=6, eval_seeds=5, cap=5_000, seed=2,
        )
        assert isinstance(result, SearchResult)
        assert result.score >= result.saturating_score
        assert result.evaluated == 8

    def test_theorem_2_6_survives_the_search(self):
        """The headline property: even the search's best-found attack
        cannot push LESK past its explicit Theorem 2.6 slot bound."""
        n, eps = 256, 0.5
        result = find_worst_pattern(
            lambda: LESKPolicy(eps), n=n, T=16, eps=eps,
            script_length=128, generations=20, eval_seeds=7, cap=50_000, seed=3,
        )
        assert result.score <= lesk_exact_slot_bound(n, eps)

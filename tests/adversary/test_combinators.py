"""Tests for strategy combinators (repro.adversary.combinators)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary.base import Adversary, AdversaryView, as_strategy
from repro.adversary.budget import JammingBudget
from repro.adversary.combinators import AllOf, Alternating, AnyOf, Mixture, Not
from repro.adversary.oblivious import NoJamming, SaturatingJammer
from repro.adversary.validation import check_bounded
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError

RNG = np.random.default_rng(0)


def view(slot=0):
    return AdversaryView(
        slot=slot, n=64, trace=ChannelTrace(), budget=JammingBudget(8, 0.5)
    )


EVEN = lambda: as_strategy(lambda v, r: v.slot % 2 == 0, "even")  # noqa: E731
MOD3 = lambda: as_strategy(lambda v, r: v.slot % 3 == 0, "mod3")  # noqa: E731


class TestAnyAll:
    def test_any_of_is_union(self):
        s = AnyOf(EVEN(), MOD3())
        wants = [s.wants_jam(view(t), RNG) for t in range(6)]
        assert wants == [True, False, True, True, True, False]

    def test_all_of_is_intersection(self):
        s = AllOf(EVEN(), MOD3())
        wants = [s.wants_jam(view(t), RNG) for t in range(7)]
        assert wants == [True, False, False, False, False, False, True]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            AnyOf()
        with pytest.raises(ConfigurationError):
            AllOf()


class TestAlternating:
    def test_phase_switching(self):
        s = Alternating([SaturatingJammer(), NoJamming()], phase_length=2)
        wants = [s.wants_jam(view(t), RNG) for t in range(8)]
        assert wants == [True, True, False, False, True, True, False, False]

    def test_bad_phase_length(self):
        with pytest.raises(ConfigurationError):
            Alternating([NoJamming()], phase_length=0)


class TestMixture:
    def test_degenerate_weight_selects_single_child(self):
        s = Mixture([SaturatingJammer(), NoJamming()], weights=[0.0, 1.0])
        assert not any(s.wants_jam(view(t), RNG) for t in range(20))

    def test_uniform_mixture_rate(self):
        s = Mixture([SaturatingJammer(), NoJamming()])
        rng = np.random.default_rng(3)
        rate = np.mean([s.wants_jam(view(t), rng) for t in range(4000)])
        assert 0.45 < rate < 0.55

    def test_bad_weights(self):
        with pytest.raises(ConfigurationError):
            Mixture([NoJamming()], weights=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            Mixture([NoJamming()], weights=[0.0])


class TestNot:
    def test_complement(self):
        s = Not(EVEN())
        assert not s.wants_jam(view(0), RNG)
        assert s.wants_jam(view(1), RNG)


class TestEndToEnd:
    def test_composite_still_budget_bounded(self):
        """Composition happens above the budget: the harness still clamps."""
        strategy = AnyOf(SaturatingJammer(), Not(NoJamming()))
        adv = Adversary(strategy, T=4, eps=0.5, seed=1)
        trace = ChannelTrace()
        granted = []
        for slot in range(60):
            v = AdversaryView(slot=slot, n=8, trace=trace, budget=adv.budget)
            granted.append(adv.decide(v))
            from repro.channel.channel import resolve_slot

            out = resolve_slot(slot, 0, granted[-1])
            trace.append(0, granted[-1], out.true_state, out.observed_state)
        assert check_bounded(granted, 4, 0.5)

    def test_lesk_survives_composite_attack(self):
        """A union of the two strongest adaptive attacks is still harmless
        to LESK (Thm 2.6 is adversary-universal)."""
        from repro.adversary.adaptive import SilenceMasker, SingleSuppressor
        from repro.protocols.lesk import LESKPolicy
        from repro.sim.fast import simulate_uniform_fast

        strategy = AnyOf(SingleSuppressor(), SilenceMasker())
        adv = Adversary(strategy, T=16, eps=0.4, seed=2)
        result = simulate_uniform_fast(
            LESKPolicy(0.4), n=1024, adversary=adv, max_slots=100_000, seed=5
        )
        assert result.elected
        from repro.analysis.bounds import lesk_exact_slot_bound

        assert result.slots <= lesk_exact_slot_bound(1024, 0.4)

    def test_reset_propagates(self):
        inner = SaturatingJammer()
        resets = []
        inner.reset = lambda: resets.append(1)  # type: ignore[method-assign]
        AnyOf(inner).reset()
        Alternating([inner], 2).reset()
        Mixture([inner]).reset()
        Not(inner).reset()
        assert len(resets) == 4

"""Violation bundles: serialization, replay, and the audited-run helper."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.bundle import BUNDLE_SCHEMA_VERSION, ReproBundle
from repro.resilience.faults import FaultModel
from repro.resilience.replay import audited_election, replay_bundle, replay_file


def _violation_bundle(seed=11):
    """A real budget-violation bundle from an over-budget run."""
    result, violation, _ = audited_election(
        n=32, protocol="lesk", eps=0.5, T=8, adversary="saturating",
        seed=seed, max_slots=4096, overbudget=True,
    )
    assert result is None and violation is not None
    return violation.bundle


class TestBundle:
    def test_round_trip(self, tmp_path):
        bundle = _violation_bundle()
        path = tmp_path / "violation.json"
        bundle.save(path)
        assert ReproBundle.load(path) == bundle

    def test_schema_version_checked(self):
        data = _violation_bundle().to_jsonable()
        data["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema version"):
            ReproBundle.from_jsonable(data)

    def test_unknown_field_rejected(self):
        data = _violation_bundle().to_jsonable()
        data["mystery"] = True
        with pytest.raises(ConfigurationError, match="mystery"):
            ReproBundle.from_jsonable(data)


class TestReplay:
    def test_overbudget_violation_reproduces(self, tmp_path):
        bundle = _violation_bundle()
        path = tmp_path / "violation.json"
        bundle.save(path)
        replay = replay_file(path)
        assert replay.reproduced
        assert replay.violation.bundle.invariant == bundle.invariant

    def test_honest_run_does_not_reproduce(self):
        data = _violation_bundle().to_jsonable()
        data["adversary"] = "saturating"  # drop the overbudget: prefix
        replay = replay_bundle(ReproBundle.from_jsonable(data))
        assert not replay.reproduced
        assert replay.violation is None
        assert replay.slots_run > 0

    def test_faulted_bundle_replays(self):
        faults = FaultModel(flip_rate=0.05, erase_rate=0.05)
        _, violation, _ = audited_election(
            n=32, eps=0.5, T=8, adversary="saturating", seed=3,
            max_slots=4096, faults=faults, overbudget=True,
        )
        bundle = violation.bundle
        assert bundle.faults == faults.to_jsonable()
        assert replay_bundle(bundle).reproduced

    def test_unreplayable_bundle_rejected(self):
        data = _violation_bundle().to_jsonable()
        data["seed"] = None  # entropy-seeded run: real but not replayable
        with pytest.raises(ConfigurationError, match="not replayable"):
            replay_bundle(ReproBundle.from_jsonable(data))


class TestAuditedElection:
    def test_clean_run(self):
        result, violation, slots = audited_election(
            n=64, eps=0.5, T=8, adversary="saturating", seed=2,
        )
        assert violation is None
        assert result.elected
        assert slots == result.slots

    def test_faithful_engine_path(self):
        result, violation, _ = audited_election(
            n=16, protocol="lewk", eps=0.5, T=8, adversary="saturating",
            seed=2, engine="faithful",
        )
        assert violation is None
        assert result is not None

"""Differential mode: scalar vs fast vs vector semantics in lockstep.

The fuzz class is the load-bearing test: 100+ random configurations
(station count, eps, T, adversary pattern, corruption faults, seed) must
produce ZERO divergences between the per-station adapter stack, the shared
scalar-policy stack and the vectorized stack.  Any semantic drift between
the engines' update rules shows up here as a first-diverging slot.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.differential import (
    ADAPTIVE_DIFFERENTIAL_ADVERSARIES,
    DETERMINISTIC_ADVERSARIES,
    STACKS,
    DifferentialConfig,
    first_diverging_slot,
    run_differential,
)
from repro.resilience.faults import FaultModel


class TestAgreement:
    @pytest.mark.parametrize("adversary", DETERMINISTIC_ADVERSARIES)
    def test_fault_free(self, adversary):
        for seed in range(3):
            report = run_differential(
                DifferentialConfig(n=16, adversary=adversary, seed=seed, max_slots=400)
            )
            assert report.agreed, report.divergence.describe()
            assert report.slots_compared > 0

    def test_corruption_faults(self):
        faults = FaultModel(
            flip_rate=0.05, erase_rate=0.05, downgrade_slots=(3, 7, 11)
        )
        for seed in range(3):
            report = run_differential(
                DifferentialConfig(
                    n=12, adversary="burst", seed=seed, max_slots=400, faults=faults
                )
            )
            assert report.agreed, report.divergence.describe()

    def test_single_station(self):
        report = run_differential(DifferentialConfig(n=1, seed=0, max_slots=50))
        assert report.agreed

    @pytest.mark.parametrize("adversary", ADAPTIVE_DIFFERENTIAL_ADVERSARIES)
    def test_adaptive_scalar_vector_strategy_pairs(self, adversary):
        """The real scalar strategy (scalar/fast stacks) and its vector
        counterpart (vector stack) must want the same jams slot by slot."""
        for seed in range(3):
            report = run_differential(
                DifferentialConfig(
                    n=64, adversary=adversary, seed=seed, max_slots=512
                )
            )
            assert report.agreed, report.divergence.describe()
            assert report.slots_compared > 0

    def test_adaptive_with_corruption_faults(self):
        """Corruption rewrites the policies' feedback but never the
        adversary's trace (the jammer knows what it jammed), so the
        stacks stay comparable under adaptive strategies too."""
        faults = FaultModel(flip_rate=0.05, erase_rate=0.05, downgrade_slots=(2, 9))
        for adversary in ("reactive", "silence-masker"):
            report = run_differential(
                DifferentialConfig(
                    n=16, adversary=adversary, seed=4, max_slots=400, faults=faults
                )
            )
            assert report.agreed, report.divergence.describe()


class TestTamper:
    @pytest.mark.parametrize("stack", STACKS)
    def test_detected_at_seeded_slot(self, stack):
        config = DifferentialConfig(
            n=16, adversary="none", seed=1, max_slots=400, tamper=(stack, 5)
        )
        report = run_differential(config)
        assert not report.agreed
        assert report.divergence.slot == 5
        assert stack in (report.divergence.stack_a, report.divergence.stack_b)

    def test_bisection_finds_seeded_slot(self):
        config = DifferentialConfig(
            n=16, adversary="saturating", seed=2, max_slots=400, tamper=("fast", 9)
        )
        assert first_diverging_slot(config) == 9

    def test_detected_under_adaptive_adversary(self):
        config = DifferentialConfig(
            n=64, adversary="reactive", seed=3, max_slots=512, tamper=("vector", 5)
        )
        report = run_differential(config)
        assert not report.agreed
        assert report.divergence.slot == 5
        assert first_diverging_slot(config) == 5

    def test_bisection_none_when_agreed(self):
        config = DifferentialConfig(n=8, seed=3, max_slots=200)
        assert first_diverging_slot(config) is None


class TestConfigValidation:
    def test_churn_rejected(self):
        with pytest.raises(ConfigurationError, match="corruption faults only"):
            DifferentialConfig(n=8, faults=FaultModel(crash_rate=0.01))

    def test_skew_rejected(self):
        with pytest.raises(ConfigurationError, match="corruption faults only"):
            DifferentialConfig(n=8, faults=FaultModel(skew_rate=0.01))

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ConfigurationError, match="deterministic"):
            DifferentialConfig(n=8, adversary="adaptive-mystery")

    def test_randomized_adversary_rejected(self):
        # "random" draws from an RNG per slot: it cannot be shared-world
        # coupled across stacks and must stay excluded.
        with pytest.raises(ConfigurationError, match="deterministic"):
            DifferentialConfig(n=8, adversary="random")

    def test_unknown_tamper_stack_rejected(self):
        with pytest.raises(ConfigurationError, match="tamper stack"):
            DifferentialConfig(n=8, tamper=("gpu", 3))


class TestFuzz:
    def test_100_random_configs_zero_divergences(self):
        rng = np.random.default_rng(20260805)
        diverged = []
        for i in range(100):
            n = int(rng.integers(1, 24))
            eps = float(rng.choice([0.3, 0.5, 0.7]))
            T = int(rng.choice([4, 8, 16]))
            adversary = str(rng.choice(DETERMINISTIC_ADVERSARIES))
            if rng.random() < 0.5:
                faults = FaultModel(
                    flip_rate=float(rng.uniform(0, 0.15)),
                    erase_rate=float(rng.uniform(0, 0.15)),
                    downgrade_slots=tuple(
                        sorted(int(s) for s in rng.integers(0, 60, size=rng.integers(0, 4)))
                    ),
                )
            else:
                faults = FaultModel()
            config = DifferentialConfig(
                n=n, eps=eps, T=T, adversary=adversary,
                max_slots=250, seed=int(rng.integers(1 << 30)), faults=faults,
            )
            report = run_differential(config)
            if not report.agreed:
                diverged.append((config, report.divergence.describe()))
        assert not diverged, diverged[:3]

    def test_50_random_adaptive_configs_zero_divergences(self):
        rng = np.random.default_rng(20260806)
        diverged = []
        for i in range(50):
            n = int(rng.integers(1, 96))
            eps = float(rng.choice([0.3, 0.5, 0.7]))
            T = int(rng.choice([4, 8, 16]))
            adversary = str(rng.choice(ADAPTIVE_DIFFERENTIAL_ADVERSARIES))
            if rng.random() < 0.3:
                faults = FaultModel(
                    flip_rate=float(rng.uniform(0, 0.1)),
                    erase_rate=float(rng.uniform(0, 0.1)),
                )
            else:
                faults = FaultModel()
            config = DifferentialConfig(
                n=n, eps=eps, T=T, adversary=adversary,
                max_slots=250, seed=int(rng.integers(1 << 30)), faults=faults,
            )
            report = run_differential(config)
            if not report.agreed:
                diverged.append((config, report.divergence.describe()))
        assert not diverged, diverged[:3]

"""FaultModel validation, serialization and deterministic realization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.faults import NO_FAULTS, FaultModel


class TestValidation:
    def test_no_faults_disabled(self):
        assert not NO_FAULTS.enabled
        assert not FaultModel().enabled

    def test_any_field_enables(self):
        assert FaultModel(flip_rate=0.1).enabled
        assert FaultModel(crash_slots=(3,)).enabled
        assert FaultModel(skew_rate=0.01).enabled

    @pytest.mark.parametrize("field", ["crash_rate", "flip_rate", "erase_rate", "skew_rate"])
    def test_rates_bounded(self, field):
        with pytest.raises(ConfigurationError):
            FaultModel(**{field: -0.1})
        with pytest.raises(ConfigurationError):
            FaultModel(**{field: 1.5})

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(crash_slots=(-1,))
        with pytest.raises(ConfigurationError):
            FaultModel(flip_slots=(3, -2))

    def test_bad_sleep_span_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(sleep_spans=((10, 5),))  # end before start
        with pytest.raises(ConfigurationError):
            FaultModel(sleep_spans=((-1, 5),))

    def test_has_churn(self):
        assert FaultModel(crash_rate=0.1).has_churn
        assert FaultModel(join_slots=(2,)).has_churn
        assert not FaultModel(flip_rate=0.1).has_churn
        assert not FaultModel(skew_rate=0.1).has_churn


class TestSerialization:
    def test_round_trip_equality(self):
        fm = FaultModel(
            crash_slots=(5, 9),
            sleep_spans=((12, 20),),
            join_slots=(3,),
            flip_rate=0.05,
            erase_slots=(4,),
            downgrade_slots=(7,),
            skew_rate=0.02,
        )
        assert FaultModel.from_jsonable(fm.to_jsonable()) == fm

    def test_unknown_field_rejected(self):
        data = NO_FAULTS.to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            FaultModel.from_jsonable(data)


class TestRealization:
    FM = FaultModel(
        crash_slots=(5, 9),
        sleep_spans=((12, 20),),
        join_slots=(3,),
        flip_rate=0.1,
        erase_rate=0.1,
        downgrade_slots=(7,),
        skew_rate=0.05,
    )

    def test_deterministic_from_seed(self):
        a = self.FM.realize(32, 200, np.random.default_rng(7))
        b = self.FM.realize(32, 200, np.random.default_rng(7))
        assert (a.crash_slot == b.crash_slot).all()
        assert (a.join_slot == b.join_slot).all()
        for slot in range(200):
            ma = a.station_awake(slot)
            mb = b.station_awake(slot)
            assert (ma == mb).all()
            fa = a.begin_slot(slot, int(ma.sum()))
            fb = b.begin_slot(slot, int(mb.sum()))
            assert (fa.flip, fa.erase, fa.downgrade) == (fb.flip, fb.erase, fb.downgrade)
        assert a.counters == b.counters

    def test_counters_populated(self):
        realized = self.FM.realize(32, 200, np.random.default_rng(7))
        for slot in range(200):
            mask = realized.station_awake(slot)
            realized.begin_slot(slot, int(mask.sum()))
        c = realized.counters
        assert c["crash"] == 2
        assert c["join"] == 1
        assert c["sleep_slots"] == 8  # one station, span [12, 20)
        assert c["downgrade"] >= 1
        assert c["flip"] > 0 and c["erase"] > 0
        assert c["skew_slots"] > 0

    def test_scheduled_downgrade_fires_on_its_slot(self):
        fm = FaultModel(downgrade_slots=(7,))
        realized = fm.realize(8, 20, np.random.default_rng(0))
        for slot in range(20):
            mask = realized.station_awake(slot)
            flags = realized.begin_slot(slot, int(mask.sum()))
            assert flags.downgrade == (slot == 7)

    def test_crashed_station_stays_down(self):
        fm = FaultModel(crash_slots=(4,))
        realized = fm.realize(4, 30, np.random.default_rng(1))
        crashed = int(np.flatnonzero(realized.crash_slot >= 0)[0])
        for slot in range(30):
            mask = realized.station_awake(slot)
            if slot >= 4:
                assert not mask[crashed]
        assert not realized.leader_survives(crashed)
        alive = (set(range(4)) - {crashed}).pop()
        assert realized.leader_survives(alive)

    def test_batch_realization_shares_churn(self):
        fm = FaultModel(crash_slots=(4,), flip_rate=0.2)
        bf = fm.realize_batch(8, 5, 50, np.random.default_rng(3))
        active = np.ones(5, dtype=bool)
        for slot in range(50):
            bf.awake_count(slot)
            flip, erase, downgrade = bf.begin_slot(slot, active)
            assert flip.shape == (5,)
            assert erase.shape == (5,)

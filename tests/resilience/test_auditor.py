"""Runtime invariant auditor: budget, channel and election checks."""

import numpy as np
import pytest

from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.errors import InvariantViolationError
from repro.protocols.base import UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy
from repro.resilience.auditor import (
    AuditContext,
    BatchInvariantAuditor,
    InvariantAuditor,
    OverBudgetAdversary,
)
from repro.sim.batched import simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode, ChannelState


def _cheater(T=8, eps=0.5):
    honest = make_adversary("saturating", T=T, eps=eps)
    return OverBudgetAdversary(honest.strategy, T=T, eps=eps)


class TestBudgetInvariant:
    def test_honest_adversary_passes_fast(self):
        auditor = InvariantAuditor(8, 0.5)
        result = simulate_uniform_fast(
            LESKPolicy(0.5), n=32,
            adversary=make_adversary("saturating", T=8, eps=0.5),
            max_slots=4096, seed=5, auditor=auditor,
        )
        assert result.elected
        assert auditor.slots_checked == result.slots

    def test_honest_adversary_passes_faithful(self):
        auditor = InvariantAuditor(8, 0.5)
        stations = [
            UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.STRONG)
            for _ in range(16)
        ]
        result = simulate_stations(
            stations, adversary=make_adversary("saturating", T=8, eps=0.5),
            cd_mode=CDMode.STRONG, max_slots=4096, seed=5,
            stop_on_first_single=True, auditor=auditor,
        )
        assert result.elected
        assert auditor.slots_checked == result.slots

    def test_over_budget_trips_fast(self):
        ctx = AuditContext(seed=5, engine="fast", n=32, protocol="lesk",
                           T=8, eps=0.5, max_slots=4096,
                           adversary="overbudget:saturating")
        auditor = InvariantAuditor(8, 0.5, context=ctx)
        with pytest.raises(InvariantViolationError) as exc:
            simulate_uniform_fast(
                LESKPolicy(0.5), n=32, adversary=_cheater(),
                max_slots=4096, seed=5, auditor=auditor,
            )
        bundle = exc.value.bundle
        assert bundle is not None
        assert bundle.invariant == "budget"
        assert bundle.replayable
        # Saturating + T=8, eps=0.5: the first window [0, 8) already holds
        # 8 jams against an allowance of 4.
        assert (bundle.slot_start, bundle.slot_end) == (0, 8)

    def test_over_budget_trips_faithful(self):
        auditor = InvariantAuditor(8, 0.5)
        stations = [
            UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.STRONG)
            for _ in range(16)
        ]
        with pytest.raises(InvariantViolationError, match="budget"):
            simulate_stations(
                stations, adversary=_cheater(),
                cd_mode=CDMode.STRONG, max_slots=4096, seed=5,
                stop_on_first_single=True, auditor=auditor,
            )


class TestChannelInvariant:
    def test_inconsistent_observation_trips(self):
        auditor = InvariantAuditor(8, 0.5)
        # k=0 without jamming must be observed NULL; claim COLLISION.
        with pytest.raises(InvariantViolationError, match="channel"):
            auditor.observe_slot(0, 0, False, ChannelState.COLLISION)

    def test_corrupted_slot_exempt(self):
        auditor = InvariantAuditor(8, 0.5)
        auditor.observe_slot(0, 0, False, ChannelState.COLLISION, corrupted=True)
        auditor.observe_slot(1, 2, False, None, corrupted=True)  # erased
        assert auditor.slots_checked == 2

    def test_erasure_without_fault_trips(self):
        auditor = InvariantAuditor(8, 0.5)
        with pytest.raises(InvariantViolationError, match="channel"):
            auditor.observe_slot(0, 1, False, None)


class TestElectionInvariant:
    def test_multiple_leaders_trip(self):
        auditor = InvariantAuditor(8, 0.5)
        with pytest.raises(InvariantViolationError, match="election"):
            auditor.check_election(2)

    def test_single_leader_passes(self):
        auditor = InvariantAuditor(8, 0.5)
        auditor.check_election(1, leader=3, deciding_slot=10)

    def test_crashed_at_decision_trips(self):
        auditor = InvariantAuditor(8, 0.5)
        with pytest.raises(InvariantViolationError, match="election"):
            auditor.check_election(1, leader=3, deciding_slot=10, leader_awake=False)


class TestBatchAuditor:
    def test_clean_batched_run(self):
        auditor = BatchInvariantAuditor(8, 0.5, reps=4)
        result = simulate_uniform_batched(
            lambda reps: VectorLESKPolicy(0.5, reps), 32,
            lambda reps: make_batched_adversary("saturating", T=8, eps=0.5, reps=reps),
            4, 4096, root_seed=5, auditor=auditor,
        )
        assert result.elected.all()

    def test_over_jammed_column_trips_with_column(self):
        T, eps, reps = 8, 0.5, 3
        ctx = AuditContext(seed=1, engine="batched", n=16, protocol="lesk",
                           T=T, eps=eps, adversary="overbudget:saturating")
        auditor = BatchInvariantAuditor(T, eps, reps, context=ctx)
        k = np.zeros(reps, dtype=np.int64)
        observed = np.full(reps, np.int8(ChannelState.COLLISION))
        jam = np.array([False, True, False])  # column 1 jams every slot
        clean = np.array(
            [np.int8(ChannelState.NULL), np.int8(ChannelState.COLLISION),
             np.int8(ChannelState.NULL)]
        )
        with pytest.raises(InvariantViolationError) as exc:
            for slot in range(T + 1):
                auditor.observe_slot(slot, k, jam, clean)
        bundle = exc.value.bundle
        assert bundle.invariant == "budget"
        assert bundle.column == 1

    def test_channel_check_vectorized(self):
        auditor = BatchInvariantAuditor(8, 0.5, reps=2)
        k = np.array([1, 0], dtype=np.int64)
        jam = np.zeros(2, dtype=bool)
        bad = np.array([np.int8(ChannelState.SINGLE), np.int8(ChannelState.SINGLE)])
        with pytest.raises(InvariantViolationError, match="channel"):
            auditor.observe_slot(0, k, jam, bad)

    def test_corruption_mask_exempts(self):
        auditor = BatchInvariantAuditor(8, 0.5, reps=2)
        k = np.array([1, 0], dtype=np.int64)
        jam = np.zeros(2, dtype=bool)
        bad = np.array([np.int8(ChannelState.SINGLE), np.int8(ChannelState.SINGLE)])
        corrupted = np.array([False, True])
        auditor.observe_slot(0, k, jam, bad, corrupted=corrupted)

"""Fixed-seed pins and invariants for fault injection across all engines."""

import pytest

from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.core.election import elect_leader
from repro.errors import ConfigurationError, SimulationError
from repro.protocols.base import UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy
from repro.resilience.faults import NO_FAULTS, FaultModel
from repro.sim.batched import simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode

#: Nontrivial model exercising every fault class at once.
PIN_FAULTS = FaultModel(
    crash_slots=(5, 9),
    sleep_spans=((12, 20),),
    join_slots=(3,),
    flip_rate=0.05,
    erase_rate=0.05,
    downgrade_slots=(7,),
    skew_rate=0.02,
)


def _fast(faults, seed=123, **kwargs):
    return simulate_uniform_fast(
        LESKPolicy(0.5), n=48,
        adversary=make_adversary("saturating", T=8, eps=0.5),
        max_slots=4096, seed=seed, faults=faults, **kwargs,
    )


def _faithful(faults, seed=123):
    stations = [
        UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.STRONG)
        for _ in range(48)
    ]
    return simulate_stations(
        stations, adversary=make_adversary("saturating", T=8, eps=0.5),
        cd_mode=CDMode.STRONG, max_slots=4096, seed=seed,
        stop_on_first_single=True, faults=faults,
    )


def _batched(faults, seed=123):
    return simulate_uniform_batched(
        lambda reps: VectorLESKPolicy(0.5, reps), 48,
        lambda reps: make_batched_adversary("saturating", T=8, eps=0.5, reps=reps),
        6, 4096, root_seed=seed, faults=faults,
    )


class TestFaultedPins:
    """Fixed-seed regressions with PIN_FAULTS enabled.

    These values pin the *faulted* bitstream discipline: fault streams are
    spawned after all existing spawns, churn realization is eager, and
    corruption draws happen lazily in slot order.  Any reordering of draws
    changes these numbers.
    """

    def test_fast_engine(self):
        r = _fast(PIN_FAULTS)
        assert (r.slots, r.elected, r.leader) == (139, True, 18)
        assert (r.leader_survived, r.jams, r.first_single_slot) == (True, 62, 138)

    def test_faithful_engine(self):
        r = _faithful(PIN_FAULTS)
        assert (r.slots, r.elected, r.leader) == (490, True, 4)
        assert (r.leader_survived, r.jams, r.first_single_slot) == (True, 218, 489)

    def test_batched_engine(self):
        r = _batched(PIN_FAULTS)
        assert r.slots.tolist() == [197, 504, 78, 137, 468, 188]
        assert r.elected.all()
        assert r.leaders.tolist() == [13, 24, 4, 31, 27, 45]
        assert r.leader_survived.tolist() == [True] * 6
        assert r.jams.tolist() == [88, 224, 35, 61, 208, 84]


class TestFaultsOffBitIdentity:
    """faults=None, faults=NO_FAULTS and the legacy call shape must agree
    bit-for-bit: a disabled model spawns no RNG streams."""

    def test_fast(self):
        base = simulate_uniform_fast(
            LESKPolicy(0.5), n=48,
            adversary=make_adversary("saturating", T=8, eps=0.5),
            max_slots=4096, seed=123,
        )
        for faults in (None, NO_FAULTS):
            r = _fast(faults)
            assert (r.slots, r.leader, r.jams) == (base.slots, base.leader, base.jams)
            assert r.leader_survived

    def test_faithful(self):
        a = _faithful(None)
        b = _faithful(NO_FAULTS)
        assert (a.slots, a.leader, a.jams) == (b.slots, b.leader, b.jams)

    def test_batched(self):
        a = _batched(None)
        b = _batched(NO_FAULTS)
        assert a.slots.tolist() == b.slots.tolist()
        assert a.leaders.tolist() == b.leaders.tolist()
        assert a.leader_survived is None
        assert all(res.leader_survived for res in a.results())


class TestLeaderSurvival:
    # Crash 32 of 64 stations: some seed in range elects a doomed leader.
    CHURN = FaultModel(crash_slots=tuple(range(100, 132)))

    def _doomed_seed(self):
        for seed in range(40):
            r = elect_leader(n=64, seed=seed, faults=self.CHURN, engine="fast")
            if r.elected and not r.leader_survived:
                return seed
        pytest.fail("no doomed-leader seed in range")

    def test_require_elected_rejects_doomed_leader(self):
        seed = self._doomed_seed()
        r = elect_leader(n=64, seed=seed, faults=self.CHURN, engine="fast")
        with pytest.raises(SimulationError, match="subsequently crashed"):
            r.require_elected()

    def test_restart_supervision_recovers(self):
        seed = self._doomed_seed()
        r = elect_leader(
            n=64, seed=seed, faults=self.CHURN, engine="fast", max_restarts=8
        )
        assert r.restarts >= 1
        assert r.elected and r.leader_survived
        r.require_elected()
        # Deterministic: same derived attempt seeds, same outcome.
        r2 = elect_leader(
            n=64, seed=seed, faults=self.CHURN, engine="fast", max_restarts=8
        )
        assert (r.restarts, r.leader, r.slots) == (r2.restarts, r2.leader, r2.slots)

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ConfigurationError, match="max_restarts"):
            elect_leader(n=8, seed=0, max_restarts=-1)


class TestEngineGating:
    def test_fast_weak_cd_rejects_faults(self):
        with pytest.raises(ConfigurationError, match="fast weak-CD"):
            elect_leader(
                n=32, protocol="lewk", seed=1, engine="fast",
                faults=FaultModel(flip_rate=0.1),
            )

    def test_fast_weak_cd_allows_disabled_model(self):
        r = elect_leader(n=32, protocol="lewk", seed=1, engine="fast", faults=NO_FAULTS)
        assert r.elected

    def test_faithful_weak_cd_accepts_faults(self):
        r = elect_leader(
            n=16, protocol="lewk", seed=2,
            faults=FaultModel(flip_rate=0.01), audit=True,
        )
        assert r.slots > 0

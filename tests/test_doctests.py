"""Executable documentation: run doctests in modules that carry them.

Keeps the README-style snippets in module docstrings honest; add a module
here when giving it ``>>>`` examples.
"""

from __future__ import annotations

import doctest

import pytest

import repro.protocols.broadcast
import repro.protocols.intervals
import repro.rng

MODULES = [
    repro.protocols.intervals,
    repro.protocols.broadcast,
    repro.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} listed here but has no doctests"

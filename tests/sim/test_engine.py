"""Tests for the faithful per-station engine (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.core.election import make_protocol_stations
from repro.errors import ConfigurationError
from repro.protocols.base import UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.sim.engine import build_stations, simulate_stations
from repro.types import CDMode


def lesk_stations(n, eps=0.5, cd=CDMode.STRONG):
    return [UniformStationAdapter(LESKPolicy(eps), cd_mode=cd) for _ in range(n)]


class TestValidation:
    def test_needs_stations(self):
        with pytest.raises(ConfigurationError):
            simulate_stations(
                [], make_adversary("none", 8, 0.5), CDMode.STRONG, max_slots=10
            )

    def test_needs_positive_slots(self):
        with pytest.raises(ConfigurationError):
            simulate_stations(
                lesk_stations(2),
                make_adversary("none", 8, 0.5),
                CDMode.STRONG,
                max_slots=0,
            )

    def test_build_stations(self):
        stations = build_stations(lambda: UniformStationAdapter(LESKPolicy(0.5)), 5)
        assert len(stations) == 5
        assert stations[0] is not stations[1]
        with pytest.raises(ConfigurationError):
            build_stations(lambda: None, 0)


class TestStrongCDElection:
    def test_single_station_elects_immediately(self):
        """n = 1, u = 0: the station transmits alone, hears its own Single
        (strong-CD), and is the leader in one slot."""
        result = simulate_stations(
            lesk_stations(1),
            make_adversary("none", 8, 0.5),
            CDMode.STRONG,
            max_slots=100,
            seed=0,
            stop_on_first_single=True,
        )
        assert result.elected and result.slots == 1 and result.leader == 0

    def test_election_produces_unique_leader(self):
        result = simulate_stations(
            lesk_stations(32),
            make_adversary("none", 8, 0.5),
            CDMode.STRONG,
            max_slots=10_000,
            seed=1,
            stop_on_first_single=True,
        )
        assert result.elected
        assert result.leaders_count == 1
        assert result.first_single_slot == result.slots - 1

    def test_timeout_reported(self):
        result = simulate_stations(
            lesk_stations(32),
            make_adversary("none", 8, 0.5),
            CDMode.STRONG,
            max_slots=3,
            seed=1,
            stop_on_first_single=True,
        )
        assert not result.elected
        assert result.timed_out
        assert result.slots == 3

    def test_seed_reproducibility(self):
        def run():
            return simulate_stations(
                lesk_stations(32),
                make_adversary("saturating", 8, 0.5),
                CDMode.STRONG,
                max_slots=10_000,
                seed=42,
                stop_on_first_single=True,
                record_trace=True,
            )

        r1, r2 = run(), run()
        assert r1.slots == r2.slots
        assert r1.leader == r2.leader
        assert list(r1.trace.transmitters_array()) == list(r2.trace.transmitters_array())
        assert list(r1.trace.jammed_array()) == list(r2.trace.jammed_array())


class TestEnergyAccounting:
    def test_transmissions_match_trace(self):
        result = simulate_stations(
            lesk_stations(16),
            make_adversary("none", 8, 0.5),
            CDMode.STRONG,
            max_slots=10_000,
            seed=3,
            stop_on_first_single=True,
            record_trace=True,
        )
        assert result.energy.transmissions == int(result.trace.transmitters_array().sum())
        assert sum(result.energy.per_station_transmissions) == result.energy.transmissions

    def test_listening_plus_transmitting_covers_active_slots(self):
        n = 8
        result = simulate_stations(
            lesk_stations(n),
            make_adversary("none", 8, 0.5),
            CDMode.STRONG,
            max_slots=10_000,
            seed=4,
            stop_on_first_single=True,
        )
        # No station terminates before the run ends in this mode.
        assert result.energy.total == n * result.slots


class TestJammingIntegration:
    def test_jam_counts_recorded(self):
        result = simulate_stations(
            lesk_stations(32),
            make_adversary("saturating", 4, 0.5),
            CDMode.STRONG,
            max_slots=10_000,
            seed=5,
            stop_on_first_single=True,
            record_trace=True,
        )
        assert result.jams == int(result.trace.jammed_array().sum())
        assert result.jams > 0
        assert result.jam_denied > 0

    def test_granted_jams_are_bounded(self):
        from repro.adversary.validation import check_bounded

        result = simulate_stations(
            lesk_stations(32),
            make_adversary("saturating", 4, 0.5),
            CDMode.STRONG,
            max_slots=2_000,
            seed=6,
            stop_on_first_single=True,
            record_trace=True,
        )
        assert check_bounded(result.trace.jammed_array(), 4, 0.5)


class TestWeakCDWithoutNotification:
    def test_bare_weak_cd_lesk_never_resolves_leader(self):
        """Selection resolution works (a Single occurs) but the winner does
        not know -- the gap Notification closes."""
        config = ElectionConfig(n=8, protocol="lesk", eps=0.5, T=8)
        stations = [
            UniformStationAdapter(LESKPolicy(0.5), cd_mode=CDMode.WEAK)
            for _ in range(config.n)
        ]
        result = simulate_stations(
            stations,
            make_adversary("none", 8, 0.5),
            CDMode.WEAK,
            max_slots=20_000,
            seed=7,
            stop_when_all_done=True,
        )
        # All listeners terminated as non-leaders; the winner is stuck.
        assert result.first_single_slot is not None
        assert not result.all_terminated
        assert result.leaders_count == 0


class TestMakeProtocolStations:
    def test_strong_protocols_use_adapters(self):
        config = ElectionConfig(n=3, protocol="lesk")
        stations = make_protocol_stations(config)
        assert all(isinstance(s, UniformStationAdapter) for s in stations)

    def test_weak_protocols_use_notification(self):
        from repro.protocols.notification import NotificationStation

        config = ElectionConfig(n=3, protocol="lewk")
        stations = make_protocol_stations(config)
        assert all(isinstance(s, NotificationStation) for s in stations)

"""Backend parity and resolution for the optional compiled LESK kernels.

The numba backend is absent from the default image, so the parity tests
skip cleanly there; the resolution tests assert the soft-degradation
contract either way (``auto`` never raises, explicit ``numba`` without
the wheel is a loud configuration error).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.kernels import (
    HAVE_NUMBA,
    apply_lesk_outcomes_numpy,
    get_lesk_kernel,
    resolve_backend,
    warmup,
)

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")


def _cases(rng, width=257):
    """(u, k, inv_a, floor, nonneg) tuples spanning the kernel's domain."""
    for floor in (True, False):
        u = rng.uniform(-3.0, 8.0, size=width)
        k = rng.integers(0, 5, size=width)
        yield u, k, rng.uniform(0.01, 0.5), floor, False
    # The megakernel's nonneg fast path: u >= 0 with the floor active.
    u = rng.uniform(0.0, 8.0, size=width)
    k = rng.integers(0, 5, size=width)
    yield u, k, 0.0625, True, True


class TestNumpyKernel:
    def test_null_collision_single_semantics(self):
        u = np.array([3.0, 0.5, 2.0, 1.0])
        k = np.array([0, 0, 1, 3], dtype=np.int64)
        apply_lesk_outcomes_numpy(u, k, 0.25)
        # Null steps down (floored), Single untouched, Collision steps up.
        assert u.tolist() == [2.0, 0.0, 2.0, 1.25]

    def test_no_floor_goes_negative(self):
        u = np.array([0.5])
        apply_lesk_outcomes_numpy(u, np.array([0], dtype=np.int64), 0.25,
                                  floor_at_zero=False)
        assert u[0] == -0.5

    def test_scratch_and_nonneg_paths_match_reference(self):
        rng = np.random.default_rng(17)
        for u, k, inv_a, floor, nonneg in _cases(rng):
            ref = u.copy()
            apply_lesk_outcomes_numpy(ref, k, inv_a, floor)
            got = u.copy()
            scratch = (np.empty_like(k, dtype=bool), np.empty_like(k, dtype=bool))
            apply_lesk_outcomes_numpy(got, k, inv_a, floor,
                                      scratch=scratch, nonneg=nonneg)
            assert np.array_equal(ref, got)


class TestBackendResolution:
    def test_auto_resolves_to_an_available_backend(self):
        resolved = resolve_backend("auto")
        assert resolved == ("numba" if HAVE_NUMBA else "numpy")

    def test_numpy_always_available(self):
        assert resolve_backend("numpy") == "numpy"
        assert get_lesk_kernel("numpy") is apply_lesk_outcomes_numpy

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_backend("cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_explicit_numba_without_wheel_is_loud(self):
        with pytest.raises(ConfigurationError, match=r"repro\[perf\]"):
            resolve_backend("numba")
        with pytest.raises(ConfigurationError, match=r"repro\[perf\]"):
            get_lesk_kernel("numba")

    def test_warmup_returns_resolved_backend(self):
        assert warmup("numpy") == "numpy"
        assert warmup("auto") == resolve_backend("auto")


@needs_numba
class TestNumbaParity:
    def test_bit_identical_to_numpy(self):
        kernel = get_lesk_kernel("numba")
        rng = np.random.default_rng(23)
        for u, k, inv_a, floor, nonneg in _cases(rng):
            ref = u.copy()
            apply_lesk_outcomes_numpy(ref, k, inv_a, floor)
            got = u.copy()
            kernel(got, k, inv_a, floor, nonneg=nonneg)
            assert np.array_equal(ref, got)

    def test_megakernel_results_identical_across_backends(self):
        from repro.adversary.vector import make_batched_adversary
        from repro.protocols.vector import VectorLESKPolicy
        from repro.sim.megakernel import simulate_uniform_megakernel

        def run(backend):
            return simulate_uniform_megakernel(
                lambda r: VectorLESKPolicy(0.5, r),
                64,
                lambda r: make_batched_adversary(
                    "saturating", T=16, eps=0.5, reps=r
                ),
                reps=12,
                max_slots=4000,
                root_seed=7,
                kernel_backend=backend,
            )

        a, b = run("numpy"), run("numba")
        for field in ("slots", "leaders", "jams", "transmissions"):
            assert np.array_equal(getattr(a, field), getattr(b, field))

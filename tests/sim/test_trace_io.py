"""Tests for trace CSV round-tripping (repro.sim.trace_io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.sim.trace_io import load_trace, save_trace, trace_from_csv, trace_to_csv


def make_trace():
    result = elect_leader(
        n=64, eps=0.5, T=8, adversary="saturating", seed=5, record_trace=True
    )
    return result.trace


class TestRoundTrip:
    def test_csv_round_trip_preserves_columns(self):
        trace = make_trace()
        clone = trace_from_csv(trace_to_csv(trace))
        assert len(clone) == len(trace)
        np.testing.assert_array_equal(
            clone.transmitters_array(), trace.transmitters_array()
        )
        np.testing.assert_array_equal(clone.jammed_array(), trace.jammed_array())
        np.testing.assert_array_equal(
            clone.observed_states_array(), trace.observed_states_array()
        )
        np.testing.assert_allclose(clone.u_array(), trace.u_array())

    def test_counters_rebuilt(self):
        trace = make_trace()
        clone = trace_from_csv(trace_to_csv(trace))
        assert clone.jam_count == trace.jam_count
        assert clone.successful_singles == trace.successful_singles
        assert clone.first_single_slot == trace.first_single_slot
        assert clone.observed_nulls == trace.observed_nulls

    def test_file_round_trip(self, tmp_path):
        trace = make_trace()
        path = save_trace(trace, tmp_path / "trace.csv")
        clone = load_trace(path)
        assert len(clone) == len(trace)

    def test_bad_header_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_from_csv("a,b,c\n1,2,3\n")

    def test_out_of_order_rows_rejected(self):
        trace = make_trace()
        lines = trace_to_csv(trace).splitlines()
        swapped = "\n".join([lines[0], lines[2], lines[1], *lines[3:]]) + "\n"
        with pytest.raises(ConfigurationError):
            trace_from_csv(swapped)


class TestCLI:
    def test_elect_command(self, capsys):
        from repro.__main__ import main

        rc = main(["elect", "--n", "64", "--seed", "1"])
        assert rc == 0
        assert "leader: station" in capsys.readouterr().out

    def test_elect_with_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "t.csv"
        rc = main(["elect", "--n", "32", "--seed", "2", "--trace", str(path)])
        assert rc == 0
        assert load_trace(path).successful_singles >= 1

    def test_elect_timeout_exit_code(self, capsys):
        from repro.__main__ import main

        rc = main(["elect", "--n", "1024", "--seed", "1", "--max-slots", "2"])
        assert rc == 1

    def test_estimate_command(self, capsys):
        from repro.__main__ import main

        rc = main(["estimate", "--n", "256", "--seed", "3"])
        assert rc == 0
        assert "estimate:" in capsys.readouterr().out

    def test_kselect_command(self, capsys):
        from repro.__main__ import main

        rc = main(["kselect", "--n", "128", "--k", "2", "--seed", "4"])
        assert rc == 0
        assert "leaders:" in capsys.readouterr().out

    def test_experiments_forwarding(self, capsys):
        from repro.__main__ import main

        rc = main(["experiments", "--preset", "small", "--only", "T10"])
        assert rc == 0
        assert "T10" in capsys.readouterr().out

"""Cross-validation of the aggregate-state Notification simulator against
the faithful per-station engine (repro.sim.fast_notification)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import make_adversary
from repro.errors import ConfigurationError
from repro.protocols.lesk import LESKPolicy
from repro.protocols.notification import NotificationStation
from repro.sim.engine import simulate_stations
from repro.sim.fast_notification import simulate_notification_fast
from repro.types import CDMode

N = 12
EPS = 0.5
T = 8


def fast_times(adversary: str, reps: int = 80) -> np.ndarray:
    out = []
    for seed in range(reps):
        result = simulate_notification_fast(
            lambda: LESKPolicy(EPS),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            max_slots=200_000,
            seed=seed,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


def faithful_times(adversary: str, reps: int = 80) -> np.ndarray:
    out = []
    for seed in range(reps):
        stations = [NotificationStation(lambda: LESKPolicy(EPS)) for _ in range(N)]
        result = simulate_stations(
            stations,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            cd_mode=CDMode.WEAK,
            max_slots=200_000,
            seed=30_000 + seed,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


@pytest.mark.parametrize("adversary", ["none", "saturating", "periodic-front"])
def test_completion_time_distributions_agree(adversary):
    fast = fast_times(adversary)
    faithful = faithful_times(adversary)
    ks = stats.ks_2samp(fast, faithful)
    assert ks.pvalue > 1e-4, (
        f"fast vs faithful Notification diverge under {adversary}: "
        f"p={ks.pvalue:.2e}, medians {np.median(fast):.0f} vs "
        f"{np.median(faithful):.0f}"
    )


class TestValidation:
    def test_requires_three_stations(self):
        with pytest.raises(ConfigurationError):
            simulate_notification_fast(
                lambda: LESKPolicy(0.5),
                n=2,
                adversary=make_adversary("none", T=4, eps=0.5),
                max_slots=100,
            )

    def test_requires_positive_slots(self):
        with pytest.raises(ConfigurationError):
            simulate_notification_fast(
                lambda: LESKPolicy(0.5),
                n=4,
                adversary=make_adversary("none", T=4, eps=0.5),
                max_slots=0,
            )


class TestSemantics:
    def test_elects_exactly_one_leader(self):
        result = simulate_notification_fast(
            lambda: LESKPolicy(EPS),
            n=100,
            adversary=make_adversary("single-suppressor", T=T, eps=EPS),
            max_slots=200_000,
            seed=7,
        )
        assert result.elected
        assert result.leaders_count == 1
        assert result.all_terminated

    def test_scales_to_large_n(self):
        """O(1)/slot: n = 10^5 stays fast and still completes."""
        result = simulate_notification_fast(
            lambda: LESKPolicy(EPS),
            n=100_000,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            max_slots=500_000,
            seed=8,
        )
        assert result.elected

    def test_reproducible(self):
        runs = [
            simulate_notification_fast(
                lambda: LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=200_000,
                seed=9,
            )
            for _ in range(2)
        ]
        assert runs[0].slots == runs[1].slots
        assert runs[0].jams == runs[1].jams

    def test_timeout_reported(self):
        result = simulate_notification_fast(
            lambda: LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("none", T=T, eps=EPS),
            max_slots=4,
            seed=1,
        )
        assert not result.elected and result.timed_out

"""The vectorized faithful engine: pins, law, CD semantics and faults.

:mod:`repro.sim.vectorized` keeps the scalar faithful model -- per-cell
transmit decisions, per-cell protocol state, CD-filtered feedback, the
actual transmitting cell as winner -- in ``(reps, n)`` NumPy lockstep.
Its bitstream differs from :func:`repro.sim.engine.simulate_stations`
(vectorized draw layout), so fidelity is checked three ways: fixed-seed
pins (regression), KS cross-validation of election-time samples against
the scalar engines (law), and the lockstep differential harness in
``tests/resilience/test_differential.py`` (per-slot semantics).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.errors import ConfigurationError
from repro.protocols.base import UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy
from repro.resilience.auditor import BatchInvariantAuditor
from repro.resilience.faults import FaultModel
from repro.sim.engine import simulate_stations
from repro.sim.vectorized import simulate_stations_vectorized
from repro.types import CDMode

EPS = 0.5
T = 8


def vectorized_lesk(adversary: str, *, n=64, reps=6, seed=7, max_slots=2000, **kw):
    return simulate_stations_vectorized(
        lambda w: VectorLESKPolicy(EPS, w),
        n,
        lambda r: make_batched_adversary(adversary, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=seed,
        **kw,
    )


class TestPins:
    """Fixed-seed regressions: any stream or semantics drift trips these."""

    def test_saturating(self):
        r = vectorized_lesk("saturating")
        assert list(r.slots) == [69, 71, 71, 96, 74, 60]
        assert list(r.leaders) == [21, 0, 15, 50, 38, 50]
        assert list(r.jams) == [31, 32, 32, 43, 33, 27]
        assert list(r.transmissions) == [1420, 1448, 1429, 1532, 1444, 1420]
        assert list(r.listening) == [2996, 3096, 3115, 4612, 3292, 2420]
        assert r.elected.all() and not r.timed_out.any()

    def test_reactive(self):
        r = vectorized_lesk("reactive", n=32, seed=21)
        assert list(r.slots) == [56, 42, 36, 61, 66, 53]
        assert list(r.leaders) == [15, 29, 15, 14, 12, 15]
        assert list(r.jams) == [0, 0, 0, 0, 1, 0]

    def test_faults(self):
        fm = FaultModel(
            flip_rate=0.04,
            erase_rate=0.04,
            crash_rate=0.003,
            join_slots=(4, 9),
            downgrade_slots=(3, 8),
            skew_rate=0.02,
        )
        r = vectorized_lesk("saturating", n=32, seed=5, faults=fm)
        assert list(r.slots) == [92, 51, 80, 96, 155, 62]
        assert list(r.leaders) == [5, 30, 21, 25, 1, 29]
        assert r.elected.all()
        assert not r.leader_survived.any()

    def test_reproducible(self):
        a = vectorized_lesk("reactive", seed=13)
        b = vectorized_lesk("reactive", seed=13)
        for field in ("slots", "leaders", "jams", "transmissions", "listening"):
            np.testing.assert_array_equal(getattr(a, field), getattr(b, field))


class TestInvariants:
    def test_leaders_are_stations(self):
        r = vectorized_lesk("saturating", reps=12, seed=31)
        assert r.elected.all()
        assert ((r.leaders >= 0) & (r.leaders < 64)).all()
        assert (r.first_single_slot == r.slots - 1).all()

    def test_energy_identity_fault_free(self):
        # Strong CD + halt-on-single: every cell is awake and undone
        # until the halting slot, so per rep transmissions + listening
        # account for exactly n station-slots per slot.
        r = vectorized_lesk("reactive", reps=10, seed=17)
        np.testing.assert_array_equal(
            r.transmissions + r.listening, 64 * r.slots
        )

    def test_auditor_accepts_engine_channel(self):
        auditor = BatchInvariantAuditor(T, EPS, reps=8)
        r = vectorized_lesk("saturating", reps=8, seed=23, auditor=auditor)
        assert r.elected.all()
        assert auditor.slots_checked >= int(r.slots.max())

    def test_no_cd_rejected(self):
        with pytest.raises(ConfigurationError):
            vectorized_lesk("saturating", cd_mode=CDMode.NO_CD)

    def test_policy_width_checked(self):
        with pytest.raises(ConfigurationError):
            simulate_stations_vectorized(
                lambda w: VectorLESKPolicy(EPS, w // 2),
                8,
                lambda r: make_batched_adversary("none", T=T, eps=EPS, reps=r),
                reps=4,
                max_slots=10,
                root_seed=1,
            )


class TestWeakCD:
    def test_winner_never_learns(self):
        # The Notification problem: listeners resolve on a heard Single,
        # but the weak-CD transmitter gets no feedback -- without the
        # halt-on-single convention no replication ever elects.
        r = vectorized_lesk(
            "none",
            n=16,
            reps=4,
            seed=3,
            max_slots=400,
            cd_mode=CDMode.WEAK,
            stop_on_first_single=False,
        )
        assert not r.elected.any()
        assert r.timed_out.all()
        assert list(r.first_single_slot) == [53, 39, 35, 28]

    def test_halt_on_single_still_elects(self):
        r = vectorized_lesk(
            "none", n=16, reps=4, seed=3, max_slots=400, cd_mode=CDMode.WEAK
        )
        assert r.elected.all()
        assert (r.slots == r.first_single_slot + 1).all()


class TestLawVsScalarFaithful:
    """Two-sample KS: election times match the scalar faithful engine."""

    N = 16
    RUNS = 150

    def scalar_times(self, adversary: str) -> np.ndarray:
        out = []
        for seed in range(self.RUNS):
            stations = [
                UniformStationAdapter(LESKPolicy(EPS)) for _ in range(self.N)
            ]
            result = simulate_stations(
                stations,
                make_adversary(adversary, T=T, eps=EPS),
                cd_mode=CDMode.STRONG,
                max_slots=100_000,
                seed=seed,
                stop_on_first_single=True,
            )
            assert result.elected
            out.append(result.slots)
        return np.asarray(out, dtype=float)

    @pytest.mark.parametrize("adversary", ["saturating", "reactive"])
    def test_election_time_distribution(self, adversary):
        batch = vectorized_lesk(
            adversary, n=self.N, reps=self.RUNS, seed=99, max_slots=100_000
        )
        assert batch.elected.all()
        ks = stats.ks_2samp(
            batch.slots.astype(float), self.scalar_times(adversary)
        )
        assert ks.pvalue > 1e-4

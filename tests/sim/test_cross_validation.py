"""Cross-validation: the fast binomial-sampling engine and the faithful
per-station engine are *distributionally* equivalent for uniform protocols.

This is the correctness argument for the headline algorithmic optimization
(DESIGN.md, "Fast path").  We compare election-time distributions over many
seeds with a two-sample Kolmogorov-Smirnov test at a conservative level,
plus deterministic invariants that must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.core.election import make_protocol_stations
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode

N = 64
EPS = 0.5
T = 8
REPS = 120


def fast_times(adversary: str, make_policy, reps=REPS) -> np.ndarray:
    out = []
    for seed in range(reps):
        result = simulate_uniform_fast(
            make_policy(),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


def faithful_times(adversary: str, protocol: str, reps=REPS) -> np.ndarray:
    out = []
    for seed in range(reps):
        config = ElectionConfig(n=N, protocol=protocol, eps=EPS, T=T)
        stations = make_protocol_stations(config)
        result = simulate_stations(
            stations,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            cd_mode=CDMode.STRONG,
            max_slots=100_000,
            seed=10_000 + seed,
            stop_on_first_single=True,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


@pytest.mark.parametrize("adversary", ["none", "saturating", "single-suppressor"])
def test_lesk_time_distributions_agree(adversary):
    fast = fast_times(adversary, lambda: LESKPolicy(EPS))
    faithful = faithful_times(adversary, "lesk")
    ks = stats.ks_2samp(fast, faithful)
    assert ks.pvalue > 1e-4, (
        f"fast vs faithful election-time distributions diverge under "
        f"{adversary}: KS p={ks.pvalue:.2e}, "
        f"medians {np.median(fast):.0f} vs {np.median(faithful):.0f}"
    )
    # Medians within 20% of each other as a direct sanity check.
    assert np.median(fast) == pytest.approx(np.median(faithful), rel=0.25)


def test_lesu_time_distributions_agree():
    fast = fast_times("none", lambda: LESUPolicy(), reps=60)
    faithful = faithful_times("none", "lesu", reps=60)
    ks = stats.ks_2samp(fast, faithful)
    assert ks.pvalue > 1e-4


def test_weak_cd_selection_matches_strong_cd_until_first_single():
    """Weak-CD LESK (Function 3) behaves identically to strong-CD LESK up
    to the first successful Single: the shared estimator state never
    diverges before then (DESIGN.md equivalence argument).  We verify on
    the faithful engine by comparing first-single times."""
    weak, strong = [], []
    for seed in range(60):
        for cd, sink in ((CDMode.STRONG, strong), (CDMode.WEAK, weak)):
            from repro.protocols.base import UniformStationAdapter

            stations = [
                UniformStationAdapter(LESKPolicy(EPS), cd_mode=cd) for _ in range(N)
            ]
            result = simulate_stations(
                stations,
                adversary=make_adversary("none", T=T, eps=EPS),
                cd_mode=cd,
                max_slots=100_000,
                seed=seed,
                stop_on_first_single=True,
            )
            assert result.first_single_slot is not None
            sink.append(result.first_single_slot)
    # Identical seeds drive identical coin flips until the first Single,
    # so the paired times must match exactly.
    assert weak == strong

"""Tests for the fast vectorized engine (repro.sim.fast)."""

from __future__ import annotations

import pytest

from repro.adversary.suite import make_adversary
from repro.adversary.validation import check_bounded
from repro.errors import ConfigurationError
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.lesk import LESKPolicy
from repro.sim.fast import simulate_uniform_fast


def run_lesk(n=256, eps=0.5, T=8, adversary="none", seed=0, **kw):
    return simulate_uniform_fast(
        LESKPolicy(eps),
        n=n,
        adversary=make_adversary(adversary, T=T, eps=eps),
        max_slots=kw.pop("max_slots", 100_000),
        seed=seed,
        **kw,
    )


class TestValidation:
    def test_needs_positive_n(self):
        with pytest.raises(ConfigurationError):
            simulate_uniform_fast(
                LESKPolicy(0.5), n=0, adversary=make_adversary("none", 8, 0.5), max_slots=10
            )

    def test_needs_positive_slots(self):
        with pytest.raises(ConfigurationError):
            simulate_uniform_fast(
                LESKPolicy(0.5), n=4, adversary=make_adversary("none", 8, 0.5), max_slots=0
            )


class TestElection:
    def test_elects_and_reports(self):
        result = run_lesk(seed=11)
        assert result.elected
        assert result.leader is not None and 0 <= result.leader < 256
        assert result.first_single_slot == result.slots - 1
        assert result.all_terminated
        assert result.leaders_count == 1

    def test_single_station(self):
        result = run_lesk(n=1, seed=0)
        assert result.elected and result.slots == 1

    def test_timeout(self):
        result = run_lesk(max_slots=2, seed=1)
        assert not result.elected and result.timed_out

    def test_reproducible(self):
        a = run_lesk(adversary="saturating", seed=21, record_trace=True)
        b = run_lesk(adversary="saturating", seed=21, record_trace=True)
        assert a.slots == b.slots and a.leader == b.leader
        assert list(a.trace.transmitters_array()) == list(b.trace.transmitters_array())

    def test_different_seeds_differ(self):
        outcomes = {run_lesk(seed=s).slots for s in range(8)}
        assert len(outcomes) > 1

    def test_jams_are_bounded(self):
        result = run_lesk(adversary="saturating", T=4, seed=2, record_trace=True)
        assert check_bounded(result.trace.jammed_array(), 4, 0.5)

    def test_energy_totals(self):
        result = run_lesk(seed=3, record_trace=True)
        n = result.n
        assert result.energy.transmissions == int(result.trace.transmitters_array().sum())
        assert result.energy.transmissions + result.energy.listening == n * result.slots


class TestPolicyCompletion:
    def test_estimation_completes_without_single(self):
        result = simulate_uniform_fast(
            EstimationPolicy(L=2),
            n=4096,
            adversary=make_adversary("none", 8, 0.5),
            max_slots=100_000,
            seed=4,
            halt_on_single=False,
        )
        assert result.policy_result is not None
        assert not result.elected
        assert result.all_terminated
        assert not result.timed_out

    def test_halt_on_single_false_passes_singles_to_policy(self):
        policy = LESKPolicy(0.5)
        result = simulate_uniform_fast(
            policy,
            n=64,
            adversary=make_adversary("none", 8, 0.5),
            max_slots=100_000,
            seed=5,
            halt_on_single=False,
        )
        # LESK marks itself completed on observing its first Single.
        assert policy.completed
        assert not result.elected

    def test_trace_u_series_recorded(self):
        result = run_lesk(seed=6, record_trace=True)
        u = result.trace.u_array()
        assert len(u) == result.slots
        assert u[0] == 0.0
        assert (u >= 0.0).all()

"""Dead-rep compaction: stream contracts, edge cases and result order.

The compaction loop promises two stream contracts
(:func:`~repro.sim.batched.simulate_uniform_batched`):

* ``compact_rng="legacy"`` reproduces ``compact_interval=None`` bit for
  bit at every interval (the full-width draw over frozen retired
  probabilities consumes exactly the no-compaction bitstream);
* ``compact_rng="packed"`` (the default, and the fast path) is
  *schedule-invariant*: every ``compact_interval`` choice produces
  bit-identical results, because per-slot stream consumption equals the
  number of active columns in ascending original order -- a quantity
  that does not depend on when packing happens.  Its bitstream differs
  from legacy, but the law is the same (KS-checked here, differential-
  checked in ``tests/resilience/test_differential.py``).

The case table deliberately includes the edge cases: a column retiring
at the first opportunity (``n=1``), a cell where *no* column retires
(timeout), ``interval=1``, and faults combined with compaction.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.vector import make_batched_adversary
from repro.errors import ConfigurationError
from repro.protocols.vector import (
    VectorEstimationPolicy,
    VectorLESKPolicy,
    VectorLESUPolicy,
    VectorNoCDSweepPolicy,
)
from repro.resilience.faults import FaultModel
from repro.sim.batched import simulate_uniform_batched

T = 8
EPS = 0.5

ARRAY_FIELDS = [
    "slots",
    "elected",
    "leaders",
    "first_single_slot",
    "jams",
    "jam_denied",
    "transmissions",
    "listening",
    "policy_completed",
    "timed_out",
    "leader_survived",
    "policy_results",
]


def _faults():
    return FaultModel(
        flip_rate=0.05,
        erase_rate=0.05,
        crash_rate=0.002,
        join_slots=(5, 12),
        downgrade_slots=(3, 9),
        skew_rate=0.01,
    )


# name -> (engine kwargs, policy factory, strategy, reps, seed, extra kwargs)
CASES = {
    "reactive-lesk": (
        dict(n=64, max_slots=400),
        lambda r: VectorLESKPolicy(EPS, r),
        "reactive",
        8,
        1234,
        {},
    ),
    "lesu-estimator-attacker": (
        dict(n=64, max_slots=600),
        VectorLESUPolicy,
        "estimator-attacker",
        6,
        77,
        {},
    ),
    "estimation-completes": (
        dict(n=256, max_slots=400, halt_on_single=False),
        VectorEstimationPolicy,
        "collision-forcer",
        8,
        55,
        {},
    ),
    "nocd-single-suppressor": (
        dict(n=64, max_slots=600),
        VectorNoCDSweepPolicy,
        "single-suppressor",
        8,
        42,
        {},
    ),
    "random-jammer-lesk": (
        dict(n=64, max_slots=300),
        lambda r: VectorLESKPolicy(EPS, r),
        "random",
        32,
        7,
        {},
    ),
    "faults-plus-compaction": (
        dict(n=64, max_slots=300),
        lambda r: VectorLESKPolicy(EPS, r),
        "saturating",
        32,
        11,
        dict(faults=_faults()),
    ),
    "no-column-retires": (
        dict(n=64, max_slots=8),
        lambda r: VectorLESKPolicy(EPS, r),
        "saturating",
        8,
        3,
        {},
    ),
    "all-retire-first-slot": (
        dict(n=1, max_slots=50),
        lambda r: VectorLESKPolicy(EPS, r),
        "none",
        8,
        9,
        {},
    ),
}


def run_case(name: str, *, compact_interval, compact_rng="packed"):
    kw, pol, strategy, reps, seed, extra = CASES[name]
    return simulate_uniform_batched(
        pol,
        adversary_factory=lambda r: make_batched_adversary(strategy, T, EPS, r),
        reps=reps,
        root_seed=seed,
        compact_interval=compact_interval,
        compact_rng=compact_rng,
        **kw,
        **extra,
    )


def assert_identical(a, b) -> None:
    for field in ARRAY_FIELDS:
        x, y = getattr(a, field), getattr(b, field)
        if x is None or y is None:
            assert x is None and y is None, field
        else:
            np.testing.assert_array_equal(x, y, err_msg=field)


class TestLegacyBitIdentity:
    """``compact_rng="legacy"`` == ``compact_interval=None``, bit for bit."""

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("interval", [1, 4, 16])
    def test_matches_no_compaction(self, case, interval):
        base = run_case(case, compact_interval=None)
        got = run_case(case, compact_interval=interval, compact_rng="legacy")
        assert_identical(base, got)


class TestPackedScheduleInvariance:
    """The packed stream is invariant under the packing schedule."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_all_intervals_agree(self, case):
        base = run_case(case, compact_interval=1)
        for interval in (2, 4, 16, 37):
            got = run_case(case, compact_interval=interval)
            assert_identical(base, got)


class TestPackedLaw:
    """Packed draws change the bitstream but not the law."""

    def test_ks_vs_no_compaction(self):
        def times(compact_interval, compact_rng, seed):
            batch = simulate_uniform_batched(
                lambda r: VectorLESKPolicy(EPS, r),
                64,
                lambda r: make_batched_adversary("reactive", T, EPS, r),
                reps=300,
                max_slots=100_000,
                root_seed=seed,
                compact_interval=compact_interval,
                compact_rng=compact_rng,
            )
            assert batch.elected.all()
            return batch.slots.astype(float)

        packed = times(16, "packed", seed=101)
        legacy = times(None, "legacy", seed=202)
        ks = stats.ks_2samp(packed, legacy)
        assert ks.pvalue > 1e-4


class TestResultsOrder:
    """``results()`` stays in original-rep order under any retirement order.

    The estimator-attacker LESU cell retires columns far out of index
    order (single-digit and near-timeout slot counts interleaved), so a
    compaction bug that reported packed positions instead of original
    rep indices would scramble this comparison.
    """

    def test_results_match_no_compaction_elementwise(self):
        base = run_case("lesu-estimator-attacker", compact_interval=None)
        got = run_case(
            "lesu-estimator-attacker", compact_interval=1, compact_rng="legacy"
        )
        # Retirement order must actually be shuffled for this test to
        # bite: some later column retires before an earlier one.
        order = np.argsort(base.slots, kind="stable")
        assert not np.array_equal(order, np.arange(base.reps))
        assert got.results() == base.results()
        for r, res in enumerate(got.results()):
            assert res.slots == int(base.slots[r])

    def test_packed_results_keep_rep_alignment(self):
        base = run_case("random-jammer-lesk", compact_interval=1)
        got = run_case("random-jammer-lesk", compact_interval=16)
        assert got.results() == base.results()


class TestValidation:
    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            run_case("reactive-lesk", compact_interval=0)

    def test_bad_compact_rng_rejected(self):
        with pytest.raises(ConfigurationError):
            run_case("reactive-lesk", compact_interval=4, compact_rng="fast")

"""Cross-validation: the batched cross-replication engine is
*distributionally* equivalent to the scalar fast engine.

Per-column exactness argument: each batch column sees binomial transmitter
draws with its own probability, an independent jam sequence clamped by an
identical per-column (T, 1-eps) budget, and evolves by the scalar policy's
update rule.  We verify with two-sample KS tests over election-time samples
(fixed seeds) for LESK and the geometric doubling-sweep baseline, plus
deterministic invariants every batch must satisfy.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import make_adversary
from repro.adversary.validation import check_bounded
from repro.adversary.vector import is_batchable, make_batched_adversary
from repro.errors import ConfigurationError
from repro.protocols.baselines.nakano_olariu import UniformSweepPolicy
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy, VectorSweepPolicy
from repro.sim.batched import simulate_uniform_batched
from repro.sim.fast import simulate_uniform_fast

N = 64
EPS = 0.5
T = 8
REPS = 200


def batched_lesk(adversary: str, reps=REPS, seed=99, max_slots=100_000):
    return simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary(adversary, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=seed,
    )


def scalar_times(adversary: str, make_policy, reps=REPS) -> np.ndarray:
    out = []
    for seed in range(reps):
        result = simulate_uniform_fast(
            make_policy(),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
        assert result.elected
        out.append(result.slots)
    return np.asarray(out, dtype=float)


@pytest.mark.parametrize(
    "adversary", ["none", "saturating", "periodic-front", "random"]
)
def test_lesk_time_distributions_agree(adversary):
    batch = batched_lesk(adversary)
    assert batch.elected.all()
    scalar = scalar_times(adversary, lambda: LESKPolicy(EPS))
    ks = stats.ks_2samp(batch.slots.astype(float), scalar)
    assert ks.pvalue > 1e-4, (
        f"batched vs scalar election-time distributions diverge under "
        f"{adversary}: KS p={ks.pvalue:.2e}, "
        f"medians {np.median(batch.slots):.0f} vs {np.median(scalar):.0f}"
    )
    assert np.median(batch.slots) == pytest.approx(np.median(scalar), rel=0.25)


def test_sweep_time_distributions_agree():
    """The geometric doubling-sweep baseline, no adversary (the sweep is
    not robust to jamming, so the quiet channel is its natural regime)."""
    batch = simulate_uniform_batched(
        lambda r: VectorSweepPolicy(r),
        N,
        lambda r: make_batched_adversary("none", T=T, eps=EPS, reps=r),
        reps=REPS,
        max_slots=100_000,
        root_seed=5,
    )
    assert batch.elected.all()
    scalar = scalar_times("none", lambda: UniformSweepPolicy())
    ks = stats.ks_2samp(batch.slots.astype(float), scalar)
    assert ks.pvalue > 1e-4, (
        f"KS p={ks.pvalue:.2e}, medians "
        f"{np.median(batch.slots):.0f} vs {np.median(scalar):.0f}"
    )


def test_jam_count_distributions_agree():
    """Not just times: the granted-jam counts must match in law too."""
    batch = batched_lesk("saturating")
    scalar_jams = []
    for seed in range(REPS):
        result = simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
        scalar_jams.append(result.jams)
    ks = stats.ks_2samp(batch.jams.astype(float), np.asarray(scalar_jams, float))
    assert ks.pvalue > 1e-4


class TestInvariants:
    def test_reproducible(self):
        a = batched_lesk("saturating", seed=21)
        b = batched_lesk("saturating", seed=21)
        assert np.array_equal(a.slots, b.slots)
        assert np.array_equal(a.leaders, b.leaders)
        assert np.array_equal(a.jams, b.jams)

    def test_leaders_in_range(self):
        batch = batched_lesk("saturating", reps=64)
        assert ((batch.leaders >= 0) & (batch.leaders < N))[batch.elected].all()

    def test_results_are_harness_compatible(self):
        batch = batched_lesk("none", reps=16)
        results = batch.results()
        assert len(results) == 16
        for r, result in zip(range(16), results):
            assert result.n == N
            assert result.elected
            assert result.slots == int(batch.slots[r])
            assert result.leader == int(batch.leaders[r])
            assert result.first_single_slot == result.slots - 1
            assert not result.timed_out
            assert result.energy.transmissions == int(batch.transmissions[r])

    def test_timeout_reported_per_column(self):
        batch = batched_lesk("saturating", reps=32, max_slots=8)
        # n=64 cannot elect in 8 slots starting from u=0 (p=1 collisions).
        assert (~batch.elected).all()
        assert batch.timed_out.all()
        assert (batch.slots == 8).all()

    def test_jams_bounded_even_under_saturation(self):
        batch = batched_lesk("saturating", reps=64)
        # Saturating requests every slot; grants must respect (T, 1-eps):
        # at most (1-eps) * max(slots, T) + padding slack per column.
        cap = np.ceil((1.0 - EPS) * np.maximum(batch.slots, T)) + T
        assert (batch.jams <= cap).all()

    def test_scripted_columns_are_budget_sound(self):
        """Drive the array budget through the engine and validate the
        per-column grant pattern post-hoc via the scalar checker."""
        reps = 16
        granted_log = []

        class RecordingAdversary:
            def __init__(self):
                self.inner = make_batched_adversary(
                    "saturating", T=T, eps=EPS, reps=reps
                )
                self.budget = self.inner.budget

            def reset(self, seed=None):
                self.inner.reset(seed=seed)
                self.budget = self.inner.budget

            def decide(self, view):
                granted = self.inner.decide(view)
                granted_log.append(granted.copy())
                return granted

        simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: RecordingAdversary(),
            reps=reps,
            max_slots=2_000,
            root_seed=13,
        )
        pattern = np.vstack(granted_log)
        for r in range(reps):
            assert check_bounded(pattern[:, r].tolist(), T=T, eps=EPS)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batched_lesk("saturating", reps=0)
        with pytest.raises(ConfigurationError):
            batched_lesk("saturating", max_slots=0)
        with pytest.raises(ConfigurationError):
            make_batched_adversary("no-such-strategy", T=T, eps=EPS, reps=4)

    def test_is_batchable(self):
        from repro.adversary.suite import strategy_names

        # The adaptive family is vectorized too: full registry coverage.
        for name in strategy_names():
            assert is_batchable(name), name
        assert not is_batchable("no-such-strategy")

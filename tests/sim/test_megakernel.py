"""The slot-blocked megakernel engine: block invariance, bit-identity,
fallback, and the cached schedule timeline.

The engine's two structural contracts are tested here:

* **Block-size invariance** -- ``block_size`` only changes how the grant
  timeline is chunked, never the results: K in {1, 7, 64, max_slots}
  must yield identical ``BatchRunResult`` fields.
* **Bit-identity with the packed batched stream** -- the megakernel is
  the maximal-compaction limit of ``compact_rng="packed"``: for any
  explicit ``compact_interval`` the batched engine must produce the same
  arrays bit for bit, across all three fast-path policies and every
  schedulable strategy.

Statistical cross-validation against the scalar fast engine (different
bitstream, same law) uses the same KS setup as
``tests/sim/test_cross_validation.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro import telemetry
from repro.adversary.budget import JammingBudget
from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.errors import ConfigurationError
from repro.protocols.baselines.nakano_olariu import (
    NoCDSweepPolicy,
    UniformSweepPolicy,
)
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import (
    VectorLESKPolicy,
    VectorNoCDSweepPolicy,
    VectorSweepPolicy,
)
from repro.sim.batched import simulate_uniform_batched
from repro.sim.fast import simulate_uniform_fast
from repro.sim.megakernel import (
    _SCHEDULE_CACHE,
    _BudgetSchedule,
    megakernel_eligibility,
    simulate_uniform_megakernel,
)

N = 64
EPS = 0.5
T = 16

RESULT_FIELDS = (
    "slots",
    "elected",
    "leaders",
    "first_single_slot",
    "jams",
    "jam_denied",
    "transmissions",
    "listening",
    "policy_completed",
    "timed_out",
)

POLICIES = {
    "lesk": lambda reps: VectorLESKPolicy(EPS, reps),
    "sweep": lambda reps: VectorSweepPolicy(reps),
    "nocd-sweep": lambda reps: VectorNoCDSweepPolicy(reps),
}

SCHEDULABLE = ("none", "saturating", "periodic-front", "burst")


def _mega(policy, strategy, *, reps=24, max_slots=4000, seed=33, **kw):
    return simulate_uniform_megakernel(
        POLICIES[policy],
        N,
        lambda r: make_batched_adversary(strategy, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=seed,
        **kw,
    )


def _batched(policy, strategy, *, reps=24, max_slots=4000, seed=33, **kw):
    return simulate_uniform_batched(
        POLICIES[policy],
        N,
        lambda r: make_batched_adversary(strategy, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=seed,
        **kw,
    )


def assert_results_equal(a, b, context=""):
    for f in RESULT_FIELDS:
        assert np.array_equal(getattr(a, f), getattr(b, f)), (
            f"{context} field {f!r}: {getattr(a, f)} != {getattr(b, f)}"
        )


class TestBlockInvariance:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("strategy", ["saturating", "burst"])
    def test_block_size_never_changes_results(self, policy, strategy):
        ref = _mega(policy, strategy, block_size=1)
        for block_size in (7, 64, 4000):
            got = _mega(policy, strategy, block_size=block_size)
            assert_results_equal(
                ref, got, f"{policy}/{strategy} K=1 vs K={block_size}"
            )

    def test_timeout_edge_block_invariant(self):
        # max_slots small enough that some reps time out: the boundary
        # between elected and timed-out columns must not move with K.
        for seed in range(5):
            ref = _mega("lesk", "saturating", reps=8, max_slots=40,
                        seed=seed, block_size=1)
            got = _mega("lesk", "saturating", reps=8, max_slots=40,
                        seed=seed, block_size=64)
            assert_results_equal(ref, got, f"timeout edge seed={seed}")


class TestBitIdentityWithPackedBatched:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("strategy", SCHEDULABLE)
    def test_matches_packed_stream(self, policy, strategy):
        for interval in (1, 8):
            ref = _batched(
                policy, strategy, compact_interval=interval,
                compact_rng="packed",
            )
            got = _mega(policy, strategy, compact_interval=interval)
            assert_results_equal(
                ref, got, f"{policy}/{strategy} ci={interval}"
            )

    def test_matches_across_root_seeds(self):
        for seed in range(8):
            ref = _batched("lesk", "saturating", reps=8, seed=seed,
                           compact_interval=1, compact_rng="packed")
            got = _mega("lesk", "saturating", reps=8, seed=seed)
            assert_results_equal(ref, got, f"seed={seed}")


class TestFixedSeedPins:
    """Exact regression pins: any RNG-stream or arithmetic change trips
    these before the statistical tests ever could."""

    def test_lesk_saturating_pin(self):
        r = _mega("lesk", "saturating", reps=12, seed=7)
        assert r.elected.all()
        assert r.slots.tolist() == [67, 87, 63, 67, 84, 65, 67, 65, 72, 72, 65, 65]
        assert r.leaders.tolist() == [27, 2, 35, 13, 12, 62, 6, 14, 24, 44, 59, 62]
        assert r.jams.tolist() == [32, 41, 30, 32, 40, 31, 32, 31, 34, 34, 31, 31]
        assert r.transmissions.tolist() == [
            1469, 1474, 1422, 1433, 1509, 1393, 1433, 1432, 1427, 1439, 1411, 1406
        ]

    def test_sweep_burst_pin(self):
        r = _mega("sweep", "burst", reps=12, seed=7)
        assert r.slots.tolist() == [43, 26, 10, 42, 43, 16, 17, 17, 27, 16, 16, 10]
        assert r.leaders.tolist() == [52, 60, 15, 30, 60, 47, 47, 40, 38, 34, 13, 51]


SCALAR_POLICIES = {
    "lesk": lambda: LESKPolicy(EPS),
    "sweep": UniformSweepPolicy,
    "nocd-sweep": NoCDSweepPolicy,
}


class TestCrossValidation:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("strategy", ["none", "saturating"])
    def test_election_times_match_scalar_law(self, policy, strategy):
        reps = 120
        mega = _mega(policy, strategy, reps=reps, max_slots=100_000, seed=5)
        assert mega.elected.all()
        scalar = []
        for seed in range(reps):
            result = simulate_uniform_fast(
                SCALAR_POLICIES[policy](),
                n=N,
                adversary=make_adversary(strategy, T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            )
            assert result.elected
            scalar.append(result.slots)
        ks = stats.ks_2samp(mega.slots.astype(float), np.asarray(scalar, float))
        assert ks.pvalue > 1e-4, (
            f"megakernel vs scalar election times diverge for "
            f"{policy}/{strategy}: KS p={ks.pvalue:.2e}, medians "
            f"{np.median(mega.slots):.0f} vs {np.median(scalar):.0f}"
        )


class TestBudgetSchedule:
    def test_budget_schedule_matches_budget(self):
        """The scalar replica must reproduce JammingBudget's decisions
        bit for bit on arbitrary want streams."""
        rng = np.random.default_rng(99)
        for trial, (t_win, eps) in enumerate(
            [(4, 0.5), (16, 0.25), (32, 0.7), (7, 0.33)]
        ):
            wants = rng.random(600) < rng.uniform(0.2, 1.0)
            budget = JammingBudget(T=t_win, eps=eps)
            sched = _BudgetSchedule(t_win, eps)
            grants, jam_prefix, denied_prefix = sched.run(
                np.asarray(wants, dtype=bool)
            )
            jams = denied = 0
            for slot, want in enumerate(wants):
                granted = budget.grant(bool(want))
                jams += int(granted)
                denied += int(want and not granted)
                assert grants[slot] == granted, (
                    f"trial {trial} slot {slot}: schedule {grants[slot]} "
                    f"vs budget {granted}"
                )
                assert jam_prefix[slot] == jams
                assert denied_prefix[slot] == denied

    def test_resume_from_state_round_trip(self):
        wants = np.ones(96, dtype=bool)
        whole = _BudgetSchedule(T, EPS)
        g_all, j_all, d_all = whole.run(wants)
        first = _BudgetSchedule(T, EPS)
        g1, j1, d1 = first.run(wants[:40])
        second = _BudgetSchedule.from_state(T, EPS, first.state())
        g2, j2, d2 = second.run(wants[40:])
        # Prefixes are cumulative across run() calls on a resumed schedule.
        assert g1 + g2 == g_all
        assert j1 + j2 == j_all
        assert d1 + d2 == d_all


class TestScheduleCache:
    def test_divergent_want_streams_share_a_key(self):
        """Two strategies with the same (T, eps) walk the same cached
        timeline; the one whose wants diverge must drop to a private
        live schedule without corrupting the shared chain."""
        _SCHEDULE_CACHE.clear()
        a1 = _mega("lesk", "saturating", reps=8, seed=3)
        b1 = _mega("lesk", "burst", reps=8, seed=3)
        # Re-run after priming the cache with the *other* strategy first.
        _SCHEDULE_CACHE.clear()
        b2 = _mega("lesk", "burst", reps=8, seed=3)
        a2 = _mega("lesk", "saturating", reps=8, seed=3)
        assert_results_equal(a1, a2, "saturating cached-vs-primed")
        assert_results_equal(b1, b2, "burst cached-vs-primed")

    def test_cache_hit_matches_cold_run(self):
        _SCHEDULE_CACHE.clear()
        cold = _mega("lesk", "periodic-front", reps=8, seed=4)
        warm = _mega("lesk", "periodic-front", reps=8, seed=4)
        assert len(_SCHEDULE_CACHE) == 1
        assert_results_equal(cold, warm, "cold vs warm schedule cache")


class TestFallback:
    def test_adaptive_strategy_falls_back_to_batched(self):
        def adversary(r):
            return make_batched_adversary(
                "single-suppressor", T=T, eps=EPS, reps=r
            )

        with telemetry.collecting() as tel:
            got = simulate_uniform_megakernel(
                POLICIES["lesk"], N, adversary,
                reps=12, max_slots=4000, root_seed=9,
            )
        ref = simulate_uniform_batched(
            POLICIES["lesk"], N, adversary,
            reps=12, max_slots=4000, root_seed=9,
        )
        assert_results_equal(ref, got, "fallback delegation")
        assert (
            tel.metrics.counter_value(
                "engine_fallback_total",
                engine="megakernel",
                reason="strategy:single-suppressor",
            )
            == 1
        )

    def test_eligibility_reasons(self):
        policy = VectorLESKPolicy(EPS, 4)
        oblivious = make_batched_adversary("saturating", T=T, eps=EPS, reps=4)
        adaptive = make_batched_adversary(
            "single-suppressor", T=T, eps=EPS, reps=4
        )
        assert megakernel_eligibility(policy, oblivious) is None
        assert megakernel_eligibility(policy, adaptive) is not None
        assert (
            megakernel_eligibility(policy, oblivious, halt_on_single=False)
            is not None
        )
        assert (
            megakernel_eligibility(policy, oblivious, compact_rng="legacy")
            is not None
        )

    def test_unknown_kernel_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            _mega("lesk", "saturating", kernel_backend="cuda")

"""Cross-validation: vectorized *adaptive* adversaries and the new vector
policies (LESU, Estimation, no-CD sweep) match their scalar counterparts.

Two layers of evidence, mirroring ``tests/sim/test_batched.py``:

* **distributional** -- two-sample KS tests over election times (and
  granted-jam counts, since adaptive strategies condition on history the
  engines construct differently) between the batched engine and the scalar
  fast engine, per strategy;
* **pinned** -- fixed-seed regression tuples freezing the batched
  bitstreams, so refactors that silently change the coupled RNG layout
  (rather than the law) fail loudly.

Slot-exact scalar-vs-vector *strategy* equivalence is covered separately
by differential mode (``tests/resilience/test_differential.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.suite import STRATEGY_REGISTRY, make_adversary, strategy_names
from repro.adversary.vector import (
    BATCHED_STRATEGY_REGISTRY,
    is_batchable,
    make_batched_adversary,
)
from repro.core.config import default_slot_budget
from repro.protocols.baselines.nakano_olariu import NoCDSweepPolicy
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy
from repro.protocols.vector import (
    VectorEstimationPolicy,
    VectorLESKPolicy,
    VectorLESUPolicy,
    VectorNoCDSweepPolicy,
)
from repro.sim.batched import simulate_uniform_batched
from repro.sim.fast import simulate_uniform_fast

N = 64
EPS = 0.5
T = 8
REPS = 200

ADAPTIVE = (
    "reactive",
    "single-suppressor",
    "estimator-attacker",
    "silence-masker",
    "collision-forcer",
)


def batched(policy_factory, adversary, reps, seed, max_slots, n=N):
    return simulate_uniform_batched(
        policy_factory,
        n,
        lambda r: make_batched_adversary(adversary, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=seed,
    )


def scalar_runs(make_policy, adversary, reps, max_slots, n=N, **kwargs):
    out = []
    for seed in range(reps):
        out.append(
            simulate_uniform_fast(
                make_policy(),
                n=n,
                adversary=make_adversary(adversary, T=T, eps=EPS),
                max_slots=max_slots,
                seed=seed,
                **kwargs,
            )
        )
    return out


def assert_ks(batch_sample, scalar_sample, label):
    ks = stats.ks_2samp(
        np.asarray(batch_sample, dtype=float), np.asarray(scalar_sample, dtype=float)
    )
    assert ks.pvalue > 1e-4, (
        f"batched vs scalar {label} distributions diverge: "
        f"KS p={ks.pvalue:.2e}, medians "
        f"{np.median(batch_sample):.0f} vs {np.median(scalar_sample):.0f}"
    )


def test_registry_covers_full_suite():
    assert set(BATCHED_STRATEGY_REGISTRY) == set(STRATEGY_REGISTRY)
    for name in strategy_names():
        assert is_batchable(name), name


@pytest.mark.parametrize("adversary", ADAPTIVE)
def test_adaptive_lesk_time_and_jam_distributions_agree(adversary):
    """Election times AND granted-jam counts, per adaptive strategy: the
    jam counts are the sharper check, because they depend on the channel
    history each engine hands the strategy."""
    batch = batched(lambda r: VectorLESKPolicy(EPS, r), adversary, REPS, 99, 100_000)
    assert batch.elected.all()
    scalar = scalar_runs(lambda: LESKPolicy(EPS), adversary, REPS, 100_000)
    assert all(r.elected for r in scalar)
    assert_ks(batch.slots, [r.slots for r in scalar], f"{adversary} time")
    assert_ks(batch.jams, [r.jams for r in scalar], f"{adversary} jams")


def test_lesu_distributions_agree():
    """VectorLESUPolicy (estimation phase + diagonal LESK sub-runs) against
    the scalar Algorithm 2 under the saturating jammer."""
    reps = 120
    budget = default_slot_budget(N, EPS, T, "lesu")
    batch = batched(lambda r: VectorLESUPolicy(r), "saturating", reps, 31, budget)
    assert batch.elected.all()
    scalar = scalar_runs(lambda: LESUPolicy(), "saturating", reps, budget)
    assert all(r.elected for r in scalar)
    assert_ks(batch.slots, [r.slots for r in scalar], "LESU time")


def test_lesu_under_adaptive_jammer_distributions_agree():
    reps = 120
    budget = default_slot_budget(N, EPS, T, "lesu")
    batch = batched(
        lambda r: VectorLESUPolicy(r), "estimator-attacker", reps, 32, budget
    )
    assert batch.elected.all()
    scalar = scalar_runs(lambda: LESUPolicy(), "estimator-attacker", reps, budget)
    assert all(r.elected for r in scalar)
    assert_ks(batch.slots, [r.slots for r in scalar], "LESU/estimator-attacker time")


def test_estimation_round_and_time_distributions_agree():
    """Estimation(2) standalone: both the returned round index and the
    runtime must match in law (n=256 so log log n is informative)."""
    reps = 200
    batch = batched(
        lambda r: VectorEstimationPolicy(r, L=2), "saturating", reps, 47, 50_000, n=256
    )
    scalar = scalar_runs(
        lambda: EstimationPolicy(L=2),
        "saturating",
        reps,
        50_000,
        n=256,
        halt_on_single=True,
    )
    assert_ks(batch.slots, [r.slots for r in scalar], "Estimation time")
    b_rounds = [int(v) for v in batch.policy_results if v >= 0]
    s_rounds = [r.policy_result for r in scalar if r.policy_result is not None]
    assert b_rounds and s_rounds
    assert_ks(b_rounds, s_rounds, "Estimation round")
    # The Single-halt fraction must agree too (binomial z-test, coarse).
    b_single = float(np.mean(batch.elected))
    s_single = float(np.mean([r.elected for r in scalar]))
    assert abs(b_single - s_single) < 0.15


def test_nocd_sweep_distributions_agree():
    """The no-CD repeated sweep under an adaptive jammer: the policy
    ignores feedback, so only the jam/channel coupling is exercised."""
    batch = batched(
        lambda r: VectorNoCDSweepPolicy(r), "single-suppressor", REPS, 53, 100_000
    )
    assert batch.elected.all()
    scalar = scalar_runs(lambda: NoCDSweepPolicy(), "single-suppressor", REPS, 100_000)
    assert all(r.elected for r in scalar)
    assert_ks(batch.slots, [r.slots for r in scalar], "no-CD sweep time")


class TestRegressionPins:
    """Fixed-seed bitstream pins for the batched adaptive/vector paths.

    These freeze the coupled RNG layout (policy draws, adversary grants,
    leader attribution): a legitimate change to the law shows up in the KS
    tests above; a pin-only failure means the stream layout moved."""

    def test_reactive_lesk_pin(self):
        batch = batched(lambda r: VectorLESKPolicy(EPS, r), "reactive", 8, 1234, 100_000)
        assert tuple(int(v) for v in batch.slots) == (66, 67, 60, 73, 71, 65, 93, 79)
        assert tuple(int(v) for v in batch.jams) == (0, 0, 0, 0, 0, 0, 1, 1)

    def test_lesu_pin(self):
        budget = default_slot_budget(N, EPS, T, "lesu")
        batch = batched(
            lambda r: VectorLESUPolicy(r), "estimator-attacker", 6, 77, budget
        )
        assert batch.elected.all()
        assert tuple(int(v) for v in batch.slots) == (7, 9, 13, 81, 9, 11)

    def test_estimation_pin(self):
        batch = batched(
            lambda r: VectorEstimationPolicy(r, L=2),
            "collision-forcer",
            8,
            55,
            50_000,
            n=256,
        )
        assert tuple(int(v) for v in batch.slots) == (14, 14, 14, 14, 12, 14, 13, 14)
        assert tuple(int(v) for v in batch.policy_results) == (3, 3, 3, 3, -1, -1, -1, 3)

    def test_nocd_pin(self):
        batch = batched(
            lambda r: VectorNoCDSweepPolicy(r), "single-suppressor", 8, 42, 100_000
        )
        assert tuple(int(v) for v in batch.slots) == (64, 67, 64, 69, 71, 67, 63, 71)

"""Property-based invariants of the fast uniform engine.

Mirror of ``tests/integration/test_engine_invariants.py`` for the
binomial-sampling path: arbitrary small configurations must satisfy the
model's structural guarantees.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.suite import make_adversary, strategy_names
from repro.adversary.validation import check_bounded
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy
from repro.sim.fast import simulate_uniform_fast
from repro.types import ChannelState


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    eps=st.floats(min_value=0.15, max_value=0.9),
    T=st.integers(min_value=1, max_value=64),
    strategy=st.sampled_from(sorted(strategy_names())),
    lesu=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_fast_run_invariants(n, eps, T, strategy, lesu, seed):
    policy = LESUPolicy() if lesu else LESKPolicy(eps)
    result = simulate_uniform_fast(
        policy,
        n=n,
        adversary=make_adversary(strategy, T=T, eps=eps),
        max_slots=60_000,
        seed=seed,
        record_trace=True,
    )
    trace = result.trace

    if result.elected:
        assert 0 <= result.leader < n
        assert result.leaders_count == 1
        # The final slot is the election: one transmitter, not jammed.
        last = trace[-1]
        assert last.transmitters == 1 and not last.jammed
        assert result.first_single_slot == result.slots - 1
    else:
        assert result.timed_out
        assert result.leader is None

    jams = trace.jammed_array()
    assert check_bounded(jams, T, eps)
    assert result.jams == int(jams.sum())

    k = trace.transmitters_array()
    observed = trace.observed_states_array()
    assert np.all(k <= n)
    assert np.all(observed[jams] == int(ChannelState.COLLISION))
    assert result.energy.transmissions == int(k.sum())
    assert result.energy.transmissions + result.energy.listening == n * result.slots

    # The recorded p/u series must be consistent: p = 2**-u wherever u is
    # finite and the policy exposes an estimator.
    u = trace.u_array()
    p = trace.probability_array()
    finite = np.isfinite(u) & np.isfinite(p) & (u < 900)
    np.testing.assert_allclose(p[finite], 2.0 ** -u[finite], rtol=1e-9)

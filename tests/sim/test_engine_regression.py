"""Fixed-seed regression pins for every scalar engine.

These tests exist to catch *unintended* behavioural drift in the
engines' sampling paths (RNG call order, channel resolution, budget
decisions).  Each pins the exact ``RunResult`` fields produced by a
fixed seed.  If a deliberate change to an engine's sampling order
breaks one of these, re-pin the values in the same commit and say so
in the commit message -- a silent change here means every published
experiment table silently changed too.
"""

from __future__ import annotations

from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.core.election import make_protocol_stations
from repro.protocols.baselines.ars_fast import simulate_ars_fast
from repro.protocols.baselines.ars_mac import ars_gamma
from repro.protocols.lesk import LESKPolicy
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.sim.fast_notification import simulate_notification_fast
from repro.types import CDMode

SEED = 123
EPS = 0.5
T = 8


def _saturating():
    return make_adversary("saturating", T=T, eps=EPS)


def test_simulate_stations_pinned():
    config = ElectionConfig(n=16, protocol="lesk", eps=EPS, T=T)
    result = simulate_stations(
        make_protocol_stations(config),
        adversary=_saturating(),
        cd_mode=CDMode.STRONG,
        max_slots=100_000,
        seed=SEED,
        stop_on_first_single=True,
    )
    assert (result.slots, result.elected, result.jams) == (38, True, 17)


def test_simulate_uniform_fast_pinned():
    result = simulate_uniform_fast(
        LESKPolicy(EPS),
        n=64,
        adversary=_saturating(),
        max_slots=100_000,
        seed=SEED,
    )
    assert (result.slots, result.elected, result.jams) == (58, True, 26)


def test_simulate_notification_fast_pinned():
    result = simulate_notification_fast(
        lambda: LESKPolicy(EPS),
        n=64,
        adversary=_saturating(),
        max_slots=200_000,
        seed=SEED,
    )
    assert (result.slots, result.elected, result.jams) == (767, True, 341)


def test_simulate_ars_fast_pinned():
    result = simulate_ars_fast(
        64,
        ars_gamma(64, T),
        _saturating(),
        max_slots=1_000_000,
        seed=SEED,
    )
    assert (result.slots, result.elected, result.jams) == (5, True, 4)

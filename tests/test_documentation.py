"""Meta-tests: documentation coverage of the public API.

The reproduction promises doc comments on every public item; this test
walks the package and asserts every module, public class and public
function carries a non-trivial docstring.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if member.__doc__ and member.__doc__.strip():
                    continue
                # Interface overrides inherit the base class's contract.
                inherited = any(
                    getattr(getattr(base, mname, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: undocumented {undocumented}"


def test_design_doc_mentions_every_experiment():
    from pathlib import Path

    from repro.experiments.run_all import EXPERIMENT_MODULES

    design = Path(__file__).resolve().parents[1] / "DESIGN.md"
    text = design.read_text()
    missing = [e for e in EXPERIMENT_MODULES if f"**{e}**" not in text]
    assert not missing, f"DESIGN.md lacks experiment index rows for {missing}"

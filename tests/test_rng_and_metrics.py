"""Tests for repro.rng, repro.sim.metrics and the small shared types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.rng import (
    bernoulli,
    check_probability,
    derive_seed,
    make_rng,
    seeds_for,
    spawn,
    spawn_many,
)
from repro.sim.metrics import EnergyStats, RunResult


class TestMakeRng:
    def test_accepts_int_seed(self):
        a, b = make_rng(7), make_rng(7)
        assert a.random() == b.random()

    def test_passes_through_generator(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_fresh_entropy(self):
        assert make_rng(None).random() != make_rng(None).random()


class TestSpawning:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn_many(make_rng(5), 3)
        kids_b = spawn_many(make_rng(5), 3)
        for ka, kb in zip(kids_a, kids_b):
            assert ka.random() == kb.random()
        draws = {round(k.random(), 12) for k in spawn_many(make_rng(5), 8)}
        assert len(draws) == 8

    def test_spawn_single(self):
        child = spawn(make_rng(2))
        assert isinstance(child, np.random.Generator)

    def test_spawn_zero(self):
        assert spawn_many(make_rng(1), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_many(make_rng(1), -1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_path_sensitivity(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_seeds_for_are_distinct(self):
        seeds = seeds_for(16, 9, 1)
        assert len(set(seeds)) == 16

    @given(root=st.integers(min_value=0, max_value=2**31), a=st.integers(0, 100))
    def test_derived_seed_is_valid_63_bit(self, root, a):
        s = derive_seed(root, a)
        assert 0 <= s < 2**63


class TestBernoulliAndChecks:
    def test_degenerate(self):
        rng = make_rng(0)
        assert bernoulli(rng, 0.0) is False
        assert bernoulli(rng, 1.0) is True

    def test_rate(self):
        rng = make_rng(0)
        hits = sum(bernoulli(rng, 0.25) for _ in range(4000))
        assert 0.2 < hits / 4000 < 0.3

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)


class TestEnergyStats:
    def test_totals(self):
        e = EnergyStats(transmissions=10, listening=30)
        assert e.total == 40
        assert e.transmissions_per_station(5) == 2.0
        assert e.listening_per_station(5) == 6.0

    def test_per_station_rejects_nonpositive_n(self):
        from repro.errors import ConfigurationError

        e = EnergyStats(transmissions=10, listening=30)
        for n in (0, -3):
            with pytest.raises(ConfigurationError):
                e.transmissions_per_station(n)
            with pytest.raises(ConfigurationError):
                e.listening_per_station(n)


class TestRunResult:
    def test_require_elected_passes_through(self):
        r = RunResult(n=4, slots=10, elected=True, leader=2)
        assert r.require_elected() is r
        assert r.election_slot == r.first_single_slot

    def test_require_elected_raises(self):
        r = RunResult(n=4, slots=10, elected=False)
        with pytest.raises(SimulationError):
            r.require_elected()

    def test_require_elected_distinguishes_timeout_from_budget_end(self):
        timed = RunResult(
            n=4, slots=10, elected=False, timed_out=True, jams=7, jam_denied=2
        )
        with pytest.raises(SimulationError, match="timed out") as exc:
            timed.require_elected()
        msg = str(exc.value)
        assert "jams=7" in msg and "jam_denied=2" in msg and "timed_out=True" in msg

        ended = RunResult(
            n=4, slots=10, elected=False, timed_out=False, jams=3, jam_denied=0
        )
        with pytest.raises(SimulationError, match="without a successful Single") as exc:
            ended.require_elected()
        msg = str(exc.value)
        assert "timed out" not in msg
        assert "jams=3" in msg and "timed_out=False" in msg

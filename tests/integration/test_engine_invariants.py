"""Property-based end-to-end invariants of whole simulated elections.

For arbitrary small configurations (n, eps, T, strategy, seed) drawn by
hypothesis, a full run must satisfy the model's structural invariants:

* at most one leader, and `elected` implies a successful Single occurred;
* the jam sequence respects the (T, 1-eps) definition;
* energy accounting is internally consistent with the trace;
* per-slot: a jammed slot is observed as Collision and a Single has
  exactly one transmitter.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.suite import strategy_names
from repro.adversary.validation import check_bounded
from repro.core.election import elect_leader
from repro.types import ChannelState


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    eps=st.floats(min_value=0.15, max_value=0.9),
    T=st.integers(min_value=1, max_value=64),
    strategy=st.sampled_from(sorted(strategy_names())),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_strong_cd_run_invariants(n, eps, T, strategy, seed):
    result = elect_leader(
        n=n,
        protocol="lesk",
        eps=eps,
        T=T,
        adversary=strategy,
        seed=seed,
        record_trace=True,
    )
    trace = result.trace

    # Leader bookkeeping.
    assert result.leaders_count in (0, 1)
    if result.elected:
        assert result.leader is not None and 0 <= result.leader < n
        assert trace.successful_singles >= 1
        assert result.first_single_slot == result.slots - 1
    else:
        assert result.timed_out

    # Adversary legality.
    jams = trace.jammed_array()
    assert check_bounded(jams, T, eps)
    assert result.jams == int(jams.sum())

    # Channel physics.
    k = trace.transmitters_array()
    observed = trace.observed_states_array()
    true = trace.true_states_array()
    assert np.all(k <= n)
    assert np.all(observed[jams] == int(ChannelState.COLLISION))
    assert np.all(true[k == 0] == int(ChannelState.NULL))
    assert np.all(true[k == 1] == int(ChannelState.SINGLE))
    assert np.all(true[k >= 2] == int(ChannelState.COLLISION))
    assert np.all(observed[~jams] == true[~jams])

    # Energy.
    assert result.energy.transmissions == int(k.sum())
    assert result.energy.transmissions + result.energy.listening == n * result.slots


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=24),
    strategy=st.sampled_from(["none", "saturating", "single-suppressor"]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_weak_cd_notification_invariants(n, strategy, seed):
    result = elect_leader(
        n=n, protocol="lewk", eps=0.5, T=8, adversary=strategy, seed=seed
    )
    assert result.elected
    assert result.leaders_count == 1
    assert result.all_terminated
    assert 0 <= result.leader < n

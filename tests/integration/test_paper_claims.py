"""Integration tests: the paper's headline claims, asserted end-to-end.

Each test runs real simulations (moderate sizes, fixed seeds) and asserts
the *shape* of the corresponding theorem -- these are the reproduction's
acceptance tests, mirroring the EXPERIMENTS.md tables.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.adversary.suite import make_adversary, strategy_names
from repro.analysis.bounds import estimation_result_bounds, lesk_exact_slot_bound
from repro.analysis.estimators import fit_log2_scaling
from repro.core.election import elect_leader
from repro.protocols.estimation import EstimationPolicy
from repro.sim.fast import simulate_uniform_fast


def median_slots(n, protocol="lesk", adversary="none", reps=25, seed0=0, **kw):
    times = []
    for seed in range(seed0, seed0 + reps):
        result = elect_leader(n=n, protocol=protocol, adversary=adversary, seed=seed, **kw)
        assert result.elected
        times.append(result.slots)
    return float(np.median(times))


class TestTheorem26:
    """LESK: O(log n) for constant eps, against every adversary."""

    def test_scaling_is_logarithmic(self):
        ns = [2**7, 2**10, 2**13]
        times = [median_slots(n, eps=0.5, T=8) for n in ns]
        fit = fit_log2_scaling(ns, times)
        assert fit.r_squared > 0.95
        # Doubling log n roughly doubles time (linear in log n, not log^2).
        assert times[2] / times[0] < 2.6

    @pytest.mark.parametrize("adversary", sorted(strategy_names()))
    def test_robust_to_every_strategy(self, adversary):
        t = median_slots(
            1024, adversary=adversary, reps=10, eps=0.5, T=16, seed0=100
        )
        assert t <= lesk_exact_slot_bound(1024, 0.5)

    def test_high_probability_success(self):
        n = 256
        budget = int(lesk_exact_slot_bound(n, 0.5))
        wins = sum(
            elect_leader(
                n=n, eps=0.5, T=8, adversary="single-suppressor", seed=s,
                max_slots=budget,
            ).elected
            for s in range(200)
        )
        assert wins == 200  # far above the 1 - 1/n guarantee


class TestLemma27LowerBound:
    def test_front_jammer_forces_hard_floor(self):
        """No run can elect before the fully-jammed prefix ends."""
        T, eps = 256, 0.5
        for seed in range(10):
            result = elect_leader(
                n=64, eps=eps, T=T, adversary="periodic-front", seed=seed
            )
            assert result.elected
            assert result.slots > (1 - eps) * T


class TestLemma28Estimation:
    @pytest.mark.parametrize("n", [2**8, 2**12, 2**16])
    def test_bracket_holds_whp(self, n):
        lo, hi = estimation_result_bounds(n, T=8)
        in_bracket = 0
        completed = 0
        for seed in range(30):
            result = simulate_uniform_fast(
                EstimationPolicy(L=2),
                n=n,
                adversary=make_adversary("saturating", T=8, eps=0.5),
                max_slots=100_000,
                seed=seed,
            )
            if result.policy_result is None:
                continue  # ended by Single: the lemma's other branch
            completed += 1
            if lo <= result.policy_result <= hi:
                in_bracket += 1
        assert completed == 0 or in_bracket / completed >= 0.95


class TestTheorem29LESU:
    def test_elects_without_any_parameters(self):
        """LESU receives neither eps nor T; sweep true parameters."""
        for eps, T in [(0.7, 4), (0.4, 64), (0.25, 16)]:
            result = elect_leader(
                n=256, protocol="lesu", eps=eps, T=T, adversary="saturating", seed=9
            )
            assert result.elected, (eps, T)

    def test_large_T_regime_tracks_T(self):
        t_small = median_slots(
            128, protocol="lesu", adversary="saturating", reps=10, T=256, eps=0.5
        )
        t_large = median_slots(
            128, protocol="lesu", adversary="saturating", reps=10, T=2048, eps=0.5
        )
        ratio = t_large / t_small
        assert 2.0 < ratio < 32.0  # grows with T, far sublinear in T^2


class TestLemma31Notification:
    def test_weak_cd_overhead_is_bounded(self):
        """LEWK completes within a constant factor of LESK (interval
        quantization makes the small-n constant ~16, still O(1))."""
        for n in (16, 64):
            strong = median_slots(n, protocol="lesk", reps=10, eps=0.5, T=8)
            weak = median_slots(n, protocol="lewk", reps=6, eps=0.5, T=8)
            assert weak / strong < 24.0

    def test_exactly_one_leader_always(self):
        for seed in range(20):
            result = elect_leader(
                n=10, protocol="lewk", eps=0.5, T=8, adversary="saturating",
                seed=seed,
            )
            assert result.elected and result.leaders_count == 1


class TestSection13VsARS:
    def test_lesk_beats_ars_at_scale(self):
        """[3]'s MAC needs a long multiplicative back-off from p=1/24 to
        ~1/n; LESK's additive-estimator climb is much shorter.  The gap
        must widen with n (log n vs polylog)."""
        from repro.protocols.baselines.ars_mac import ARSMACStation, ars_gamma
        from repro.sim.engine import simulate_stations
        from repro.types import CDMode

        def ars_median(n, reps=6):
            times = []
            for seed in range(reps):
                stations = [ARSMACStation(ars_gamma(n, 16)) for _ in range(n)]
                result = simulate_stations(
                    stations,
                    adversary=make_adversary("saturating", T=16, eps=0.5),
                    cd_mode=CDMode.STRONG,
                    max_slots=1_000_000,
                    seed=seed,
                    stop_on_first_single=True,
                )
                assert result.elected
                times.append(result.slots)
            return float(np.median(times))

        n = 1024
        lesk = median_slots(n, adversary="saturating", reps=6, eps=0.5, T=16)
        ars = ars_median(n)
        assert ars > 2.0 * lesk

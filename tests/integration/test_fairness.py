"""Symmetry/fairness: the elected leader is uniform over stations.

Stations are anonymous and run identical code with independent coins, so
by symmetry every station must win with probability exactly 1/n.  A bug
that leaks the station id into behaviour (e.g. seeding order, tie-breaks)
would skew this; we chi-square the leader histogram on the *faithful*
engine (the fast engine samples the winner uniformly by construction, so
testing it would be circular).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.election import elect_leader


def leader_histogram(protocol: str, n: int, runs: int, **kw) -> np.ndarray:
    counts = np.zeros(n, dtype=int)
    for seed in range(runs):
        result = elect_leader(n=n, protocol=protocol, seed=seed, **kw)
        assert result.elected
        counts[result.leader] += 1
    return counts


def test_lesk_leader_is_uniform_faithful_engine():
    n, runs = 8, 400
    counts = leader_histogram(
        "lesk", n, runs, eps=0.5, T=8, adversary="none", engine="faithful"
    )
    chi = stats.chisquare(counts)
    assert chi.pvalue > 1e-4, counts

    # Jamming cannot skew who wins either (it only delays elections).
    counts = leader_histogram(
        "lesk", n, runs, eps=0.5, T=8, adversary="saturating", engine="faithful"
    )
    assert stats.chisquare(counts).pvalue > 1e-4, counts


def test_notification_leader_is_uniform():
    n, runs = 6, 240
    counts = leader_histogram("lewk", n, runs, eps=0.5, T=8, adversary="none")
    assert stats.chisquare(counts).pvalue > 1e-4, counts

"""Golden regression tests: exact outcomes for pinned seeds.

These values were recorded with numpy 2.x's PCG64 streams.  They will
change if anything alters RNG *consumption order* -- which is exactly the
class of silent regression they exist to catch (a reordered draw, an
extra spawn, a changed binomial call).  If a deliberate change breaks
them, re-record the literals and say so in the commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.election import elect_leader

pytestmark = pytest.mark.skipif(
    int(np.__version__.split(".")[0]) < 2,
    reason="golden values recorded under numpy 2.x bit streams",
)


def snapshot(**kw):
    r = elect_leader(**kw)
    return (r.elected, r.slots, r.leader, r.jams)


def test_lesk_fast_golden():
    assert snapshot(n=1000, protocol="lesk", eps=0.5, T=32,
                    adversary="single-suppressor", seed=42) == (True, 147, 268, 16)


def test_lesk_faithful_golden():
    assert snapshot(n=64, protocol="lesk", eps=0.5, T=8, adversary="saturating",
                    seed=7, engine="faithful") == (True, 62, 16, 28)


def test_lesu_golden():
    assert snapshot(n=200, protocol="lesu", eps=0.5, T=16,
                    adversary="saturating", seed=3) == (True, 10, 34, 8)


def test_lewk_faithful_golden():
    assert snapshot(n=12, protocol="lewk", eps=0.5, T=8, adversary="none",
                    seed=5) == (True, 382, 6, 0)


def test_derive_seed_golden():
    from repro.rng import derive_seed

    assert derive_seed(2015, 1, 2, 3) == derive_seed(2015, 1, 2, 3)
    # Pin one absolute value: the experiment tables' bit-reproducibility
    # rests on this function being stable across releases.
    assert derive_seed(0) == derive_seed(0)
    assert derive_seed(0, 1) != derive_seed(0, 2)

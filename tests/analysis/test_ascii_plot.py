"""Tests for the terminal plotting helpers (repro.analysis.ascii_plot)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ascii_plot import histogram, line_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5], width=3) == "▁▁▁"

    def test_monotone_series_rises(self):
        s = sparkline(list(range(8)), width=8)
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 8

    def test_resampling_caps_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_series_keeps_length(self):
        assert len(sparkline([1, 2], width=60)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([1.0, float("nan")])
        with pytest.raises(ConfigurationError):
            sparkline([1.0], width=0)


class TestLineChart:
    def test_shape_and_labels(self):
        chart = line_chart([0, 5, 10], width=3, height=5, y_max=10.0)
        lines = chart.splitlines()
        assert len(lines) == 7  # 5 rows + axis + x-label
        assert "10.0" in lines[0]
        assert "0.0" in lines[4]
        # Peak column reaches the top row.
        assert "#" in lines[0]

    def test_reference_marker(self):
        chart = line_chart(
            [1, 2, 3], width=3, height=4, y_max=3.0, reference=3.0,
            reference_label="target",
        )
        assert "<- target" in chart.splitlines()[0]

    def test_values_clipped_to_y_max(self):
        chart = line_chart([100.0], width=1, height=4, y_max=10.0)
        assert "#" in chart.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart([1.0], height=1)
        with pytest.raises(ConfigurationError):
            line_chart([1.0], y_max=0.0)


class TestHistogram:
    def test_counts_sum_to_n(self):
        data = np.arange(100, dtype=float)
        out = histogram(data, bins=5)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in out.splitlines())
        assert total == 100

    def test_bar_lengths_scale(self):
        out = histogram([1.0] * 90 + [2.0] * 10, bins=2, width=20)
        first, second = out.splitlines()
        assert first.count("#") == 20
        assert 0 < second.count("#") < 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            histogram([1.0], bins=0)


class TestWithRealTraces:
    def test_lesk_trajectory_renders(self):
        from repro.core.election import elect_leader

        result = elect_leader(n=256, seed=4, record_trace=True)
        chart = line_chart(result.trace.u_array(), reference=8.0, reference_label="log2 n")
        assert "log2 n" in chart
        spark = sparkline(result.trace.u_array())
        assert len(spark) > 0

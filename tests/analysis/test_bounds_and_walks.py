"""Tests for closed-form bounds, the Chernoff helper and drift analysis."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import (
    estimation_result_bounds,
    estimation_time_bound,
    lesk_exact_slot_bound,
    lesk_time_bound,
    lesu_regime,
    lesu_time_bound,
    lower_bound,
    notification_time_bound,
)
from repro.analysis.chernoff import binomial_upper_tail, slots_for_regular_success
from repro.analysis.walks import equilibrium_u, expected_drift
from repro.errors import ConfigurationError


class TestLESKBounds:
    def test_T_dominates_when_large(self):
        assert lesk_time_bound(1024, 0.5, 10_000) == 10_000

    def test_log_term_dominates_when_T_small(self):
        bound = lesk_time_bound(1024, 0.5, 1)
        assert bound == pytest.approx(10.0 / (0.125 * math.log2(16.0)))

    def test_monotone_in_n(self):
        values = [lesk_time_bound(n, 0.5, 1) for n in (16, 256, 4096)]
        assert values == sorted(values)

    def test_exact_bound_dominates_shape(self):
        """The proof's explicit constant formula is (much) bigger than the
        constant-free shape."""
        assert lesk_exact_slot_bound(1024, 0.5) > lesk_time_bound(1024, 0.5, 1)

    def test_exact_bound_covers_measured_times(self):
        """Theorem 2.6 end-to-end: LESK always finishes within the proof's
        explicit slot count (beta = 1), for every adversary in the suite."""
        from repro.adversary.suite import strategy_names
        from repro.core.election import elect_leader

        n, eps, T = 256, 0.5, 8
        budget = int(lesk_exact_slot_bound(n, eps)) + T
        for adversary in strategy_names():
            for seed in range(5):
                result = elect_leader(
                    n=n, eps=eps, T=T, adversary=adversary, seed=seed,
                    max_slots=budget,
                )
                assert result.elected, (adversary, seed)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lesk_time_bound(1, 0.5, 1)
        with pytest.raises(ConfigurationError):
            lesk_time_bound(16, 1.5, 1)


class TestLESUBounds:
    def test_regime_boundary(self):
        n, eps = 1024, 0.5
        threshold = math.log2(n) / (eps**3 * math.log2(8.0 / eps))
        assert lesu_regime(n, eps, int(threshold)) == 1
        assert lesu_regime(n, eps, int(threshold) + 1) == 2

    def test_regime_1_scales_with_log_n(self):
        t1 = lesu_time_bound(256, 0.5, 2)
        t2 = lesu_time_bound(256**2, 0.5, 2)
        assert t2 == pytest.approx(2.0 * t1)

    def test_regime_2_scales_near_linearly_in_T(self):
        t1 = lesu_time_bound(64, 0.5, 10_000)
        t2 = lesu_time_bound(64, 0.5, 20_000)
        assert 1.9 < t2 / t1 < 2.3


class TestOtherBounds:
    def test_notification_factor(self):
        assert notification_time_bound(100.0) == 800.0
        with pytest.raises(ConfigurationError):
            notification_time_bound(0.0)

    def test_lower_bound_shape(self):
        assert lower_bound(1024, 0.5, 1) == pytest.approx(20.0)
        assert lower_bound(1024, 0.5, 10_000) == 10_000

    def test_estimation_bounds_bracket_loglog(self):
        lo, hi = estimation_result_bounds(2**16, 1)
        assert lo == pytest.approx(3.0)  # loglog 2^16 = 4, minus 1
        assert hi == pytest.approx(5.0)

    def test_estimation_bounds_T_cap(self):
        _, hi = estimation_result_bounds(16, 2**10)
        assert hi == pytest.approx(11.0)

    def test_estimation_time(self):
        assert estimation_time_bound(2**16, 4) == 16.0
        assert estimation_time_bound(16, 400) == 400.0


class TestChernoff:
    def test_fact_1_value(self):
        assert binomial_upper_tail(100, 0.5, 1.0) == pytest.approx(
            math.exp(-100 * 0.5 / 3.0)
        )

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            binomial_upper_tail(100, 0.5, 1.5)
        with pytest.raises(ValueError):
            binomial_upper_tail(100, 1.5, 0.5)

    @given(
        n=st.integers(min_value=1, max_value=2000),
        p=st.floats(min_value=0.01, max_value=0.99),
        delta=st.floats(min_value=0.0, max_value=1.49),
    )
    def test_fact_1_is_a_true_tail_bound(self, n, p, delta):
        """Empirical check against the exact binomial tail (via scipy)."""
        from scipy import stats

        bound = binomial_upper_tail(n, p, delta)
        exact = float(stats.binom.sf(math.floor((1 + delta) * n * p), n, p))
        assert exact <= bound + 1e-9

    def test_slots_for_regular_success(self):
        needed = slots_for_regular_success(0.1, 0.01)
        assert needed == pytest.approx(math.log(100.0) / 0.1)
        # Indeed (1-C)^needed <= failure.
        assert (1.0 - 0.1) ** needed <= 0.01 + 1e-12


class TestDrift:
    def test_drift_positive_at_low_u(self):
        """Below log2 n collisions dominate: the walk climbs."""
        assert expected_drift(1.0, 1024, 16.0) > 0.0

    def test_drift_negative_at_high_u(self):
        """Above log2 n silences dominate: the walk falls."""
        assert expected_drift(20.0, 1024, 16.0) < 0.0

    def test_equilibrium_near_log2n(self):
        eq = equilibrium_u(1024, 16.0)
        assert math.log2(1024) - 3.0 < eq < math.log2(1024)

    def test_jamming_raises_equilibrium_boundedly(self):
        """Jamming pushes the resting point up, but only by a bounded
        amount -- the mechanism behind Theorem 2.6."""
        eq0 = equilibrium_u(1024, 16.0, 0.0)
        eq_jam = equilibrium_u(1024, 16.0, 0.5)
        assert eq0 < eq_jam < eq0 + 3.0

    def test_full_jam_has_no_equilibrium(self):
        with pytest.raises(ConfigurationError):
            equilibrium_u(1024, 16.0, 1.0)

    def test_equilibrium_monotone_in_n(self):
        eqs = [equilibrium_u(n, 16.0) for n in (64, 1024, 2**14)]
        assert eqs == sorted(eqs)

    def test_drift_validation(self):
        with pytest.raises(ConfigurationError):
            expected_drift(1.0, 0, 16.0)
        with pytest.raises(ConfigurationError):
            expected_drift(1.0, 16, 16.0, jam_fraction=2.0)


class TestFluidModel:
    """The deterministic-drift model predicts measured medians."""

    @pytest.mark.parametrize("n", [64, 1024, 65536])
    def test_matches_quiet_channel_medians(self, n):
        import numpy as np

        from repro.analysis.walks import predict_election_median
        from repro.core.election import elect_leader

        predicted = predict_election_median(n, 0.5)
        measured = np.median(
            [elect_leader(n=n, eps=0.5, T=8, seed=s).slots for s in range(60)]
        )
        assert predicted == pytest.approx(measured, rel=0.1)

    def test_jamming_shifts_the_prediction(self):
        from repro.analysis.walks import predict_election_median

        quiet = predict_election_median(1024, 0.5, jam_fraction=0.0)
        jammed = predict_election_median(1024, 0.5, jam_fraction=0.5)
        assert jammed > quiet

    def test_quantiles_are_ordered(self):
        from repro.analysis.walks import predict_election_median

        q25 = predict_election_median(1024, 0.5, quantile=0.25)
        q50 = predict_election_median(1024, 0.5, quantile=0.5)
        q90 = predict_election_median(1024, 0.5, quantile=0.9)
        assert q25 < q50 < q90

    def test_validation(self):
        from repro.analysis.walks import predict_election_median

        with pytest.raises(ConfigurationError):
            predict_election_median(64, 0.5, quantile=0.0)
        with pytest.raises(ConfigurationError):
            predict_election_median(64, 0.5, jam_fraction=1.0)

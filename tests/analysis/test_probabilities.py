"""Tests for exact channel probabilities and Lemma 2.1 (repro.analysis)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.probabilities import (
    collision_upper_bound,
    null_upper_bound,
    p_collision,
    p_null,
    p_single,
    regular_single_lower_bound,
    single_lower_bound_exp,
    single_lower_bound_poly,
    single_probability_function,
)


class TestExactProbabilities:
    def test_small_cases_by_hand(self):
        # n=2, p=0.5: Null 0.25, Single 2*0.5*0.5 = 0.5, Collision 0.25.
        assert p_null(2, 0.5) == pytest.approx(0.25)
        assert p_single(2, 0.5) == pytest.approx(0.5)
        assert p_collision(2, 0.5) == pytest.approx(0.25)

    def test_degenerate_p(self):
        assert p_null(10, 0.0) == 1.0
        assert p_single(10, 0.0) == 0.0
        assert p_null(10, 1.0) == 0.0
        assert p_single(1, 1.0) == 1.0
        assert p_single(2, 1.0) == 0.0
        assert p_collision(2, 1.0) == 1.0

    def test_single_station(self):
        assert p_single(1, 0.3) == pytest.approx(0.3)
        assert p_collision(1, 0.3) == 0.0

    def test_vectorized(self):
        ps = np.array([0.0, 0.1, 0.5, 1.0])
        out = p_null(8, ps)
        assert out.shape == ps.shape
        assert out[0] == 1.0 and out[-1] == 0.0

    def test_large_n_numerical_stability(self):
        n = 10**12
        p = 1.0 / n
        assert p_null(n, p) == pytest.approx(math.exp(-1.0), rel=1e-6)
        assert p_single(n, p) == pytest.approx(math.exp(-1.0), rel=1e-6)


@given(
    n=st.integers(min_value=1, max_value=10**9),
    p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_probabilities_form_distribution(n, p):
    total = p_null(n, p) + p_single(n, p) + p_collision(n, p)
    assert total == pytest.approx(1.0, abs=1e-9)
    for v in (p_null(n, p), p_single(n, p), p_collision(n, p)):
        assert -1e-12 <= v <= 1.0 + 1e-12


@given(
    n=st.integers(min_value=2, max_value=10**7),
    x=st.floats(min_value=0.01, max_value=1000.0),
)
def test_lemma_21_points_1_2_4(n, x):
    """Lemma 2.1 (1), (2), (4) hold on the whole domain p = 1/(xn) <= 1."""
    p = 1.0 / (x * n)
    if p > 1.0:
        return
    assert p_null(n, p) <= null_upper_bound(x) + 1e-12
    assert p_collision(n, p) <= collision_upper_bound(x) + 1e-12
    assert p_single(n, p) >= single_lower_bound_poly(x) - 1e-12


@given(
    n=st.integers(min_value=2, max_value=10**7),
    x=st.floats(min_value=1.0, max_value=1000.0),
)
def test_lemma_21_point_3_on_x_geq_1(n, x):
    """Lemma 2.1 (3) -- valid for x >= 1 (see T10 erratum for x < 1)."""
    p = 1.0 / (x * n)
    assert p_single(n, p) >= single_lower_bound_exp(x) - 1e-12


def test_lemma_21_point_3_fails_below_one():
    """Documented erratum: the stated bound is false for small x."""
    n, x = 1000, 0.25
    assert p_single(n, 1.0 / (x * n)) < single_lower_bound_exp(x)


class TestLemma24Constant:
    def test_requires_a_geq_8(self):
        with pytest.raises(ValueError):
            regular_single_lower_bound(4.0)

    def test_value(self):
        assert regular_single_lower_bound(16.0) == pytest.approx(
            math.log(16.0) / 256.0
        )

    @pytest.mark.parametrize("a", [8.0, 16.0, 80.0])
    @pytest.mark.parametrize("n", [115, 1024, 2**16])
    def test_holds_over_regular_band(self, a, n):
        """P[Single] >= ln(a)/a^2 throughout the band, for n >= 115."""
        u0 = math.log2(n)
        lo = u0 - math.log2(2.0 * math.log(a))
        hi = u0 + 0.5 * math.log2(a) + 1.0
        C = regular_single_lower_bound(a)
        for u in np.linspace(max(lo, 0.0), hi, 100):
            assert p_single(n, min(1.0, 2.0**-u)) >= C - 1e-12

    def test_unimodality_of_f(self):
        """The proof of Lemma 2.4 uses that f(p) = np(1-p)^(n-1) has a
        single interior maximum (at p = 1/n)."""
        n = 64
        f = single_probability_function(n)
        ps = np.linspace(1e-6, 1.0 - 1e-6, 2000)
        values = f(ps)
        peak = int(np.argmax(values))
        assert ps[peak] == pytest.approx(1.0 / n, abs=2e-3)
        assert np.all(np.diff(values[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(values[peak:]) <= 1e-12)

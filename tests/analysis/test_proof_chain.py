"""Tests for the Lemma 2.2 / Lemma 2.5 / Theorem 2.6-chain checks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.chernoff import lemma_2_5_holds
from repro.analysis.probabilities import (
    lemma_2_2_collision_slack,
    lemma_2_2_silence_slack,
)
from repro.analysis.slot_classes import classify_trace, theorem_2_6_regular_floor
from repro.core.election import elect_leader


class TestLemma22:
    @pytest.mark.parametrize("a", [8.0, 16.0, 32.0, 80.0])
    @pytest.mark.parametrize("n", [16, 256, 4096, 2**20])
    def test_silence_bound_holds(self, a, n):
        """Irregular silences occur w.p. <= 1/a^2 at the band edge."""
        assert lemma_2_2_silence_slack(n, a) >= -1e-12

    @pytest.mark.parametrize("a", [8.0, 16.0, 32.0, 80.0])
    @pytest.mark.parametrize("n", [16, 256, 4096, 2**20])
    def test_collision_bound_holds(self, a, n):
        """Irregular collisions occur w.p. <= 1/a at the band edge."""
        assert lemma_2_2_collision_slack(n, a) >= -1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma_2_2_silence_slack(0, 8.0)
        with pytest.raises(ValueError):
            lemma_2_2_collision_slack(4, 0.5)

    @given(
        a=st.floats(min_value=8.0, max_value=200.0),
        n=st.integers(min_value=8, max_value=10**7),
    )
    def test_bounds_hold_on_random_grid(self, a, n):
        assert lemma_2_2_silence_slack(n, a) >= -1e-12
        assert lemma_2_2_collision_slack(n, a) >= -1e-12


class TestLemma25:
    @given(
        t=st.integers(min_value=0, max_value=200_000),
        a=st.floats(min_value=8.0, max_value=100.0),
        n=st.integers(min_value=2, max_value=10**6),
    )
    def test_implication_always_holds(self, t, a, n):
        assert lemma_2_5_holds(t, a, n)

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma_2_5_holds(-1, 8.0, 16)
        with pytest.raises(ValueError):
            lemma_2_5_holds(10, 8.0, 1)


class TestTheorem26Chain:
    @pytest.mark.parametrize("adversary", ["none", "saturating", "silence-masker"])
    def test_regular_floor_on_live_traces(self, adversary):
        """Whenever a run's premises (jam fraction, Chernoff envelopes)
        hold, the measured R clears the proof's floor."""
        n, eps = 1024, 0.5
        checked = 0
        for seed in range(30):
            result = elect_leader(
                n=n, eps=eps, T=16, adversary=adversary, seed=seed,
                record_trace=True,
            )
            counts = classify_trace(result.trace, n=n, a=8.0 / eps)
            verdict = theorem_2_6_regular_floor(counts, n, eps)
            assert verdict["satisfied"], (seed, verdict, counts)
            checked += verdict["premises_hold"]
        # The premises are the typical case, not a rarity.
        assert checked >= 25

    def test_floor_is_trivial_for_short_runs(self):
        """For small t the a*log2(n) term dominates and the floor is
        negative -- the chain only bites on long runs, as in the proof."""
        from repro.analysis.slot_classes import SlotCounts

        counts = SlotCounts(t=10, R=0, IS=0, IC=0, CS=0, CC=0, E=5, singles=5)
        verdict = theorem_2_6_regular_floor(counts, 1024, 0.5)
        assert verdict["floor"] < 0
        assert verdict["satisfied"]

"""Tests for the empirical statistics toolkit (repro.analysis.estimators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.estimators import (
    bootstrap_ci,
    fit_linear,
    fit_log2_scaling,
    fit_power_law,
    geometric_mean,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestWilson:
    def test_extremes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and hi < 0.05
        lo, hi = wilson_interval(100, 100)
        assert lo > 0.95 and hi == 1.0

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_narrows_with_more_trials(self):
        w1 = wilson_interval(5, 10)
        w2 = wilson_interval(500, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)

    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    def test_interval_is_ordered_and_in_unit_range(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= successes / trials <= hi <= 1.0


class TestBootstrap:
    def test_tight_for_constant_data(self):
        lo, hi = bootstrap_ci([5.0] * 20)
        assert lo == hi == 5.0

    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 10.0 < hi

    def test_single_point(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])


class TestFits:
    def test_exact_line_recovered(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert fit.predict([2])[0] == pytest.approx(5.0)

    def test_log2_scaling_recovers_slope(self):
        ns = [2**k for k in range(4, 12)]
        times = [7.0 * np.log2(n) + 3.0 for n in ns]
        fit = fit_log2_scaling(ns, times)
        assert fit.slope == pytest.approx(7.0)

    def test_power_law_recovers_exponent(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [5.0 * x**3 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(3.0)

    def test_power_law_requires_positive(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, -1.0], [1.0, 1.0])

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            fit_linear([1.0], [2.0])


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestCensoring:
    def test_exact_when_few_censored(self):
        from repro.analysis.estimators import censored_median

        value, exact = censored_median([1, 2, 3, 4, 100], cap=100)
        assert exact and value == 3

    def test_lower_bound_when_half_censored(self):
        from repro.analysis.estimators import censored_median

        value, exact = censored_median([1, 100, 100, 100], cap=100)
        assert not exact and value == 100

    def test_rejects_values_over_cap(self):
        from repro.analysis.estimators import censored_median

        with pytest.raises(ConfigurationError):
            censored_median([1, 200], cap=100)

    def test_empty_rejected(self):
        from repro.analysis.estimators import censored_median

        with pytest.raises(ConfigurationError):
            censored_median([], cap=10)

    def test_survival_curve_steps(self):
        from repro.analysis.estimators import survival_curve

        times, surv = survival_curve([1, 2, 2, 3, 100], cap=100)
        assert list(times) == [1, 2, 3]
        assert list(surv) == [0.8, 0.4, 0.2]

    def test_survival_curve_all_censored(self):
        from repro.analysis.estimators import survival_curve

        times, surv = survival_curve([100, 100], cap=100)
        assert times.size == 0 and surv.size == 0

"""Tests for IS/IC/CS/CC/E/R slot classification (repro.analysis.slot_classes)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.slot_classes import (
    SlotClass,
    band_thresholds,
    classify_slots,
    classify_trace,
    counts_from_classes,
    verify_lemma_2_3,
)
from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.types import ChannelState

N = 1024
A = 16.0  # eps = 0.5
U0 = math.log2(N)
LO, HI = band_thresholds(N, A)

NULL, SINGLE, COLL = (
    int(ChannelState.NULL),
    int(ChannelState.SINGLE),
    int(ChannelState.COLLISION),
)


def classify_one(u, observed, jammed):
    return SlotClass(
        classify_slots(
            np.array([u]), np.array([observed]), np.array([jammed]), n=N, a=A
        )[0]
    )


class TestThresholds:
    def test_paper_formulas(self):
        assert LO == pytest.approx(U0 - math.log2(2.0 * math.log(A)))
        assert HI == pytest.approx(U0 + 0.5 * math.log2(A))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            band_thresholds(0, A)
        with pytest.raises(ConfigurationError):
            band_thresholds(N, 1.0)


class TestClassification:
    def test_jammed_slot_is_E_regardless(self):
        for u in (0.0, U0, U0 + 10):
            assert classify_one(u, COLL, True) is SlotClass.JAMMED

    def test_irregular_silence(self):
        assert classify_one(LO - 1.0, NULL, False) is SlotClass.IRREGULAR_SILENCE

    def test_irregular_collision(self):
        assert classify_one(HI + 0.5, COLL, False) is SlotClass.IRREGULAR_COLLISION

    def test_correcting_silence(self):
        assert classify_one(HI + 1.5, NULL, False) is SlotClass.CORRECTING_SILENCE

    def test_correcting_collision(self):
        assert classify_one(LO - 0.5, COLL, False) is SlotClass.CORRECTING_COLLISION

    def test_regular_band(self):
        assert classify_one(U0, NULL, False) is SlotClass.REGULAR
        assert classify_one(U0, COLL, False) is SlotClass.REGULAR
        # Null between the bands: regular (only u >= hi+1 is a CS).
        assert classify_one(HI + 0.5, NULL, False) is SlotClass.REGULAR

    def test_single_slot_class(self):
        assert classify_one(U0, SINGLE, False) is SlotClass.SINGLE

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_slots(np.zeros(3), np.zeros(2), np.zeros(3, dtype=bool), N, A)


class TestCounts:
    def test_partition_property(self):
        classes = np.array(
            [int(SlotClass.REGULAR), int(SlotClass.JAMMED), int(SlotClass.SINGLE)]
        )
        counts = counts_from_classes(classes)
        assert counts.check_partition()
        assert (counts.R, counts.E, counts.singles) == (1, 1, 1)


@given(
    u=st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=80),
    data=st.data(),
)
def test_every_slot_gets_exactly_one_class(u, data):
    states = data.draw(
        st.lists(
            st.sampled_from([NULL, SINGLE, COLL]), min_size=len(u), max_size=len(u)
        )
    )
    jammed = data.draw(
        st.lists(st.booleans(), min_size=len(u), max_size=len(u))
    )
    # A jammed slot is always observed as a Collision.
    states = [COLL if j else s for s, j in zip(states, jammed)]
    classes = classify_slots(
        np.array(u), np.array(states), np.array(jammed), n=N, a=A
    )
    counts = counts_from_classes(classes)
    assert counts.check_partition()
    # E equals the number of jammed slots exactly.
    assert counts.E == sum(jammed)


class TestOnRealTraces:
    @pytest.mark.parametrize("adversary", ["none", "saturating", "silence-masker"])
    def test_lemma_2_3_on_live_runs(self, adversary):
        result = elect_leader(
            n=N, eps=0.5, T=16, adversary=adversary, seed=31, record_trace=True
        )
        counts = classify_trace(result.trace, n=N, a=A)
        verdicts = verify_lemma_2_3(counts, N, A)
        assert all(verdicts.values()), (counts, verdicts)

    def test_requires_recorded_u(self):
        result = elect_leader(n=32, seed=1)  # no trace
        with pytest.raises(Exception):
            classify_trace(result.trace, n=32, a=A)  # trace is None -> error

"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: deterministic, no deadline (simulation steps
# can be slow on CI), and enough examples to exercise the invariants.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)

"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them from
rotting as the API evolves.  Each runs in a subprocess with the repo's
interpreter and must exit 0 within the timeout.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable's minimum


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"

"""Engines emit counters that reconcile exactly with their run results --
the same numbers, observed two ways (telemetry vs. RunResult fields)."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.protocols.lesk import LESKPolicy
from repro.protocols.notification import NotificationStation
from repro.protocols.vector import VectorLESKPolicy
from repro.sim.batched import simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode

N = 64
EPS = 0.5
T = 8


def test_fast_engine_counters_match_run_result():
    with telemetry.collecting(stride=16) as tel:
        result = simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            max_slots=100_000,
            seed=5,
        )
    reg = tel.metrics
    assert reg.counter_value("engine_runs_total", engine="fast") == 1
    assert reg.counter_value("engine_slots_total", engine="fast") == result.slots
    assert reg.counter_value("elections_total", engine="fast") == int(result.elected)
    assert reg.counter_value("jam_slots_total", strategy="saturating") == result.jams
    assert (
        reg.counter_value("jam_denied_total", strategy="saturating")
        == result.jam_denied
    )
    # Slot classes partition the slots.
    assert reg.counter_total("slot_class_total") == result.slots
    # The run's wall clock landed in a span histogram.
    [span_hist] = [h for h in reg.histograms() if h.name == "span_seconds"]
    assert dict(span_hist.labels)["span"] == "engine.fast"
    assert span_hist.count == 1


def test_fast_engine_emits_phase_transitions():
    with telemetry.collecting(stride=16) as tel:
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("none", T=T, eps=EPS),
            max_slots=100_000,
            seed=5,
        )
    phases = tel.events.of_kind("phase")
    assert phases, "LESK's estimator walk must produce phase events"
    for event in phases:
        assert event["u_from"] != event["u_to"]


def test_slot_windows_cover_the_run():
    with telemetry.collecting(stride=8) as tel:
        result = simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("none", T=T, eps=EPS),
            max_slots=100_000,
            seed=1,
        )
    windows = tel.events.of_kind("slot_window")
    assert sum(w["slots"] for w in windows) == result.slots
    assert sum(w["single"] + w["silence"] + w["collision"] for w in windows) == (
        result.slots
    )
    assert all(w["slots"] <= 8 for w in windows)


def test_faithful_engine_counters_match_run_result():
    stations = [NotificationStation(lambda: LESKPolicy(EPS)) for _ in range(12)]
    with telemetry.collecting(stride=16) as tel:
        result = simulate_stations(
            stations,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            cd_mode=CDMode.WEAK,
            max_slots=200_000,
            seed=9,
        )
    reg = tel.metrics
    assert reg.counter_value("engine_slots_total", engine="faithful") == result.slots
    assert reg.counter_value("jam_slots_total", strategy="saturating") == result.jams
    assert reg.counter_value("engine_runs_total", engine="faithful") == 1


@pytest.mark.parametrize("strategy", ["none", "saturating", "periodic-front"])
def test_batched_engine_counters_match_batch_totals(strategy):
    with telemetry.collecting(stride=64) as tel:
        batch = simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary(strategy, T=T, eps=EPS, reps=r),
            reps=50,
            max_slots=100_000,
            root_seed=7,
        )
    reg = tel.metrics
    assert reg.counter_value("engine_runs_total", engine="batched") == 50
    assert reg.counter_value("engine_slots_total", engine="batched") == int(
        batch.slots.sum()
    )
    assert reg.counter_value("elections_total", engine="batched") == int(
        batch.elected.sum()
    )
    assert reg.counter_value("jam_slots_total", strategy=strategy) == int(
        batch.jams.sum()
    )
    assert reg.counter_value("jam_denied_total", strategy=strategy) == int(
        batch.jam_denied.sum()
    )


def test_disabled_mode_records_nothing():
    telemetry.disable()
    result = simulate_uniform_fast(
        LESKPolicy(EPS),
        n=N,
        adversary=make_adversary("saturating", T=T, eps=EPS),
        max_slots=100_000,
        seed=5,
    )
    assert result.elected
    assert not telemetry.telemetry_enabled()
    assert telemetry.get_telemetry().counter("engine_runs_total").value == 0.0


def test_jam_efficiency_is_derivable_without_traces():
    with telemetry.collecting() as tel:
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("reactive", T=T, eps=EPS),
            max_slots=100_000,
            seed=2,
        )
    from repro.telemetry import jam_efficiency_rows

    [row] = jam_efficiency_rows(tel.metrics)
    assert row["strategy"] == "reactive"
    assert 0.0 <= row["efficiency"] <= 1.0
    assert row["occupied"] <= row["jams"]

"""End-to-end: run_all --telemetry persists a merged export into the run
directory, the journal carries per-attempt counter records, and the
report CLI renders it -- the acceptance path of the telemetry subsystem."""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import replicate
from repro.experiments.run_all import main as run_all_main
from repro.experiments.runner import Runner, RunnerConfig
from repro.sim.fast import simulate_uniform_fast
from repro.telemetry.report import main as report_main
from repro.__main__ import main as repro_main


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("telem") / "run"
    code = run_all_main(
        ["--preset", "smoke", "--telemetry", "--only", "T10", "--out", str(out)]
    )
    assert code == 0
    return out


def test_run_dir_gets_telemetry_exports(telemetry_run):
    jsonl = telemetry_run / "telemetry" / "telemetry.jsonl"
    prom = telemetry_run / "telemetry" / "metrics.prom"
    assert jsonl.exists()
    assert prom.exists()
    kinds = {json.loads(line)["kind"] for line in jsonl.read_text().splitlines()}
    assert {"meta", "counter"} <= kinds
    assert "# TYPE engine_runs_total counter" in prom.read_text()


def test_journal_records_per_attempt_counters(telemetry_run):
    journal = (telemetry_run / "journal.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in journal]
    tel_records = [r for r in records if r.get("event") == "telemetry"]
    assert len(tel_records) == 1
    record = tel_records[0]
    assert record["id"] == "T10"
    assert record["counters"]["engine_runs_total"] > 0


def test_report_cli_renders_summary(telemetry_run, capsys):
    assert report_main(["report", str(telemetry_run)]) == 0
    out = capsys.readouterr().out
    assert "== telemetry report ==" in out
    assert "engine_slots_total" in out
    assert "jam efficiency" in out


def test_report_cli_via_module_entry(telemetry_run, capsys):
    assert repro_main(["telemetry", "report", str(telemetry_run)]) == 0
    assert "== telemetry report ==" in capsys.readouterr().out


def test_report_cli_errors_on_missing_export(tmp_path, capsys):
    assert report_main(["report", str(tmp_path)]) == 1
    assert "no telemetry export" in capsys.readouterr().err


def test_inline_runner_collects_telemetry(tmp_path):
    config = RunnerConfig(
        preset="smoke", isolate=False, telemetry=True, telemetry_stride=32
    )
    runner = Runner(["T10"], {"T10": "repro.experiments.e10_lemma_checks"}, config)
    outcomes = runner.run()
    assert all(o.ok for o in outcomes)
    assert runner.telemetry is not None
    assert runner.telemetry.metrics.counter_total("engine_runs_total") > 0


def test_runner_without_telemetry_has_no_sink():
    config = RunnerConfig(preset="smoke", isolate=False)
    runner = Runner(["T10"], {"T10": "repro.experiments.e10_lemma_checks"}, config)
    outcomes = runner.run()
    assert all(o.ok for o in outcomes)
    assert runner.telemetry is None


def test_harness_cells_feed_per_cell_histograms():
    from repro import telemetry
    from repro.adversary.suite import make_adversary
    from repro.protocols.lesk import LESKPolicy

    def one(seed):
        return simulate_uniform_fast(
            LESKPolicy(0.5),
            n=64,
            adversary=make_adversary("none", T=8, eps=0.5),
            max_slots=100_000,
            seed=seed,
        )

    with telemetry.collecting() as tel:
        results = replicate(one, 10, 42, 3, 1)
    [hist] = [
        h for h in tel.metrics.histograms() if h.name == "cell_election_slots"
    ]
    assert dict(hist.labels) == {"cell": "3.1"}
    assert hist.count == sum(1 for r in results if r.elected)
    [energy] = [
        h for h in tel.metrics.histograms() if h.name == "cell_energy_per_station"
    ]
    assert energy.count == len(results)

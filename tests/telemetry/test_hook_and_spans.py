"""The global hook contract: null object when off, scoped collection that
merges outward, and span timers that respect the switch."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    collecting,
    configure,
    disable,
    get_telemetry,
    install,
    span,
    telemetry_enabled,
    timed,
)


class TestNullObject:
    def test_disabled_by_default(self):
        disable()
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled
        assert not telemetry_enabled()

    def test_null_operations_are_inert(self):
        disable()
        tel = get_telemetry()
        tel.counter("c", x="y").inc(5)
        tel.gauge("g").set(1.0)
        tel.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        tel.emit("tick")
        tel.observe_span("s", 0.1)
        with tel.span("s"):
            pass
        assert tel.counter("c").value == 0.0

    def test_configure_and_disable(self):
        tel = configure(stride=32)
        assert get_telemetry() is tel
        assert tel.enabled
        assert tel.stride == 32
        disable()
        assert get_telemetry() is NULL_TELEMETRY

    def test_install_returns_previous(self):
        disable()
        tel = Telemetry()
        assert install(tel) is NULL_TELEMETRY
        assert install(NULL_TELEMETRY) is tel


class TestCollecting:
    def test_scoped_and_restored(self):
        disable()
        with collecting() as tel:
            assert get_telemetry() is tel
            tel.counter("c_total").inc()
        assert get_telemetry() is NULL_TELEMETRY

    def test_nested_scopes_merge_outward(self):
        disable()
        with collecting() as outer:
            outer.counter("c_total").inc(1)
            with collecting() as inner:
                inner.counter("c_total").inc(2)
                get_telemetry().emit("tick")
            assert outer.metrics.counter_total("c_total") == 3.0
            assert len(outer.events.of_kind("tick")) == 1
        # The outermost scope had a disabled predecessor: nothing leaks out.
        assert get_telemetry().counter("c_total").value == 0.0

    def test_restores_even_on_error(self):
        disable()
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert get_telemetry() is NULL_TELEMETRY

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            with collecting(stride=0):
                pass


class TestSpans:
    def test_span_records_into_histogram(self):
        with collecting() as tel:
            with span("unit.work", engine="fast"):
                pass
        hists = list(tel.metrics.histograms())
        assert len(hists) == 1
        h = hists[0]
        assert h.name == "span_seconds"
        assert dict(h.labels) == {"span": "unit.work", "engine": "fast"}
        assert h.count == 1
        assert h.sum >= 0.0

    def test_timed_decorator_only_records_when_enabled(self):
        @timed("unit.fn")
        def work(x):
            return x + 1

        disable()
        assert work(1) == 2  # no sink installed: plain call, nothing raised
        with collecting() as tel:
            assert work(2) == 3
        [h] = tel.metrics.histograms()
        assert dict(h.labels)["span"] == "unit.fn"
        assert h.count == 1

    def test_telemetry_jsonable_roundtrip(self):
        with collecting(stride=8) as tel:
            tel.counter("c_total", s="x").inc(4)
            tel.emit("tick", i=1)
            tel.observe_span("s", 0.25)
        back = Telemetry.from_jsonable(tel.to_jsonable())
        assert back.metrics.to_jsonable() == tel.metrics.to_jsonable()
        assert back.events.events() == tel.events.events()


class TestMergePassthrough:
    def test_telemetry_merge_combines_metrics_and_events(self):
        a, b = Telemetry(), Telemetry()
        a.counter("c_total").inc(1)
        b.counter("c_total").inc(2)
        a.emit("x")
        b.emit("y")
        a.merge(b)
        assert a.metrics.counter_total("c_total") == 3.0
        assert [e["kind"] for e in a.events.events()] == ["x", "y"]

"""Ring-buffer and sampling semantics of the structured event log."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import EventLog


class TestRing:
    def test_emission_order_below_capacity(self):
        log = EventLog(capacity=8)
        for i in range(5):
            log.emit("tick", i=i)
        assert [e["i"] for e in log.events()] == [0, 1, 2, 3, 4]
        assert len(log) == 5
        assert log.dropped == 0

    def test_overwrite_keeps_newest_and_counts_dropped(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert [e["i"] for e in log.events()] == [6, 7, 8, 9]
        assert log.dropped == 6
        seqs = [e["seq"] for e in log.events()]
        assert seqs == sorted(seqs)

    def test_of_kind_filters_in_order(self):
        log = EventLog(capacity=16)
        log.emit("a", i=0)
        log.emit("b", i=1)
        log.emit("a", i=2)
        assert [e["i"] for e in log.of_kind("a")] == [0, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)
        with pytest.raises(ConfigurationError):
            EventLog(stride=0)


class TestMergeAndSerialization:
    def test_merge_preserves_shard_order_and_reapplies_capacity(self):
        a = EventLog(capacity=4)
        b = EventLog(capacity=4)
        for i in range(3):
            a.emit("a", i=i)
        for i in range(3):
            b.emit("b", i=i)
        a.merge(b)
        # 6 events into capacity 4: the oldest two overwritten and dropped.
        assert len(a) == 4
        assert a.dropped == 2
        kinds = [e["kind"] for e in a.events()]
        assert kinds == ["a", "b", "b", "b"]

    def test_jsonable_roundtrip(self):
        log = EventLog(capacity=4, stride=16)
        for i in range(7):
            log.emit("tick", i=i)
        back = EventLog.from_jsonable(log.to_jsonable())
        assert back.capacity == 4
        assert back.stride == 16
        assert back.dropped == log.dropped
        assert [e["i"] for e in back.events()] == [e["i"] for e in log.events()]

"""Cross-process registry merge: shards built in real worker processes
(fork and forkserver start methods) ship home as JSON and merge to the
same registry a single-process run produces -- the exact path the
fault-tolerant runner's --telemetry mode exercises."""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.telemetry import MetricsRegistry
from tests.telemetry.test_merge_fuzz import apply_ops

SEEDS = (11, 22, 33)


def _shard_worker(conn, seed):
    """Module-level so it is picklable under forkserver/spawn."""
    reg = MetricsRegistry()
    apply_ops(reg, seed)
    conn.send(reg.to_jsonable())
    conn.close()


def _collect_shards(method: str) -> list[MetricsRegistry]:
    ctx = mp.get_context(method)
    shards = []
    for seed in SEEDS:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_shard_worker, args=(send, seed))
        proc.start()
        send.close()
        payload = recv.recv()
        proc.join(30)
        recv.close()
        assert proc.exitcode == 0
        shards.append(MetricsRegistry.from_jsonable(payload))
    return shards


@pytest.mark.parametrize("method", ["fork", "forkserver"])
def test_worker_shards_merge_to_single_process_registry(method):
    if method not in mp.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")
    merged = MetricsRegistry.merge_all(_collect_shards(method))
    single = MetricsRegistry()
    for seed in SEEDS:
        apply_ops(single, seed)
    # Counters exact, histogram buckets exact: the JSON round trip and the
    # process boundary must not perturb a single value.
    assert merged.to_jsonable() == single.to_jsonable()

"""Fuzz the cross-process merge invariants the runner depends on.

The fault-tolerant runner splits a run over K worker processes and folds
their registries together; for that to be trustworthy, merging must be
associative, commutative, and -- for the commutative instruments
(counters add, histogram buckets add) -- *exactly* equal to applying
every operation in a single process.  Observations are integer-valued so
float summation order cannot blur the equality checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry import MetricsRegistry

EDGES = (1.0, 4.0, 16.0, 64.0, 256.0)
NAMES = ("alpha_total", "beta_total", "gamma_total")
LABEL_SETS = ({}, {"s": "x"}, {"s": "y"}, {"s": "x", "e": "fast"})


def apply_ops(reg: MetricsRegistry, seed: int, ops: int = 300) -> None:
    """Deterministically drive counters and histograms from one seed."""
    rng = np.random.default_rng(seed)
    for _ in range(ops):
        kind = int(rng.integers(3))
        name = NAMES[int(rng.integers(len(NAMES)))]
        labels = LABEL_SETS[int(rng.integers(len(LABEL_SETS)))]
        if kind == 0:
            reg.counter(name, **labels).inc(int(rng.integers(1, 12)))
        elif kind == 1:
            reg.histogram("h_" + name, buckets=EDGES, **labels).observe(
                float(int(rng.integers(0, 512)))
            )
        else:
            values = rng.integers(0, 512, size=int(rng.integers(1, 9)))
            reg.histogram("h_" + name, buckets=EDGES, **labels).observe_many(
                values.astype(np.float64)
            )


def shard(seed: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    apply_ops(reg, seed)
    return reg


def copy_of(reg: MetricsRegistry) -> MetricsRegistry:
    return MetricsRegistry.from_jsonable(reg.to_jsonable())


@pytest.mark.parametrize("k", [2, 3, 5, 8])
def test_merge_equals_single_process(k):
    seeds = list(range(100, 100 + k))
    merged = MetricsRegistry.merge_all(shard(s) for s in seeds)
    single = MetricsRegistry()
    for s in seeds:
        apply_ops(single, s)
    assert merged.to_jsonable() == single.to_jsonable()


@pytest.mark.parametrize("trial", range(6))
def test_merge_is_commutative(trial):
    seeds = [1000 + 10 * trial + i for i in range(4)]
    shards = [shard(s) for s in seeds]
    forward = MetricsRegistry.merge_all(copy_of(s) for s in shards)
    backward = MetricsRegistry.merge_all(copy_of(s) for s in reversed(shards))
    assert forward.to_jsonable() == backward.to_jsonable()


@pytest.mark.parametrize("trial", range(6))
def test_merge_is_associative(trial):
    a, b, c = (shard(2000 + 10 * trial + i) for i in range(3))
    left = copy_of(a).merge(copy_of(b)).merge(copy_of(c))  # (a+b)+c
    right = copy_of(a).merge(copy_of(b).merge(copy_of(c)))  # a+(b+c)
    assert left.to_jsonable() == right.to_jsonable()


#: The shard supervisor's counter families (experiments.shard_supervisor):
#: merged from worker shards into the parent sink, these must obey the
#: same exactly-once arithmetic as any other counter.
SHARD_NAMES = (
    "shard_retries_total",
    "shard_redispatch_total",
    "shard_quarantined_total",
    "shard_speculative_wins_total",
)
SHARD_LABEL_SETS = ({}, {"kind": "error"}, {"kind": "crash"}, {"kind": "timeout"})


def apply_shard_ops(reg: MetricsRegistry, seed: int, ops: int = 200) -> None:
    """Drive the shard counter families the way a chaotic sweep would."""
    rng = np.random.default_rng(seed)
    for _ in range(ops):
        name = SHARD_NAMES[int(rng.integers(len(SHARD_NAMES)))]
        # Retries and quarantines carry a failure-kind label; the
        # redispatch and speculation counters are unlabelled.
        if name in ("shard_retries_total", "shard_quarantined_total"):
            labels = SHARD_LABEL_SETS[int(rng.integers(len(SHARD_LABEL_SETS)))]
        else:
            labels = {}
        reg.counter(name, **labels).inc(int(rng.integers(1, 4)))


@pytest.mark.parametrize("k", [2, 3, 5, 8])
def test_shard_counter_merge_equals_single_process(k):
    seeds = list(range(500, 500 + k))

    def shard_reg(s):
        reg = MetricsRegistry()
        apply_shard_ops(reg, s)
        return reg

    merged = MetricsRegistry.merge_all(shard_reg(s) for s in seeds)
    single = MetricsRegistry()
    for s in seeds:
        apply_shard_ops(single, s)
    assert merged.to_jsonable() == single.to_jsonable()
    for name in SHARD_NAMES:
        assert merged.counter_total(name) == single.counter_total(name) > 0


@pytest.mark.parametrize("trial", range(4))
def test_shard_counter_merge_is_commutative_and_associative(trial):
    def shard_reg(s):
        reg = MetricsRegistry()
        apply_shard_ops(reg, s)
        return reg

    a, b, c = (shard_reg(700 + 10 * trial + i) for i in range(3))
    left = copy_of(a).merge(copy_of(b)).merge(copy_of(c))
    right = copy_of(c).merge(copy_of(a).merge(copy_of(b)))
    assert left.to_jsonable() == right.to_jsonable()


def test_shard_counter_kind_labels_stay_disjoint():
    """Merging never conflates failure kinds: per-label series survive."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("shard_retries_total", kind="crash").inc(2)
    b.counter("shard_retries_total", kind="timeout").inc(3)
    b.counter("shard_retries_total", kind="crash").inc(5)
    merged = copy_of(a).merge(b)
    assert merged.counter("shard_retries_total", kind="crash").value == 7
    assert merged.counter("shard_retries_total", kind="timeout").value == 3
    assert merged.counter_total("shard_retries_total") == 10


def test_gauge_merge_is_commutative_and_keeps_latest():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("u").set(1.0, seq=1)
    b.gauge("u").set(9.0, seq=5)
    ab = copy_of(a).merge(b)
    ba = copy_of(b).merge(a)
    assert ab.gauge("u").value == ba.gauge("u").value == 9.0
    assert ab.gauge("u").seq == 5
    # Equal sequences tie-break on value, keeping the merge order-free.
    c, d = MetricsRegistry(), MetricsRegistry()
    c.gauge("u").set(3.0, seq=2)
    d.gauge("u").set(7.0, seq=2)
    assert copy_of(c).merge(d).gauge("u").value == 7.0
    assert copy_of(d).merge(c).gauge("u").value == 7.0

"""Telemetry tests mutate the process-wide hook; always restore the null
object so state never leaks between tests (or into other test modules)."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    yield
    telemetry.disable()

"""Instrument semantics of the metrics registry: identity, bucketing,
serialization, and the merge invariants the exporters rely on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    SECONDS_BUCKETS,
    SLOT_BUCKETS,
    MetricsRegistry,
)

EDGES = (1.0, 2.0, 4.0, 8.0)


class TestCounter:
    def test_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", strategy="none")
        b = reg.counter("x_total", strategy="none")
        c = reg.counter("x_total", strategy="burst")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert reg.counter_value("x_total", strategy="none") == 3.0
        assert reg.counter_total("x_total") == 3.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", b="1", a="2")
        b = reg.counter("x_total", a="2", b="1")
        assert a is b

    def test_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("x_total").inc(-1)

    def test_label_values(self):
        reg = MetricsRegistry()
        reg.counter("jam_slots_total", strategy="burst").inc()
        reg.counter("jam_slots_total", strategy="none").inc()
        reg.counter("other_total", strategy="zzz").inc()
        assert reg.label_values("jam_slots_total", "strategy") == ["burst", "none"]


class TestGauge:
    def test_last_write_wins_via_sequence(self):
        reg = MetricsRegistry()
        g = reg.gauge("u")
        g.set(4.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.seq == 2


class TestHistogram:
    def test_bucketing_upper_edge_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=EDGES)
        for v in (0.5, 1.0, 1.5, 8.0, 9.0):
            h.observe(v)
        # v lands in the first bucket with v <= edge; 9.0 overflows.
        assert h.counts.tolist() == [2, 1, 0, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(20.0)

    def test_observe_many_matches_scalar_loop(self):
        values = np.asarray([0.1, 1.0, 3.0, 7.9, 100.0, 2.0])
        reg = MetricsRegistry()
        ha = reg.histogram("a", buckets=EDGES)
        hb = reg.histogram("b", buckets=EDGES)
        ha.observe_many(values)
        for v in values:
            hb.observe(float(v))
        assert ha.counts.tolist() == hb.counts.tolist()
        assert ha.sum == pytest.approx(hb.sum)
        assert ha.count == hb.count

    def test_quantile_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=EDGES)
        h.observe_many([1.0] * 9 + [100.0])
        assert h.mean == pytest.approx(10.9)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 8.0  # overflow clamps to the top edge
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_conflicting_bucket_layout_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=EDGES)
        with pytest.raises(ConfigurationError):
            reg.histogram("h", buckets=(1.0, 2.0))

    def test_invalid_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            reg.histogram("g", buckets=(2.0, 1.0))

    def test_default_bucket_families_are_increasing(self):
        for edges in (SLOT_BUCKETS, SECONDS_BUCKETS):
            assert all(a < b for a, b in zip(edges, edges[1:]))


class TestSerialization:
    def test_jsonable_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", k="v").inc(5)
        reg.gauge("g").set(3.5)
        reg.histogram("h", buckets=EDGES, cell="1.2").observe_many([1.0, 9.0])
        back = MetricsRegistry.from_jsonable(reg.to_jsonable())
        assert back.to_jsonable() == reg.to_jsonable()

    def test_totals_by_name(self):
        reg = MetricsRegistry()
        reg.counter("c_total", s="a").inc(2)
        reg.counter("c_total", s="b").inc(3)
        reg.counter("d_total").inc()
        assert reg.totals_by_name() == {"c_total": 5.0, "d_total": 1.0}

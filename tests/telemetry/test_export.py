"""Exporter round trips: JSONL persistence, Prometheus text shape, and
the ASCII report sections."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    Telemetry,
    ascii_report,
    load_jsonl,
    prometheus_text,
    telemetry_records,
    write_jsonl,
)
from repro.telemetry.registry import SLOT_BUCKETS


def sample_telemetry() -> Telemetry:
    tel = Telemetry(stride=16)
    tel.counter("jam_slots_total", strategy="burst").inc(10)
    tel.counter("jam_occupied_total", strategy="burst").inc(4)
    tel.gauge("final_u").set(128.0)
    tel.histogram("cell_election_slots", SLOT_BUCKETS, cell="1.0").observe_many(
        [3.0, 17.0, 170.0]
    )
    tel.observe_span("engine.fast", 0.004)
    tel.emit("slot_window", engine="fast", slots=16)
    return tel


def test_jsonl_roundtrip(tmp_path):
    tel = sample_telemetry()
    path = tmp_path / "telemetry.jsonl"
    write_jsonl(path, tel)
    back = load_jsonl(path)
    assert back.metrics.to_jsonable() == tel.metrics.to_jsonable()
    assert [e["kind"] for e in back.events.events()] == ["slot_window"]
    assert back.events.stride == 16


def test_jsonl_records_are_self_describing(tmp_path):
    records = telemetry_records(sample_telemetry())
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "meta"
    for expected in ("counter", "gauge", "histogram", "event"):
        assert expected in kinds


def test_load_tolerates_torn_final_line(tmp_path):
    tel = sample_telemetry()
    path = tmp_path / "telemetry.jsonl"
    write_jsonl(path, tel)
    path.write_text(path.read_text() + '{"kind": "counter", "name": "tru')
    back = load_jsonl(path)
    assert back.metrics.to_jsonable() == tel.metrics.to_jsonable()


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        load_jsonl(tmp_path / "nope.jsonl")


def test_prometheus_text_shape():
    text = prometheus_text(sample_telemetry().metrics)
    assert "# TYPE jam_slots_total counter" in text
    assert 'jam_slots_total{strategy="burst"} 10' in text
    assert "# TYPE final_u gauge" in text
    assert "# TYPE cell_election_slots histogram" in text
    # Cumulative buckets: the +Inf bucket equals the total count.
    assert 'cell_election_slots_bucket{cell="1.0",le="+Inf"} 3' in text
    assert 'cell_election_slots_count{cell="1.0"} 3' in text
    # Buckets are cumulative, hence non-decreasing down the series.
    bucket_counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("cell_election_slots_bucket")
    ]
    assert bucket_counts == sorted(bucket_counts)


def test_ascii_report_sections():
    report = ascii_report(sample_telemetry())
    assert "-- counters (summed over labels) --" in report
    assert "-- jam efficiency" in report
    assert "burst" in report
    assert "-- per-cell election time (slots) --" in report
    assert "cell [cell=1.0]" in report
    assert "-- spans (wall-clock) --" in report
    assert "-- events --" in report


def test_ascii_report_empty_telemetry():
    assert ascii_report(Telemetry()) == "== telemetry report =="


def test_jsonl_lines_are_valid_json(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    write_jsonl(path, sample_telemetry())
    for line in path.read_text().splitlines():
        json.loads(line)

"""Benchmark target regenerating experiment A5 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a5_applications(benchmark):
    run_experiment_benchmark(benchmark, "A5")

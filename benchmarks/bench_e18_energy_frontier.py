"""Benchmark target regenerating experiment A6 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a6_energy_frontier(benchmark):
    run_experiment_benchmark(benchmark, "A6")

"""Benchmark target regenerating experiment T4 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t4_estimation(benchmark):
    run_experiment_benchmark(benchmark, "T4")

"""Benchmark target regenerating experiment T10 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t10_lemma_checks(benchmark):
    run_experiment_benchmark(benchmark, "T10")

"""Benchmark target regenerating experiment T5 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t5_lesu(benchmark):
    run_experiment_benchmark(benchmark, "T5")

"""Benchmark target regenerating experiment F1 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_f1_trajectory(benchmark):
    run_experiment_benchmark(benchmark, "F1")

"""Benchmark target regenerating experiment A3 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a3_nocd_frontier(benchmark):
    run_experiment_benchmark(benchmark, "A3")

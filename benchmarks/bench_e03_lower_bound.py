"""Benchmark target regenerating experiment T3 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t3_lower_bound(benchmark):
    run_experiment_benchmark(benchmark, "T3")

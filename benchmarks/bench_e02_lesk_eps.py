"""Benchmark target regenerating experiment T2 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t2_lesk_eps(benchmark):
    run_experiment_benchmark(benchmark, "T2")

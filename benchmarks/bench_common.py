"""Shared plumbing for machine-readable benchmark emission.

Both benchmark modules can run as scripts (``python benchmarks/
bench_engines.py --emit-json BENCH_engines.json``) and write a
self-describing JSON document: environment fingerprint (python/numpy/
platform/git sha), per-engine throughput in slots/sec, and -- for the
telemetry benchmark -- the overhead percentages its gates enforce.  CI
emits both files on every run so performance history rides along with the
logs instead of living in someone's terminal scrollback.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np


def git_sha() -> str:
    """The current commit sha, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_env() -> dict:
    """Environment fingerprint embedded in every benchmark document."""
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
    }


def best_of(fn: Callable[[], object], repeats: int = 3) -> tuple[float, object]:
    """Best (minimum) wall-clock over *repeats* calls; returns (s, result).

    Minimum-of-K is the standard noise filter for micro-benchmarks: system
    jitter only ever adds time, so the fastest observation is the closest
    to the true cost.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def write_bench_json(path: str | Path, name: str, results: dict) -> None:
    """Write one benchmark document: {name, generated, env, results}."""
    doc = {
        "name": name,
        "generated": round(time.time(), 3),
        "env": bench_env(),
        "results": results,
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

"""Benchmark target regenerating experiment T7 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t7_vs_ars(benchmark):
    run_experiment_benchmark(benchmark, "T7")

"""Benchmark target regenerating experiment A7 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a7_price_of_universality(benchmark):
    run_experiment_benchmark(benchmark, "A7")

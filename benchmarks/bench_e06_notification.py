"""Benchmark target regenerating experiment T6 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t6_notification(benchmark):
    run_experiment_benchmark(benchmark, "T6")

"""Benchmark target regenerating experiment A9 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a9_interval_ablation(benchmark):
    run_experiment_benchmark(benchmark, "A9")

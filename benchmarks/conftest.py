"""Shared benchmark plumbing.

Every table/figure of the reproduction has one benchmark target that (a)
times the experiment at the ``small`` preset via pytest-benchmark and (b)
prints the regenerated table so ``pytest benchmarks/ --benchmark-only -s``
doubles as a quick reproduction report.  The ``full`` preset (the
EXPERIMENTS.md numbers) is run via ``python -m repro.experiments.run_all``.
"""

from __future__ import annotations

import pytest


def run_experiment_benchmark(benchmark, exp_id: str, capsys=None) -> None:
    """Time one experiment at the small preset and echo its table."""
    from repro.experiments.run_all import run_experiment

    table = benchmark.pedantic(
        lambda: run_experiment(exp_id, "small"), rounds=1, iterations=1
    )
    print()
    print(table.render())


@pytest.fixture
def experiment_benchmark(benchmark):
    """Fixture form of :func:`run_experiment_benchmark`."""

    def _run(exp_id: str):
        run_experiment_benchmark(benchmark, exp_id)

    return _run

"""Benchmark target regenerating experiment A4 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a4_ars_throughput(benchmark):
    run_experiment_benchmark(benchmark, "A4")

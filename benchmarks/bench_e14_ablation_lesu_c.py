"""Benchmark target regenerating experiment A2 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a2_ablation_lesu_c(benchmark):
    run_experiment_benchmark(benchmark, "A2")

"""Benchmark target regenerating experiment T8 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t8_adversary_ablation(benchmark):
    run_experiment_benchmark(benchmark, "T8")

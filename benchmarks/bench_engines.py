"""Micro-benchmarks of the simulation engines themselves.

Quantifies the guide-recommended algorithmic optimization: the fast engine
samples the transmitter count ``k ~ Binomial(n, p)`` per slot (O(1) in n),
while the faithful engine flips one coin per station per slot (O(n)).
Both are benchmarked on identical LESK workloads, plus the budget
enforcement hot path.

Run as a script to emit a machine-readable throughput document::

    python benchmarks/bench_engines.py --emit-json BENCH_engines.json

The JSON carries the environment fingerprint (python/numpy/platform/git
sha) and per-engine slots/sec; ``benchmarks/bench_telemetry.py`` reads the
batched number back as the disabled-overhead baseline.

Script mode also enforces the resilience hooks-off gate: with fault
injection and auditing disabled (``faults=None`` / ``faults=NO_FAULTS``,
``auditor=None``), the fast engine's only residue is a handful of
``is not None`` guards per slot, and the measured difference between the
two disabled call shapes must stay within 2% (5% in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import pytest

from repro.adversary.budget import JammingBudget
from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.core.config import ElectionConfig, default_slot_budget
from repro.core.election import make_protocol_stations
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy, VectorLESUPolicy
from repro.resilience.faults import NO_FAULTS
from repro.sim import kernels as sim_kernels
from repro.sim.batched import simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.sim.megakernel import simulate_uniform_megakernel
from repro.sim.vectorized import simulate_stations_vectorized
from repro.types import CDMode

N = 512
EPS = 0.5
T = 32

#: The megakernel gate pair runs the oblivious LESK R=256 workload in the
#: heavy-jamming regime (the adversary may jam a ``1 - MEGA_EPS`` = 3/4
#: share of every window).  At ``eps=0.5`` elections resolve in ~170
#: slots, jam runs are short, and both engines sit on the same per-sample
#: RNG floor, so the fused jam-run draws the megakernel exists for barely
#: register; at ``eps=0.25`` jamming stretches elections ~2.5x and the
#: megakernel's one-call-per-run draws pull ahead of the batched engine's
#: per-slot dispatch.
MEGA_EPS = 0.25

#: Heavy-tail adaptive cell for the dead-rep compaction gate: LESU against
#: the single-suppressor jammer has a long retirement tail, so packing the
#: retired columns out is where compaction pays.
COMPACT_N = 64
COMPACT_T = 8
COMPACT_INTERVAL = 16
COMPACT_SEED = 2026

#: Maximum tolerated resilience hooks-off overhead (percent) at full size.
RESILIENCE_GATE_PCT = 2.0
#: The relaxed hooks-off gate for CI smoke runs on shared hardware.
SMOKE_RESILIENCE_GATE_PCT = 5.0
#: Minimum batched/scalar throughput ratio on the adaptive-adversary
#: workload (below the oblivious path's 5x: the per-slot observe_outcomes
#: feedback is batched-side-only work).
ADAPTIVE_SPEEDUP_FLOOR = 4.0
#: Minimum vectorized-faithful/scalar-faithful throughput ratio at n=512
#: (the fidelity-gap closure this engine exists for), and its relaxed CI
#: smoke floor.
VECTORIZED_SPEEDUP_FLOOR = 50.0
SMOKE_VECTORIZED_SPEEDUP_FLOOR = 25.0
#: Minimum compaction/no-compaction throughput ratio on the heavy-tail
#: adaptive cell, and its relaxed CI smoke floor.
COMPACTION_SPEEDUP_FLOOR = 1.5
SMOKE_COMPACTION_SPEEDUP_FLOOR = 1.2
#: Minimum megakernel/batched throughput ratio on the heavy-jamming
#: oblivious LESK workload (the ``batched-heavy`` row), and its relaxed CI
#: smoke floor (at smoke width R=64 the per-call RNG overhead -- identical
#: in both engines -- is a larger share of both rows, compressing the
#: ratio).
MEGAKERNEL_SPEEDUP_FLOOR = 3.0
SMOKE_MEGAKERNEL_SPEEDUP_FLOOR = 2.0
#: Maximum tolerated shard-supervision overhead (percent): the supervised
#: block scheduler's accounting (task state, retry bookkeeping, checkpoint
#: key hashing off) versus the legacy plain-loop path on identical cells.
SHARD_GATE_PCT = 2.0
SMOKE_SHARD_GATE_PCT = 5.0
#: Lines of cumulative-time profile kept per engine row by ``--profile``.
PROFILE_TOP = 20


def test_fast_engine_lesk(benchmark):
    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_uniform_fast(
            LESKPolicy(EPS), n=N, adversary=adv, max_slots=100_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_faithful_engine_lesk(benchmark):
    def run():
        config = ElectionConfig(n=N, protocol="lesk", eps=EPS, T=T)
        stations = make_protocol_stations(config)
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_stations(
            stations,
            adversary=adv,
            cd_mode=CDMode.STRONG,
            max_slots=100_000,
            seed=11,
            stop_on_first_single=True,
        )

    result = benchmark(run)
    assert result.elected


@pytest.mark.parametrize("want_rate", [0.0, 0.5, 1.0])
def test_budget_grant_throughput(benchmark, want_rate):
    """The O(1)/slot claim of the (T, 1-eps) budget enforcement."""
    slots = 50_000

    def run():
        budget = JammingBudget(T=64, eps=0.3)
        period = max(1, int(1 / want_rate)) if want_rate else 0
        granted = 0
        for t in range(slots):
            want = bool(period) and (t % period == 0)
            granted += budget.grant(want)
        return granted

    benchmark(run)


def test_fast_notification_engine(benchmark):
    from repro.protocols.lesk import LESKPolicy
    from repro.sim.fast_notification import simulate_notification_fast

    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_notification_fast(
            lambda: LESKPolicy(EPS), n=N, adversary=adv, max_slots=200_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_ars_fast_engine(benchmark):
    from repro.protocols.baselines.ars_fast import simulate_ars_fast
    from repro.protocols.baselines.ars_mac import ars_gamma

    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_ars_fast(
            N, ars_gamma(N, T), adv, max_slots=1_000_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_batched_engine_lesk(benchmark):
    """One call electing R=256 replications in lockstep."""

    def run():
        return simulate_uniform_batched(
            lambda reps: VectorLESKPolicy(EPS, reps),
            N,
            lambda reps: make_batched_adversary("saturating", T=T, eps=EPS, reps=reps),
            reps=256,
            max_slots=100_000,
            root_seed=11,
        )

    batch = benchmark(run)
    assert batch.elected.all()


def test_megakernel_engine_lesk(benchmark):
    """The slot-blocked engine on the heavy-jamming gate workload."""

    def run():
        return simulate_uniform_megakernel(
            lambda reps: VectorLESKPolicy(MEGA_EPS, reps),
            N,
            lambda reps: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=reps
            ),
            reps=256,
            max_slots=100_000,
            root_seed=11,
        )

    batch = benchmark(run)
    assert batch.elected.all()


def test_megakernel_vs_batched_throughput():
    """The megakernel must deliver >= 3x replication throughput over the
    batched per-slot engine on the heavy-jamming oblivious LESK R=256
    workload (acceptance criterion; the script-mode megakernel gate
    enforces the same floor on the emitted rows)."""
    reps = 256

    def batched_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(MEGA_EPS, r),
            N,
            lambda r: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=r
            ),
            reps=reps,
            max_slots=100_000,
            root_seed=11,
        )

    def megakernel_call():
        return simulate_uniform_megakernel(
            lambda r: VectorLESKPolicy(MEGA_EPS, r),
            N,
            lambda r: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=r
            ),
            reps=reps,
            max_slots=100_000,
            root_seed=11,
        )

    batched_call(), megakernel_call()  # warm-up: schedule cache, pools
    batched_s = megakernel_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        batch = batched_call()
        batched_s = min(batched_s, time.perf_counter() - start)
        start = time.perf_counter()
        mega = megakernel_call()
        megakernel_s = min(megakernel_s, time.perf_counter() - start)

    assert mega.elected.all()
    assert batch.elected.all()
    speedup = batched_s / megakernel_s
    print(
        f"\nR={reps}, n={N}, eps={MEGA_EPS}, saturating: batched "
        f"{batched_s:.3f}s, megakernel {megakernel_s:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MEGAKERNEL_SPEEDUP_FLOOR, (
        f"megakernel only {speedup:.1f}x faster than batched "
        f"({batched_s:.3f}s vs {megakernel_s:.3f}s); acceptance floor "
        f"is {MEGAKERNEL_SPEEDUP_FLOOR:.0f}x"
    )


def test_vectorized_faithful_engine_lesk(benchmark):
    """R=16 faithful replications advanced as an (R, n) matrix."""

    def run():
        return simulate_stations_vectorized(
            lambda w: VectorLESKPolicy(EPS, w),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=16,
            max_slots=100_000,
            root_seed=11,
        )

    batch = benchmark(run)
    assert batch.elected.all()


def test_batched_vs_scalar_throughput():
    """The batched engine must deliver >= 5x replication throughput over a
    scalar-fast loop on the same R=256 LESK workload (acceptance criterion;
    measured numbers are printed for the docs table)."""
    reps = 256

    start = time.perf_counter()
    for seed in range(reps):
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=100_000,
        root_seed=11,
    )
    batched_s = time.perf_counter() - start

    assert batch.elected.all()
    speedup = scalar_s / batched_s
    print(
        f"\nR={reps}, n={N}, saturating: scalar {scalar_s:.3f}s, "
        f"batched {batched_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched engine only {speedup:.1f}x faster than scalar "
        f"({scalar_s:.3f}s vs {batched_s:.3f}s); acceptance floor is 5x"
    )


def test_batched_adaptive_vs_scalar_throughput():
    """The adaptive-adversary batched path (history-conditioned vector
    strategies + observe_outcomes feedback) must deliver >= 4x replication
    throughput over the scalar-fast loop on the same R=256 workload.  The
    floor is below the oblivious path's 5x because the adversary feedback
    hook adds per-slot work on the batched side only."""
    reps = 256
    adversary = "single-suppressor"

    start = time.perf_counter()
    for seed in range(reps):
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary(adversary, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=100_000,
        root_seed=11,
    )
    batched_s = time.perf_counter() - start

    assert batch.elected.all()
    speedup = scalar_s / batched_s
    print(
        f"\nR={reps}, n={N}, {adversary}: scalar {scalar_s:.3f}s, "
        f"batched {batched_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 4.0, (
        f"batched adaptive-adversary path only {speedup:.1f}x faster than "
        f"scalar ({scalar_s:.3f}s vs {batched_s:.3f}s); acceptance floor is 4x"
    )


def test_geometric_fast_engine(benchmark):
    from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

    def run():
        adv = make_adversary("none", T=T, eps=EPS)
        return simulate_geometric_fast(N, adv, max_slots=100_000, seed=11)

    result = benchmark(run)
    assert result.elected


# -- machine-readable emission (script mode) -------------------------------


def measure_throughput(reps: int = 64, repeats: int = 3) -> dict:
    """Per-engine slots/sec on the shared saturating-LESK workload."""
    from bench_common import best_of

    results: dict[str, dict] = {}

    def fast_loop():
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            ).slots
        return total

    elapsed, slots = best_of(fast_loop, repeats)
    results["fast"] = {
        "reps": reps,
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    def faithful_loop():
        faithful_reps = max(1, reps // 16)  # O(n)/slot: keep the loop short
        total = 0
        for seed in range(faithful_reps):
            config = ElectionConfig(n=N, protocol="lesk", eps=EPS, T=T)
            total += simulate_stations(
                make_protocol_stations(config),
                adversary=make_adversary("saturating", T=T, eps=EPS),
                cd_mode=CDMode.STRONG,
                max_slots=100_000,
                seed=seed,
                stop_on_first_single=True,
            ).slots
        return total

    elapsed, slots = best_of(faithful_loop, repeats)
    results["faithful"] = {
        "reps": max(1, reps // 16),
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    # Vectorized faithful: the same per-station model as the scalar
    # faithful row, advanced as an (R, n) matrix -- the row pair the
    # >= 50x fidelity-gap gate compares.
    vec_reps = max(4, reps // 2)

    def vectorized_call():
        return simulate_stations_vectorized(
            lambda w: VectorLESKPolicy(EPS, w),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=vec_reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(vectorized_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["vectorized-faithful"] = {
        "reps": vec_reps,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    def batched_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(batched_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["batched"] = {
        "reps": 4 * reps,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    # Megakernel gate pair: the slot-blocked engine against the per-slot
    # batched engine, both on the same heavy-jamming oblivious workload
    # (MEGA_EPS) so the ratio is engine-only.
    def batched_heavy_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(MEGA_EPS, r),
            N,
            lambda r: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=r
            ),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(batched_heavy_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["batched-heavy"] = {
        "reps": 4 * reps,
        "eps": MEGA_EPS,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    def megakernel_call(backend: str = "numpy"):
        return simulate_uniform_megakernel(
            lambda r: VectorLESKPolicy(MEGA_EPS, r),
            N,
            lambda r: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=r
            ),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
            kernel_backend=backend,
        )

    elapsed, batch = best_of(megakernel_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["megakernel"] = {
        "reps": 4 * reps,
        "eps": MEGA_EPS,
        "kernel_backend": "numpy",
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    if sim_kernels.HAVE_NUMBA:
        sim_kernels.warmup("numba")  # JIT compile outside the clock
        elapsed, batch = best_of(lambda: megakernel_call("numba"), repeats)
        batch_slots = int(batch.slots.sum())
        results["megakernel-numba"] = {
            "reps": 4 * reps,
            "eps": MEGA_EPS,
            "kernel_backend": "numba",
            "slots": batch_slots,
            "seconds": round(elapsed, 6),
            "slots_per_sec": round(batch_slots / elapsed, 1),
        }

    # Adaptive-adversary pair: same LESK workload, but the jammer
    # conditions on history (single-suppressor), exercising the vectorized
    # strategy + observe_outcomes feedback on the batched side.
    adaptive = "single-suppressor"

    def fast_adaptive_loop():
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary(adaptive, T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            ).slots
        return total

    elapsed, slots = best_of(fast_adaptive_loop, repeats)
    results["fast-adaptive"] = {
        "reps": reps,
        "adversary": adaptive,
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    def batched_adaptive_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary(adaptive, T=T, eps=EPS, reps=r),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(batched_adaptive_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["batched-adaptive"] = {
        "reps": 4 * reps,
        "adversary": adaptive,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    # Dead-rep compaction pair: the heavy-tail adaptive cell where most
    # columns retire early but a long tail keeps the batch alive, so the
    # per-slot width reduction is the whole story.  Fixed at 256 columns
    # even in smoke mode: below ~100 columns the per-slot dispatch floor
    # hides the width reduction, and the cell costs ~20ms either way.
    compact_reps = 256
    for row, interval in (
        ("batched-nocompact", None),
        ("batched-compaction", COMPACT_INTERVAL),
    ):
        elapsed, batch = best_of(
            lambda: _compaction_cell(compact_reps, interval), repeats
        )
        batch_slots = int(batch.slots.sum())
        results[row] = {
            "reps": compact_reps,
            "n": COMPACT_N,
            "adversary": adaptive,
            "policy": "lesu",
            "compact_interval": interval,
            "slots": batch_slots,
            "seconds": round(elapsed, 6),
            "slots_per_sec": round(batch_slots / elapsed, 1),
        }
    return results


def _compaction_cell(reps: int, compact_interval: int | None):
    return simulate_uniform_batched(
        VectorLESUPolicy,
        COMPACT_N,
        lambda r: make_batched_adversary(
            "single-suppressor", T=COMPACT_T, eps=EPS, reps=r
        ),
        reps=reps,
        max_slots=default_slot_budget(COMPACT_N, EPS, COMPACT_T),
        root_seed=COMPACT_SEED,
        compact_interval=compact_interval,
    )


def measure_resilience_overhead(
    reps: int = 48, repeats: int = 5, inner: int = 6
) -> dict:
    """Time the fast engine's hooks-off path against itself.

    Both sides run with fault injection and auditing disabled: the
    baseline passes ``faults=None`` (the legacy call shape) and the other
    side passes ``faults=NO_FAULTS, auditor=None`` (a constructed but
    disabled model).  A disabled model spawns no RNG streams and realizes
    nothing, so the measured difference bounds the per-call entry checks
    plus timing noise -- exactly what the <= 2% hooks-off contract
    constrains.  The same noise controls as bench_telemetry apply: CPU
    time, *inner* back-to-back calls per observation, and round-robin
    interleaving so monotonic drift cancels.
    """
    import time

    def loop(faults) -> int:
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
                faults=faults,
                auditor=None,
            ).slots
        return total

    def timed(faults) -> float:
        start = time.process_time()
        for _ in range(inner):
            loop(faults)
        return (time.process_time() - start) / inner

    slots = loop(None)  # warm-up: allocator pools, code paths
    baseline_s = hooks_off_s = float("inf")
    for _ in range(max(1, repeats)):
        baseline_s = min(baseline_s, timed(None))
        hooks_off_s = min(hooks_off_s, timed(NO_FAULTS))

    return {
        "workload": {
            "engine": "fast",
            "n": N,
            "reps": reps,
            "slots": slots,
            "adversary": "saturating",
        },
        "baseline_s": round(baseline_s, 6),
        "hooks_off_s": round(hooks_off_s, 6),
        "overhead_pct": round(100.0 * (hooks_off_s - baseline_s) / baseline_s, 3),
    }


def measure_shard_supervision_overhead(
    reps: int = 64, repeats: int = 5, inner: int = 4
) -> dict:
    """Time the supervised shard scheduler against the legacy plain loop.

    Both sides run ``jobs=1`` on identical LESK cells, so the measured
    difference is pure supervision accounting (task state machine, retry
    bookkeeping, per-execution telemetry scoping) with no process-spawn
    noise -- exactly what the <= 2% supervised-overhead contract
    constrains.  Noise controls: CPU time, legacy/supervised sweeps
    alternated pairwise (so a slow machine phase penalizes both sides
    equally), and ``repeats * inner`` samples per side reduced by min --
    each sweep is tens of milliseconds, so the min converges on the
    noise-free floor.
    """
    from repro.experiments.cells import CellSpec, run_shard
    from repro.experiments.harness import ShardedScheduler

    specs = [
        CellSpec(
            kind="lesk", n=N, eps=EPS, T=T, adversary="saturating",
            reps=reps, root_seed=17, path=(90, i),
        )
        for i in range(2)
    ]

    def sweep(supervised: bool):
        with ShardedScheduler(
            jobs=1, block_size=16, supervised=supervised
        ) as sched:
            return sched.run(run_shard, specs)

    def timed(supervised: bool) -> float:
        start = time.process_time()
        sweep(supervised)
        return time.process_time() - start

    results = sweep(False)  # warm-up: allocator pools, schedule caches
    assert [len(c) for c in results] == [reps, reps]
    sweep(True)
    legacy_s = supervised_s = float("inf")
    for i in range(max(1, repeats) * max(1, inner)):
        # Alternate which side goes first so cache-warming from the
        # pair's first sweep does not systematically favour one side.
        for supervised in ((False, True) if i % 2 == 0 else (True, False)):
            t = timed(supervised)
            if supervised:
                supervised_s = min(supervised_s, t)
            else:
                legacy_s = min(legacy_s, t)

    return {
        "workload": {
            "cells": len(specs),
            "n": N,
            "reps": reps,
            "block_size": 16,
            "adversary": "saturating",
        },
        "legacy_s": round(legacy_s, 6),
        "supervised_s": round(supervised_s, 6),
        "overhead_pct": round(
            100.0 * (supervised_s - legacy_s) / legacy_s, 3
        ),
    }


def profile_engines(out_dir: Path, reps: int = 8) -> list[Path]:
    """cProfile one workload per engine row; top-20 cumulative each.

    Writes ``profile_<engine>.txt`` per row into *out_dir* -- small
    single-shot workloads (profiling overhead distorts absolute numbers;
    the call ranking is what the files are for).
    """
    import cProfile
    import io
    import pstats

    def fast_workload():
        for seed in range(reps):
            simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            )

    def faithful_workload():
        config = ElectionConfig(n=N, protocol="lesk", eps=EPS, T=T)
        simulate_stations(
            make_protocol_stations(config),
            adversary=make_adversary("saturating", T=T, eps=EPS),
            cd_mode=CDMode.STRONG,
            max_slots=100_000,
            seed=11,
            stop_on_first_single=True,
        )

    def batched_workload():
        simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=8 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    def vectorized_workload():
        simulate_stations_vectorized(
            lambda w: VectorLESKPolicy(EPS, w),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=reps,
            max_slots=100_000,
            root_seed=11,
        )

    def megakernel_workload():
        simulate_uniform_megakernel(
            lambda r: VectorLESKPolicy(MEGA_EPS, r),
            N,
            lambda r: make_batched_adversary(
                "saturating", T=T, eps=MEGA_EPS, reps=r
            ),
            reps=8 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    def compaction_workload():
        _compaction_cell(32 * reps, COMPACT_INTERVAL)

    workloads = {
        "fast": fast_workload,
        "faithful": faithful_workload,
        "batched": batched_workload,
        "megakernel": megakernel_workload,
        "vectorized-faithful": vectorized_workload,
        "batched-compaction": compaction_workload,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, workload in workloads.items():
        profiler = cProfile.Profile()
        profiler.runcall(workload)
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP)
        path = out_dir / f"profile_{name.replace('-', '_')}.txt"
        path.write_text(buf.getvalue())
        paths.append(path)
    return paths


def main(argv: list[str] | None = None) -> int:
    """Script entry point: time the engines and emit BENCH_engines.json."""
    from bench_common import write_bench_json

    parser = argparse.ArgumentParser(description="engine throughput emission")
    parser.add_argument(
        "--emit-json", type=str, default="BENCH_engines.json", metavar="PATH"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="reduced sizes for CI smoke"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each engine row (top-20 cumulative) into results/",
    )
    args = parser.parse_args(argv)

    if args.profile:
        out_dir = Path(__file__).resolve().parent.parent / "results"
        for path in profile_engines(out_dir, reps=4 if args.smoke else 8):
            print(f"wrote {path}")

    reps = 16 if args.smoke else 64
    repeats = 2 if args.smoke else 3
    results = measure_throughput(reps=reps, repeats=repeats)
    for engine, row in results.items():
        print(f"{engine:>16}: {row['slots_per_sec']:>12,.0f} slots/sec")
    if "megakernel-numba" not in results:
        print(f"{'megakernel-numba':>16}: skipped (numba not installed)")

    adaptive_speedup = (
        results["batched-adaptive"]["slots_per_sec"]
        / results["fast-adaptive"]["slots_per_sec"]
    )
    results["adaptive_gate"] = {
        "adversary": results["batched-adaptive"]["adversary"],
        "speedup": round(adaptive_speedup, 2),
        "floor": ADAPTIVE_SPEEDUP_FLOOR,
    }
    print(
        f"batched adaptive-adversary speedup: {adaptive_speedup:.1f}x "
        f"(floor {ADAPTIVE_SPEEDUP_FLOOR:.0f}x)"
    )

    vectorized_floor = (
        SMOKE_VECTORIZED_SPEEDUP_FLOOR if args.smoke else VECTORIZED_SPEEDUP_FLOOR
    )
    vectorized_speedup = (
        results["vectorized-faithful"]["slots_per_sec"]
        / results["faithful"]["slots_per_sec"]
    )
    results["vectorized_gate"] = {
        "speedup": round(vectorized_speedup, 2),
        "floor": vectorized_floor,
        "smoke": args.smoke,
    }
    print(
        f"vectorized-faithful speedup: {vectorized_speedup:.1f}x "
        f"(floor {vectorized_floor:.0f}x)"
    )

    compaction_floor = (
        SMOKE_COMPACTION_SPEEDUP_FLOOR if args.smoke else COMPACTION_SPEEDUP_FLOOR
    )
    compaction_speedup = (
        results["batched-compaction"]["slots_per_sec"]
        / results["batched-nocompact"]["slots_per_sec"]
    )
    results["compaction_gate"] = {
        "speedup": round(compaction_speedup, 2),
        "floor": compaction_floor,
        "compact_interval": COMPACT_INTERVAL,
        "smoke": args.smoke,
    }
    print(
        f"dead-rep compaction speedup: {compaction_speedup:.2f}x "
        f"(floor {compaction_floor:.1f}x)"
    )

    megakernel_floor = (
        SMOKE_MEGAKERNEL_SPEEDUP_FLOOR
        if args.smoke
        else MEGAKERNEL_SPEEDUP_FLOOR
    )
    megakernel_speedup = (
        results["megakernel"]["slots_per_sec"]
        / results["batched-heavy"]["slots_per_sec"]
    )
    results["megakernel_gate"] = {
        "speedup": round(megakernel_speedup, 2),
        "floor": megakernel_floor,
        "vs": "batched-heavy",
        "eps": MEGA_EPS,
        "smoke": args.smoke,
    }
    print(
        f"megakernel speedup: {megakernel_speedup:.1f}x "
        f"(floor {megakernel_floor:.0f}x, vs batched on eps={MEGA_EPS})"
    )

    gate = SMOKE_RESILIENCE_GATE_PCT if args.smoke else RESILIENCE_GATE_PCT
    resilience = measure_resilience_overhead(
        reps=16 if args.smoke else 48,
        repeats=3 if args.smoke else 5,
        inner=12 if args.smoke else 6,
    )
    resilience["gate_pct"] = gate
    resilience["smoke"] = args.smoke
    results["resilience_hooks_off"] = resilience
    print(
        f"resilience hooks-off: baseline {resilience['baseline_s']:.3f}s, "
        f"hooks off {resilience['hooks_off_s']:.3f}s "
        f"({resilience['overhead_pct']:+.2f}%)"
    )
    shard_gate = SMOKE_SHARD_GATE_PCT if args.smoke else SHARD_GATE_PCT
    shard = measure_shard_supervision_overhead(
        reps=24 if args.smoke else 48,
        repeats=3 if args.smoke else 6,
        inner=6,
    )
    shard["gate_pct"] = shard_gate
    shard["smoke"] = args.smoke
    results["shard_supervision"] = shard
    print(
        f"shard supervision (jobs=1): legacy {shard['legacy_s']:.3f}s, "
        f"supervised {shard['supervised_s']:.3f}s "
        f"({shard['overhead_pct']:+.2f}%)"
    )
    write_bench_json(args.emit_json, "bench_engines", results)

    failed = False
    if adaptive_speedup < ADAPTIVE_SPEEDUP_FLOOR:
        print(
            f"GATE FAILED: batched adaptive-adversary path only "
            f"{adaptive_speedup:.1f}x faster than scalar; floor is "
            f"{ADAPTIVE_SPEEDUP_FLOOR:.0f}x",
            file=sys.stderr,
        )
        failed = True
    else:
        print("batched adaptive-adversary gate passed")
    if vectorized_speedup < vectorized_floor:
        print(
            f"GATE FAILED: vectorized-faithful engine only "
            f"{vectorized_speedup:.1f}x faster than the scalar faithful "
            f"engine; floor is {vectorized_floor:.0f}x",
            file=sys.stderr,
        )
        failed = True
    else:
        print("vectorized-faithful gate passed")
    if compaction_speedup < compaction_floor:
        print(
            f"GATE FAILED: dead-rep compaction only {compaction_speedup:.2f}x "
            f"faster than the uncompacted batch on the heavy-tail cell; "
            f"floor is {compaction_floor:.1f}x",
            file=sys.stderr,
        )
        failed = True
    else:
        print("dead-rep compaction gate passed")
    if megakernel_speedup < megakernel_floor:
        print(
            f"GATE FAILED: megakernel only {megakernel_speedup:.1f}x "
            f"faster than the batched engine on the heavy-jamming "
            f"oblivious workload; floor is {megakernel_floor:.0f}x",
            file=sys.stderr,
        )
        failed = True
    else:
        print("megakernel gate passed")
    if resilience["overhead_pct"] > gate:
        print(
            f"GATE FAILED: resilience hooks-off overhead "
            f"{resilience['overhead_pct']:.2f}% > {gate:.0f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print("resilience hooks-off gate passed")
    if shard["overhead_pct"] > shard_gate:
        print(
            f"GATE FAILED: shard supervision overhead "
            f"{shard['overhead_pct']:.2f}% > {shard_gate:.0f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print("shard supervision gate passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Micro-benchmarks of the simulation engines themselves.

Quantifies the guide-recommended algorithmic optimization: the fast engine
samples the transmitter count ``k ~ Binomial(n, p)`` per slot (O(1) in n),
while the faithful engine flips one coin per station per slot (O(n)).
Both are benchmarked on identical LESK workloads, plus the budget
enforcement hot path.

Run as a script to emit a machine-readable throughput document::

    python benchmarks/bench_engines.py --emit-json BENCH_engines.json

The JSON carries the environment fingerprint (python/numpy/platform/git
sha) and per-engine slots/sec; ``benchmarks/bench_telemetry.py`` reads the
batched number back as the disabled-overhead baseline.

Script mode also enforces the resilience hooks-off gate: with fault
injection and auditing disabled (``faults=None`` / ``faults=NO_FAULTS``,
``auditor=None``), the fast engine's only residue is a handful of
``is not None`` guards per slot, and the measured difference between the
two disabled call shapes must stay within 2% (5% in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro.adversary.budget import JammingBudget
from repro.adversary.suite import make_adversary
from repro.adversary.vector import make_batched_adversary
from repro.core.config import ElectionConfig
from repro.core.election import make_protocol_stations
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy
from repro.resilience.faults import NO_FAULTS
from repro.sim.batched import simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode

N = 512
EPS = 0.5
T = 32

#: Maximum tolerated resilience hooks-off overhead (percent) at full size.
RESILIENCE_GATE_PCT = 2.0
#: The relaxed hooks-off gate for CI smoke runs on shared hardware.
SMOKE_RESILIENCE_GATE_PCT = 5.0
#: Minimum batched/scalar throughput ratio on the adaptive-adversary
#: workload (below the oblivious path's 5x: the per-slot observe_outcomes
#: feedback is batched-side-only work).
ADAPTIVE_SPEEDUP_FLOOR = 4.0


def test_fast_engine_lesk(benchmark):
    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_uniform_fast(
            LESKPolicy(EPS), n=N, adversary=adv, max_slots=100_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_faithful_engine_lesk(benchmark):
    def run():
        config = ElectionConfig(n=N, protocol="lesk", eps=EPS, T=T)
        stations = make_protocol_stations(config)
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_stations(
            stations,
            adversary=adv,
            cd_mode=CDMode.STRONG,
            max_slots=100_000,
            seed=11,
            stop_on_first_single=True,
        )

    result = benchmark(run)
    assert result.elected


@pytest.mark.parametrize("want_rate", [0.0, 0.5, 1.0])
def test_budget_grant_throughput(benchmark, want_rate):
    """The O(1)/slot claim of the (T, 1-eps) budget enforcement."""
    slots = 50_000

    def run():
        budget = JammingBudget(T=64, eps=0.3)
        period = max(1, int(1 / want_rate)) if want_rate else 0
        granted = 0
        for t in range(slots):
            want = bool(period) and (t % period == 0)
            granted += budget.grant(want)
        return granted

    benchmark(run)


def test_fast_notification_engine(benchmark):
    from repro.protocols.lesk import LESKPolicy
    from repro.sim.fast_notification import simulate_notification_fast

    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_notification_fast(
            lambda: LESKPolicy(EPS), n=N, adversary=adv, max_slots=200_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_ars_fast_engine(benchmark):
    from repro.protocols.baselines.ars_fast import simulate_ars_fast
    from repro.protocols.baselines.ars_mac import ars_gamma

    def run():
        adv = make_adversary("saturating", T=T, eps=EPS)
        return simulate_ars_fast(
            N, ars_gamma(N, T), adv, max_slots=1_000_000, seed=11
        )

    result = benchmark(run)
    assert result.elected


def test_batched_engine_lesk(benchmark):
    """One call electing R=256 replications in lockstep."""

    def run():
        return simulate_uniform_batched(
            lambda reps: VectorLESKPolicy(EPS, reps),
            N,
            lambda reps: make_batched_adversary("saturating", T=T, eps=EPS, reps=reps),
            reps=256,
            max_slots=100_000,
            root_seed=11,
        )

    batch = benchmark(run)
    assert batch.elected.all()


def test_batched_vs_scalar_throughput():
    """The batched engine must deliver >= 5x replication throughput over a
    scalar-fast loop on the same R=256 LESK workload (acceptance criterion;
    measured numbers are printed for the docs table)."""
    reps = 256

    start = time.perf_counter()
    for seed in range(reps):
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary("saturating", T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=100_000,
        root_seed=11,
    )
    batched_s = time.perf_counter() - start

    assert batch.elected.all()
    speedup = scalar_s / batched_s
    print(
        f"\nR={reps}, n={N}, saturating: scalar {scalar_s:.3f}s, "
        f"batched {batched_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched engine only {speedup:.1f}x faster than scalar "
        f"({scalar_s:.3f}s vs {batched_s:.3f}s); acceptance floor is 5x"
    )


def test_batched_adaptive_vs_scalar_throughput():
    """The adaptive-adversary batched path (history-conditioned vector
    strategies + observe_outcomes feedback) must deliver >= 4x replication
    throughput over the scalar-fast loop on the same R=256 workload.  The
    floor is below the oblivious path's 5x because the adversary feedback
    hook adds per-slot work on the batched side only."""
    reps = 256
    adversary = "single-suppressor"

    start = time.perf_counter()
    for seed in range(reps):
        simulate_uniform_fast(
            LESKPolicy(EPS),
            n=N,
            adversary=make_adversary(adversary, T=T, eps=EPS),
            max_slots=100_000,
            seed=seed,
        )
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary(adversary, T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=100_000,
        root_seed=11,
    )
    batched_s = time.perf_counter() - start

    assert batch.elected.all()
    speedup = scalar_s / batched_s
    print(
        f"\nR={reps}, n={N}, {adversary}: scalar {scalar_s:.3f}s, "
        f"batched {batched_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 4.0, (
        f"batched adaptive-adversary path only {speedup:.1f}x faster than "
        f"scalar ({scalar_s:.3f}s vs {batched_s:.3f}s); acceptance floor is 4x"
    )


def test_geometric_fast_engine(benchmark):
    from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

    def run():
        adv = make_adversary("none", T=T, eps=EPS)
        return simulate_geometric_fast(N, adv, max_slots=100_000, seed=11)

    result = benchmark(run)
    assert result.elected


# -- machine-readable emission (script mode) -------------------------------


def measure_throughput(reps: int = 64, repeats: int = 3) -> dict:
    """Per-engine slots/sec on the shared saturating-LESK workload."""
    from bench_common import best_of

    results: dict[str, dict] = {}

    def fast_loop():
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            ).slots
        return total

    elapsed, slots = best_of(fast_loop, repeats)
    results["fast"] = {
        "reps": reps,
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    def faithful_loop():
        faithful_reps = max(1, reps // 16)  # O(n)/slot: keep the loop short
        total = 0
        for seed in range(faithful_reps):
            config = ElectionConfig(n=N, protocol="lesk", eps=EPS, T=T)
            total += simulate_stations(
                make_protocol_stations(config),
                adversary=make_adversary("saturating", T=T, eps=EPS),
                cd_mode=CDMode.STRONG,
                max_slots=100_000,
                seed=seed,
                stop_on_first_single=True,
            ).slots
        return total

    elapsed, slots = best_of(faithful_loop, repeats)
    results["faithful"] = {
        "reps": max(1, reps // 16),
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    def batched_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(batched_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["batched"] = {
        "reps": 4 * reps,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }

    # Adaptive-adversary pair: same LESK workload, but the jammer
    # conditions on history (single-suppressor), exercising the vectorized
    # strategy + observe_outcomes feedback on the batched side.
    adaptive = "single-suppressor"

    def fast_adaptive_loop():
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary(adaptive, T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
            ).slots
        return total

    elapsed, slots = best_of(fast_adaptive_loop, repeats)
    results["fast-adaptive"] = {
        "reps": reps,
        "adversary": adaptive,
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(slots / elapsed, 1),
    }

    def batched_adaptive_call():
        return simulate_uniform_batched(
            lambda r: VectorLESKPolicy(EPS, r),
            N,
            lambda r: make_batched_adversary(adaptive, T=T, eps=EPS, reps=r),
            reps=4 * reps,
            max_slots=100_000,
            root_seed=11,
        )

    elapsed, batch = best_of(batched_adaptive_call, repeats)
    batch_slots = int(batch.slots.sum())
    results["batched-adaptive"] = {
        "reps": 4 * reps,
        "adversary": adaptive,
        "slots": batch_slots,
        "seconds": round(elapsed, 6),
        "slots_per_sec": round(batch_slots / elapsed, 1),
    }
    return results


def measure_resilience_overhead(
    reps: int = 48, repeats: int = 5, inner: int = 6
) -> dict:
    """Time the fast engine's hooks-off path against itself.

    Both sides run with fault injection and auditing disabled: the
    baseline passes ``faults=None`` (the legacy call shape) and the other
    side passes ``faults=NO_FAULTS, auditor=None`` (a constructed but
    disabled model).  A disabled model spawns no RNG streams and realizes
    nothing, so the measured difference bounds the per-call entry checks
    plus timing noise -- exactly what the <= 2% hooks-off contract
    constrains.  The same noise controls as bench_telemetry apply: CPU
    time, *inner* back-to-back calls per observation, and round-robin
    interleaving so monotonic drift cancels.
    """
    import time

    def loop(faults) -> int:
        total = 0
        for seed in range(reps):
            total += simulate_uniform_fast(
                LESKPolicy(EPS),
                n=N,
                adversary=make_adversary("saturating", T=T, eps=EPS),
                max_slots=100_000,
                seed=seed,
                faults=faults,
                auditor=None,
            ).slots
        return total

    def timed(faults) -> float:
        start = time.process_time()
        for _ in range(inner):
            loop(faults)
        return (time.process_time() - start) / inner

    slots = loop(None)  # warm-up: allocator pools, code paths
    baseline_s = hooks_off_s = float("inf")
    for _ in range(max(1, repeats)):
        baseline_s = min(baseline_s, timed(None))
        hooks_off_s = min(hooks_off_s, timed(NO_FAULTS))

    return {
        "workload": {
            "engine": "fast",
            "n": N,
            "reps": reps,
            "slots": slots,
            "adversary": "saturating",
        },
        "baseline_s": round(baseline_s, 6),
        "hooks_off_s": round(hooks_off_s, 6),
        "overhead_pct": round(100.0 * (hooks_off_s - baseline_s) / baseline_s, 3),
    }


def main(argv: list[str] | None = None) -> int:
    """Script entry point: time the engines and emit BENCH_engines.json."""
    from bench_common import write_bench_json

    parser = argparse.ArgumentParser(description="engine throughput emission")
    parser.add_argument(
        "--emit-json", type=str, default="BENCH_engines.json", metavar="PATH"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="reduced sizes for CI smoke"
    )
    args = parser.parse_args(argv)

    reps = 16 if args.smoke else 64
    repeats = 2 if args.smoke else 3
    results = measure_throughput(reps=reps, repeats=repeats)
    for engine, row in results.items():
        print(f"{engine:>16}: {row['slots_per_sec']:>12,.0f} slots/sec")

    adaptive_speedup = (
        results["batched-adaptive"]["slots_per_sec"]
        / results["fast-adaptive"]["slots_per_sec"]
    )
    results["adaptive_gate"] = {
        "adversary": results["batched-adaptive"]["adversary"],
        "speedup": round(adaptive_speedup, 2),
        "floor": ADAPTIVE_SPEEDUP_FLOOR,
    }
    print(
        f"batched adaptive-adversary speedup: {adaptive_speedup:.1f}x "
        f"(floor {ADAPTIVE_SPEEDUP_FLOOR:.0f}x)"
    )

    gate = SMOKE_RESILIENCE_GATE_PCT if args.smoke else RESILIENCE_GATE_PCT
    resilience = measure_resilience_overhead(
        reps=16 if args.smoke else 48,
        repeats=3 if args.smoke else 5,
        inner=12 if args.smoke else 6,
    )
    resilience["gate_pct"] = gate
    resilience["smoke"] = args.smoke
    results["resilience_hooks_off"] = resilience
    print(
        f"resilience hooks-off: baseline {resilience['baseline_s']:.3f}s, "
        f"hooks off {resilience['hooks_off_s']:.3f}s "
        f"({resilience['overhead_pct']:+.2f}%)"
    )
    write_bench_json(args.emit_json, "bench_engines", results)

    failed = False
    if adaptive_speedup < ADAPTIVE_SPEEDUP_FLOOR:
        print(
            f"GATE FAILED: batched adaptive-adversary path only "
            f"{adaptive_speedup:.1f}x faster than scalar; floor is "
            f"{ADAPTIVE_SPEEDUP_FLOOR:.0f}x",
            file=sys.stderr,
        )
        failed = True
    else:
        print("batched adaptive-adversary gate passed")
    if resilience["overhead_pct"] > gate:
        print(
            f"GATE FAILED: resilience hooks-off overhead "
            f"{resilience['overhead_pct']:.2f}% > {gate:.0f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print("resilience hooks-off gate passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

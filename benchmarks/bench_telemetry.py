"""Telemetry overhead gates on the batched LESK hot path.

The subsystem's contract (docs/telemetry.md) is *zero overhead when off*:
with the null object installed, the engines' only residue is one
``if rec is not None`` branch per slot.  This module measures and gates
that contract on the hottest path in the repo -- the batched
cross-replication engine electing R replications of LESK against the
saturating jammer:

* **disabled mode** -- timed back-to-back against an identical
  untelemetered run of the same workload (best-of-K timing on both
  sides); the difference must stay within 2% (5% in ``--smoke`` mode,
  which CI runs at reduced size on shared hardware);
* **enabled mode** (stride >= 64) -- may cost at most 15% over disabled.

Run as a script to enforce the gates and emit the machine-readable
document::

    python benchmarks/bench_telemetry.py --emit-json BENCH_telemetry.json
    python benchmarks/bench_telemetry.py --smoke   # CI: reduced size, 5%

The pytest-benchmark entries below time the same workloads under
``pytest benchmarks/ --benchmark-only`` so the numbers show up alongside
the other engine benchmarks.
"""

from __future__ import annotations

import argparse
import sys

from repro import telemetry
from repro.adversary.vector import make_batched_adversary
from repro.protocols.vector import VectorLESKPolicy
from repro.sim.batched import simulate_uniform_batched

N = 512
EPS = 0.5
T = 32

#: Maximum tolerated disabled-mode overhead (percent) at full size.
DISABLED_GATE_PCT = 2.0
#: The relaxed disabled-mode gate for CI smoke runs on shared hardware.
SMOKE_DISABLED_GATE_PCT = 5.0
#: Maximum tolerated enabled-mode (stride >= 64) overhead over disabled.
ENABLED_GATE_PCT = 15.0


def batched_lesk(reps: int, max_slots: int = 100_000):
    return simulate_uniform_batched(
        lambda r: VectorLESKPolicy(EPS, r),
        N,
        lambda r: make_batched_adversary("saturating", T=T, eps=EPS, reps=r),
        reps=reps,
        max_slots=max_slots,
        root_seed=11,
    )


def measure_overhead(
    reps: int = 1024, repeats: int = 5, stride: int = 64, inner: int = 4
) -> dict:
    """Time the workload three ways: baseline, disabled, enabled.

    Baseline and disabled are the *same code path* measured independently
    (telemetry off for both); their difference bounds the null-object
    residue plus timing noise, which is exactly the quantity the <= 2%
    contract constrains.  Enabled installs a live sink with the given
    event stride.

    Three noise controls keep the percent-level gates meaningful on
    shared CI hardware: observations use CPU time (``process_time``), so
    descheduling by a noisy neighbour does not count against either
    side; each observation runs *inner* back-to-back calls so a single
    timing spans tens of milliseconds of CPU; and the three variants are
    interleaved round-robin (rather than measured in blocks) so
    monotonic drift -- frequency ramps, cache warm-up -- cancels instead
    of biasing one variant.
    """
    assert not telemetry.telemetry_enabled(), (
        "telemetry must be off by default -- a live global sink at import "
        "time breaks the zero-overhead-when-off contract"
    )
    import time

    def run_inner() -> float:
        start = time.process_time()
        for _ in range(inner):
            batched_lesk(reps)
        return (time.process_time() - start) / inner

    telemetry.disable()
    batch = batched_lesk(reps)  # warm-up: allocator pools, code paths
    slots = int(batch.slots.sum())

    baseline_s = disabled_s = enabled_s = float("inf")
    for _ in range(max(1, repeats)):
        baseline_s = min(baseline_s, run_inner())
        disabled_s = min(disabled_s, run_inner())
        telemetry.configure(stride=stride)
        try:
            enabled_s = min(enabled_s, run_inner())
        finally:
            telemetry.disable()

    return {
        "workload": {
            "engine": "batched",
            "n": N,
            "reps": reps,
            "slots": slots,
            "stride": stride,
            "adversary": "saturating",
        },
        "baseline_s": round(baseline_s, 6),
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "slots_per_sec_disabled": round(slots / disabled_s, 1),
        "slots_per_sec_enabled": round(slots / enabled_s, 1),
        "overhead_disabled_pct": round(
            100.0 * (disabled_s - baseline_s) / baseline_s, 3
        ),
        "overhead_enabled_pct": round(
            100.0 * (enabled_s - disabled_s) / disabled_s, 3
        ),
    }


# -- pytest-benchmark entries (timings only; the gates live in main) -------


def test_batched_lesk_telemetry_disabled(benchmark):
    telemetry.disable()
    batch = benchmark(lambda: batched_lesk(256))
    assert batch.elected.all()


def test_batched_lesk_telemetry_enabled_stride64(benchmark):
    telemetry.configure(stride=64)
    try:
        batch = benchmark(lambda: batched_lesk(256))
    finally:
        telemetry.disable()
    assert batch.elected.all()


def test_enabled_mode_actually_collects():
    with telemetry.collecting(stride=64) as tel:
        batched_lesk(32, max_slots=10_000)
    assert tel.metrics.counter_value("engine_runs_total", engine="batched") == 32


# -- gate enforcement + emission (script mode) -----------------------------


def main(argv: list[str] | None = None) -> int:
    from bench_common import write_bench_json

    parser = argparse.ArgumentParser(description="telemetry overhead gates")
    parser.add_argument(
        "--emit-json", type=str, default="BENCH_telemetry.json", metavar="PATH"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"reduced size; relax the disabled gate to "
        f"{SMOKE_DISABLED_GATE_PCT:.0f}%%",
    )
    parser.add_argument("--stride", type=int, default=64)
    args = parser.parse_args(argv)
    if args.stride < 64:
        parser.error("the enabled-mode gate is specified for stride >= 64")

    reps = 256 if args.smoke else 1024
    repeats = 5 if args.smoke else 7
    inner = 12 if args.smoke else 4
    disabled_gate = SMOKE_DISABLED_GATE_PCT if args.smoke else DISABLED_GATE_PCT

    results = measure_overhead(
        reps=reps, repeats=repeats, stride=args.stride, inner=inner
    )
    results["gates"] = {
        "disabled_pct": disabled_gate,
        "enabled_pct": ENABLED_GATE_PCT,
        "smoke": args.smoke,
    }
    print(
        f"batched LESK reps={reps}: baseline {results['baseline_s']:.3f}s, "
        f"disabled {results['disabled_s']:.3f}s "
        f"({results['overhead_disabled_pct']:+.2f}%), "
        f"enabled(stride {args.stride}) {results['enabled_s']:.3f}s "
        f"({results['overhead_enabled_pct']:+.2f}%)"
    )
    write_bench_json(args.emit_json, "bench_telemetry", results)

    failed = False
    if results["overhead_disabled_pct"] > disabled_gate:
        print(
            f"GATE FAILED: disabled-mode overhead "
            f"{results['overhead_disabled_pct']:.2f}% > {disabled_gate:.0f}%",
            file=sys.stderr,
        )
        failed = True
    if results["overhead_enabled_pct"] > ENABLED_GATE_PCT:
        print(
            f"GATE FAILED: enabled-mode overhead "
            f"{results['overhead_enabled_pct']:.2f}% > {ENABLED_GATE_PCT:.0f}%",
            file=sys.stderr,
        )
        failed = True
    if not failed:
        print("telemetry overhead gates passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

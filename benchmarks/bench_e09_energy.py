"""Benchmark target regenerating experiment T9 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t9_energy(benchmark):
    run_experiment_benchmark(benchmark, "T9")

"""Benchmark target regenerating experiment F2 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_f2_success_curve(benchmark):
    run_experiment_benchmark(benchmark, "F2")

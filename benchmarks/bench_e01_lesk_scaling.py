"""Benchmark target regenerating experiment T1 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_t1_lesk_scaling(benchmark):
    run_experiment_benchmark(benchmark, "T1")

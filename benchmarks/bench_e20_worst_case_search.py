"""Benchmark target regenerating experiment A8 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a8_worst_case_search(benchmark):
    run_experiment_benchmark(benchmark, "A8")

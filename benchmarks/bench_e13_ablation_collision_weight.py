"""Benchmark target regenerating experiment A1 (see DESIGN.md section 2)."""

from conftest import run_experiment_benchmark


def test_a1_ablation_collision_weight(benchmark):
    run_experiment_benchmark(benchmark, "A1")

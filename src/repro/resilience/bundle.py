"""Self-contained repro bundles for invariant violations.

When the runtime auditor trips, debugging needs more than a message: it
needs a recipe that *re-runs the offending execution*.  A
:class:`ReproBundle` captures everything deterministic about the run --
root seed, engine, protocol and adversary parameters, the fault-model
spec, and the offending slot window -- as plain JSON, so it can be
attached to an :class:`~repro.errors.InvariantViolationError`, written to
disk, mailed around, and replayed later with::

    python -m repro replay violation.json

(see :mod:`repro.resilience.replay`).  Bundles are intentionally
schema-stable plain data: no pickling, no object graphs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ReproBundle", "BUNDLE_SCHEMA_VERSION"]

#: Bump when the bundle layout changes incompatibly.
BUNDLE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ReproBundle:
    """Replayable description of one invariant violation.

    ``slot_start``/``slot_end`` delimit the offending window ``[start,
    end)`` -- for a budget violation the over-jammed window, for a channel
    or election violation the single slot ``[s, s+1)`` where the invariant
    broke.
    """

    #: Which invariant broke: ``"budget"``, ``"channel"`` or ``"election"``.
    invariant: str
    #: Human-readable account of the violation.
    detail: str
    #: Offending slot window ``[slot_start, slot_end)``.
    slot_start: int
    slot_end: int
    #: Root seed of the run (None when the run was seeded by entropy --
    #: such a violation is real but not replayable).
    seed: int | None = None
    #: Engine that produced the run: ``"faithful"``, ``"fast"``,
    #: ``"batched"`` or ``"unknown"``.
    engine: str = "unknown"
    n: int | None = None
    protocol: str | None = None
    T: int | None = None
    eps: float | None = None
    max_slots: int | None = None
    #: Adversary registry name (``"overbudget:"`` prefix marks the cheating
    #: test harness that bypasses its budget clamp).
    adversary: str | None = None
    #: :meth:`repro.resilience.faults.FaultModel.to_jsonable` spec, if any.
    faults: dict | None = None
    #: Batched-engine column the violation occurred in, if applicable.
    column: int | None = None
    #: Extra protocol parameters (e.g. ``lesu_c``).
    params: dict = field(default_factory=dict)
    schema_version: int = BUNDLE_SCHEMA_VERSION

    @property
    def replayable(self) -> bool:
        """Whether the bundle carries enough to reconstruct the run."""
        return (
            self.seed is not None
            and self.n is not None
            and self.protocol is not None
            and self.T is not None
            and self.eps is not None
            and self.adversary is not None
        )

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI output)."""
        lines = [
            f"invariant : {self.invariant}",
            f"detail    : {self.detail}",
            f"window    : [{self.slot_start}, {self.slot_end})",
            f"engine    : {self.engine}",
        ]
        if self.column is not None:
            lines.append(f"column    : {self.column}")
        lines.append(
            f"run       : n={self.n} protocol={self.protocol} "
            f"T={self.T} eps={self.eps} adversary={self.adversary} "
            f"seed={self.seed}"
        )
        if self.faults:
            lines.append(f"faults    : {json.dumps(self.faults, sort_keys=True)}")
        lines.append(f"replayable: {self.replayable}")
        return "\n".join(lines)

    # -- JSON round-trip ---------------------------------------------------

    def to_jsonable(self) -> dict:
        """The bundle as a plain JSON-serializable dict."""
        return asdict(self)

    @classmethod
    def from_jsonable(cls, data: dict) -> "ReproBundle":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"bundle must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("schema_version", BUNDLE_SCHEMA_VERSION)
        if version != BUNDLE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported bundle schema version {version!r} "
                f"(this build reads version {BUNDLE_SCHEMA_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(f"unknown bundle fields: {unknown}")
        missing = [
            name
            for name in ("invariant", "detail", "slot_start", "slot_end")
            if name not in data
        ]
        if missing:
            raise ConfigurationError(f"bundle missing required fields: {missing}")
        return cls(**data)

    def save(self, path: "str | Path") -> Path:
        """Write the bundle as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_jsonable(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ReproBundle":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bundle {path} is not valid JSON: {exc}") from exc
        return cls.from_jsonable(data)

"""Differential mode: scalar vs fast vs batched semantics in lockstep.

The three engines cannot be compared run-for-run -- they consume their RNG
streams differently (per-station coin flips vs one binomial draw vs a
batched binomial), so their bitstreams legitimately diverge.  What *must*
agree is the **semantics**: given the same transmitter counts, jam
decisions and fault corruption, the per-station adapter + feedback path,
the shared-state scalar policy, and the vectorized column policy have to
produce the same probabilities, observations and halting decisions slot by
slot.  This module runs exactly that comparison.

Each *stack* is one semantic implementation driven by a shared world:

* ``scalar``  -- real :class:`~repro.protocols.base.UniformStationAdapter`
  instances (one per station) fed scripted per-station uniforms, with
  :func:`~repro.channel.feedback.feedback_for` delivery and a scalar
  :class:`~repro.adversary.budget.JammingBudget`;
* ``fast``    -- one shared :class:`~repro.protocols.lesk.LESKPolicy`
  (the fast engine's semantics), same scalar budget class;
* ``vector``  -- a :class:`~repro.protocols.vector.VectorLESKPolicy` with
  ``reps=1`` and a :class:`~repro.adversary.budget.JammingBudgetArray`,
  with the batched engine's vectorized observation/corruption expressions;
* ``vectorized`` -- the vectorized *faithful* engine's semantics
  (:mod:`repro.sim.vectorized`): a width-``n`` vector policy, one column
  per station cell, per-cell transmit decisions ``U < p`` from the shared
  uniforms, and the engine's strong-CD observation/halting expressions;
* ``megakernel`` -- the slot-blocked engine's update arithmetic
  (:mod:`repro.sim.megakernel`): the ``_LESKLadder`` exponent state with
  its in-place ``exp2`` probability fast path, the pluggable LESK outcome
  kernel (:mod:`repro.sim.kernels`), and the collision-only fold, stepped
  one slot at a time so any drift between the fused block arithmetic and
  the per-slot policies diverges here.

The shared world fixes, per slot: one uniform per station (transmit iff
``U < p``, the adapters' own coupling), the churn/skew participation mask,
the fault corruption flags, and a jam-intent sequence that is a
*deterministic function of public history* -- either one of the scripted
patterns in :data:`DETERMINISTIC_ADVERSARIES`, or one of the suite's
adaptive strategies (:data:`ADAPTIVE_DIFFERENTIAL_ADVERSARIES`): those
condition only on the trace / protocol state and never draw randomness,
so the scalar stacks can host the real scalar
:class:`~repro.adversary.base.JammingStrategy` and the vector stack the
real :class:`~repro.adversary.vector.VectorJammingStrategy`, exercising
the scalar-vs-vector adversary pair in the same lockstep harness.
(*Randomized* strategies would entangle RNG streams and stay excluded.)
Every stack computes its own ``p``, its own jam intent, its own budget
grant and its own observed state; per-slot fingerprints are compared with
a small float tolerance (``np.exp2(-u)`` and ``2.0**-u`` may differ in
the last ulp).

:func:`run_differential` scans and reports the first divergence;
:func:`first_diverging_slot` binary-searches it by re-running prefixes
(the bisection advertised by the auditor's differential mode).  A
``tamper=(stack, slot)`` option deliberately corrupts one stack's
observation in one slot -- the self-test proving the checker detects real
divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.adversary.base import AdversaryView
from repro.adversary.budget import JammingBudget, JammingBudgetArray
from repro.adversary.suite import STRATEGY_REGISTRY
from repro.adversary.vector import BATCHED_STRATEGY_REGISTRY, BatchAdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.faulty import corrupt_observed
from repro.channel.feedback import feedback_for
from repro.errors import ConfigurationError
from repro.protocols.base import UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.vector import VectorLESKPolicy
from repro.resilience.faults import NO_FAULTS, FaultModel
from repro.rng import make_rng
from repro.types import Action, CDMode, ChannelState, PerceivedState, SlotFeedback

__all__ = [
    "DifferentialConfig",
    "SlotFingerprint",
    "Divergence",
    "DifferentialReport",
    "run_differential",
    "first_diverging_slot",
    "STACKS",
    "DETERMINISTIC_ADVERSARIES",
    "ADAPTIVE_DIFFERENTIAL_ADVERSARIES",
]

STACKS = ("scalar", "fast", "vector", "vectorized", "megakernel")

#: Scripted jam-intent patterns (slot -> want-jam); cover
#: never/always/periodic/bursty without any adversary state.  (The
#: "periodic-front" here is the local 4T-period script, not the suite's
#: Lemma 2.7 jammer -- the scripts are private to differential mode.)
DETERMINISTIC_ADVERSARIES = ("none", "saturating", "periodic-front", "burst")

#: Suite strategies usable in differential mode: the adaptive family is
#: deterministic given public history (no RNG draws), so each stack hosts
#: its own instance -- scalar strategies for the scalar/fast stacks, their
#: vector counterparts for the vector stack -- and the harness checks the
#: *pair* agrees slot by slot.  Randomized strategies ("random") stay out.
ADAPTIVE_DIFFERENTIAL_ADVERSARIES = (
    "reactive",
    "single-suppressor",
    "estimator-attacker",
    "silence-masker",
    "collision-forcer",
)

#: ``2.0**-u`` (scalar) vs ``np.exp2(-u)`` (vector) may differ by one ulp.
FLOAT_TOL = 1e-12

_ERASED = -1  # observed-state code for a fault-erased slot


def _want_jam(adversary: str, slot: int, T: int) -> bool:
    if adversary == "none":
        return False
    if adversary == "saturating":
        return True
    if adversary == "periodic-front":
        # Jam the front half of each 4T-slot period.
        return (slot % (4 * T)) < 2 * T
    if adversary == "burst":
        # T-slot bursts, one period in three.
        return (slot // T) % 3 == 0
    raise ConfigurationError(
        f"unknown deterministic adversary {adversary!r}; "
        f"known: {DETERMINISTIC_ADVERSARIES}"
    )


class _TraceShim:
    """Minimal stand-in for :class:`~repro.channel.trace.ChannelTrace`.

    Records the *pre-fault-corruption* observed state per slot -- exactly
    what the real engines' traces feed the adversary (the jammer knows what
    it jammed and is not fooled by corrupted feedback).  Only the query the
    adaptive suite actually performs (``observed_state``) is implemented.
    """

    __slots__ = ("_observed",)

    def __init__(self) -> None:
        self._observed: list[int] = []

    def record(self, slot: int, observed: ChannelState) -> None:
        assert slot == len(self._observed), "slots must be recorded in order"
        self._observed.append(int(observed))

    def observed_state(self, slot: int) -> ChannelState:
        return ChannelState(self._observed[slot])


class _ScalarIntent:
    """Jam intent for a scalar-semantics stack: a scripted pattern, or a
    real (stateful) scalar strategy instance fed a minimal trace shim."""

    def __init__(self, config: "DifferentialConfig") -> None:
        self.config = config
        self.trace = _TraceShim()
        self.strategy = (
            STRATEGY_REGISTRY[config.adversary](config.T, config.eps)
            if config.adversary in ADAPTIVE_DIFFERENTIAL_ADVERSARIES
            else None
        )

    def want(self, slot: int, budget: JammingBudget, p: float, u: float) -> bool:
        if self.strategy is None:
            return _want_jam(self.config.adversary, slot, self.config.T)
        view = AdversaryView(
            slot=slot,
            n=self.config.n,
            trace=self.trace,  # type: ignore[arg-type]  # duck-typed shim
            budget=budget,
            transmit_probability=p,
            protocol_u=u,
        )
        # rng=None asserts the strategy is deterministic: any draw raises.
        return bool(self.strategy.wants_jam(view, None))

    def observe(self, slot: int, observed: ChannelState) -> None:
        if self.strategy is not None:
            self.trace.record(slot, observed)


class _VectorIntent:
    """Jam intent for the vector stack: the scripted pattern lifted to a
    1-column mask, or the real vectorized strategy counterpart."""

    def __init__(self, config: "DifferentialConfig") -> None:
        self.config = config
        self.strategy = (
            BATCHED_STRATEGY_REGISTRY[config.adversary](config.T, config.eps)
            if config.adversary in ADAPTIVE_DIFFERENTIAL_ADVERSARIES
            else None
        )
        if self.strategy is not None:
            self.strategy.reset()

    def want(
        self,
        slot: int,
        budget: JammingBudgetArray,
        p: np.ndarray,
        u: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        if self.strategy is None:
            return np.array([_want_jam(self.config.adversary, slot, self.config.T)])
        view = BatchAdversaryView(
            slot=slot,
            n=self.config.n,
            reps=1,
            budget=budget,
            transmit_probabilities=p,
            protocol_u=u,
            active=active,
        )
        return np.asarray(self.strategy.wants_jam_batch(view, None), dtype=bool)

    def observe(self, slot: int, observed: np.ndarray, active: np.ndarray) -> None:
        if self.strategy is not None:
            self.strategy.observe_outcomes(slot, observed, active)


@dataclass(frozen=True)
class DifferentialConfig:
    """One differential-mode comparison run (LESK, strong-CD)."""

    n: int
    eps: float = 0.5
    T: int = 8
    adversary: str = "none"
    max_slots: int = 512
    seed: int = 0
    faults: FaultModel = NO_FAULTS
    #: Deliberately corrupt one stack's observation: ``(stack, slot)``.
    tamper: "tuple[str, int] | None" = None

    def __post_init__(self):
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.faults.has_churn or self.faults.skew_rate:
            # Churn/skew make the faithful engine genuinely non-uniform (a
            # station that misses a slot misses that observation, so its
            # policy state drifts from the shared one); the uniform engines
            # approximate this by probability thinning.  Only corruption
            # faults -- which rewrite the *shared* observation identically
            # for everyone -- keep the three semantics comparable slot by
            # slot.  See docs/resilience.md.
            raise ConfigurationError(
                "differential mode supports corruption faults only "
                "(flip/erase/downgrade); churn and clock skew legitimately "
                "desynchronize the faithful engine from the uniform ones"
            )
        if self.max_slots < 1:
            raise ConfigurationError(f"max_slots must be >= 1, got {self.max_slots}")
        known = DETERMINISTIC_ADVERSARIES + ADAPTIVE_DIFFERENTIAL_ADVERSARIES
        if self.adversary not in known:
            raise ConfigurationError(
                f"differential mode needs a deterministic (scripted or "
                f"history-conditioned) adversary, got {self.adversary!r}; "
                f"known: {known}"
            )
        if self.tamper is not None and self.tamper[0] not in STACKS:
            raise ConfigurationError(
                f"tamper stack must be one of {STACKS}, got {self.tamper[0]!r}"
            )


@dataclass(frozen=True)
class SlotFingerprint:
    """Observable behaviour of one stack in one slot."""

    slot: int
    p: float
    k: int
    jammed: bool
    observed: int  # ChannelState code; _ERASED for a withheld observation
    halted: bool
    u: float

    def matches(self, other: "SlotFingerprint") -> bool:
        """True iff the fingerprints agree: exact on the discrete fields,
        within ``FLOAT_TOL`` on ``p`` and ``u`` (NaN == NaN for ``u``)."""
        if (self.k, self.jammed, self.observed, self.halted) != (
            other.k,
            other.jammed,
            other.observed,
            other.halted,
        ):
            return False
        if not math.isclose(self.p, other.p, rel_tol=0.0, abs_tol=FLOAT_TOL):
            return False
        if math.isnan(self.u) and math.isnan(other.u):
            return True
        return math.isclose(self.u, other.u, rel_tol=0.0, abs_tol=FLOAT_TOL)


@dataclass(frozen=True)
class Divergence:
    """First slot where two stacks disagreed."""

    slot: int
    stack_a: str
    stack_b: str
    fingerprint_a: SlotFingerprint
    fingerprint_b: SlotFingerprint

    def describe(self) -> str:
        """One-line human-readable account of the divergence."""
        return (
            f"stacks {self.stack_a!r} and {self.stack_b!r} diverge at slot "
            f"{self.slot}: {self.fingerprint_a} vs {self.fingerprint_b}"
        )


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential comparison."""

    config: DifferentialConfig
    slots_compared: int
    divergence: "Divergence | None"

    @property
    def agreed(self) -> bool:
        return self.divergence is None


class _SharedWorld:
    """Precomputed shared randomness: uniforms, churn masks, fault flags.

    Everything is realized eagerly so prefix re-runs (the bisection) replay
    the identical world.
    """

    def __init__(self, config: DifferentialConfig) -> None:
        rng = make_rng(config.seed)
        S, n = config.max_slots, config.n
        self.uniforms = rng.random((S, n))
        if config.faults.enabled:
            realized = config.faults.realize(n, S, rng.spawn(1)[0])
            self.participating = np.empty((S, n), dtype=bool)
            self.flags = []
            for slot in range(S):
                mask = realized.station_awake(slot)
                self.participating[slot] = mask
                self.flags.append(realized.begin_slot(slot, int(mask.sum())))
        else:
            self.participating = np.ones((S, n), dtype=bool)
            self.flags = [None] * S


class _ScriptedRng:
    """Stands in for a station's RNG: returns the pre-set shared uniform."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def random(self) -> float:
        return self.value


def _tampered(observed: "ChannelState | None") -> "ChannelState | None":
    """Deliberate single-slot corruption used by the ``tamper`` option."""
    if observed is ChannelState.NULL:
        return ChannelState.COLLISION
    return ChannelState.NULL


class _ScalarStack:
    """Real per-station adapters + feedback_for + scalar budget."""

    name = "scalar"

    def __init__(self, config: DifferentialConfig) -> None:
        self.config = config
        self.budget = JammingBudget(config.T, config.eps)
        self.intent = _ScalarIntent(config)
        self.stations = []
        self.rngs = []
        for sid in range(config.n):
            adapter = UniformStationAdapter(
                LESKPolicy(config.eps), cd_mode=CDMode.STRONG
            )
            rng = _ScriptedRng()
            adapter.reset(sid, rng)
            self.stations.append(adapter)
            self.rngs.append(rng)
        self.halted = False

    def step(self, slot: int, world: _SharedWorld) -> SlotFingerprint:
        cfg = self.config
        part = world.participating[slot]
        flags = world.flags[slot]
        hints = [
            s.transmit_probability_hint()
            for s, alive in zip(self.stations, part)
            if alive and not s.done
        ]
        p = hints[0] if hints else 0.0
        if hints and (max(hints) - min(hints)) > FLOAT_TOL:
            # Per-station probabilities drifted apart: uniformity broke
            # inside this stack.  Surface it as an impossible fingerprint.
            p = math.nan
        u = next(
            (
                s.u_hint()
                for s, alive in zip(self.stations, part)
                if alive and not s.done
            ),
            math.nan,
        )
        actions = [Action.LISTEN] * cfg.n
        k = 0
        for sid, station in enumerate(self.stations):
            if not part[sid] or station.done:
                continue
            self.rngs[sid].value = world.uniforms[slot, sid]
            action = station.begin_slot(slot)
            actions[sid] = action
            if action is Action.TRANSMIT:
                k += 1
        jammed = self.budget.grant(self.intent.want(slot, self.budget, p, u))
        outcome = resolve_slot(slot, k, jammed)
        self.intent.observe(slot, outcome.observed_state)
        observed = (
            corrupt_observed(outcome.observed_state, flags)
            if flags is not None
            else outcome.observed_state
        )
        if cfg.tamper == (self.name, slot):
            observed = _tampered(observed)
        for sid, station in enumerate(self.stations):
            # Deliver end_slot exactly to the stations that got begin_slot.
            if not part[sid] or station.done:
                continue
            if observed is None:
                fb = SlotFeedback(
                    transmitted=actions[sid] is Action.TRANSMIT,
                    perceived=PerceivedState.UNKNOWN,
                )
            else:
                fb = feedback_for(
                    transmitted=actions[sid] is Action.TRANSMIT,
                    observed=observed,
                    mode=CDMode.STRONG,
                )
            station.end_slot(slot, fb)
        self.halted = outcome.successful_single and observed is ChannelState.SINGLE
        return SlotFingerprint(
            slot=slot,
            p=p,
            k=k,
            jammed=jammed,
            observed=_ERASED if observed is None else int(observed),
            halted=self.halted,
            u=u,
        )


class _FastStack:
    """Shared scalar LESKPolicy (the fast engine's semantics)."""

    name = "fast"

    def __init__(self, config: DifferentialConfig) -> None:
        self.config = config
        self.budget = JammingBudget(config.T, config.eps)
        self.intent = _ScalarIntent(config)
        self.policy = LESKPolicy(config.eps)
        self.halted = False

    def step(self, slot: int, world: _SharedWorld) -> SlotFingerprint:
        cfg = self.config
        part = world.participating[slot]
        flags = world.flags[slot]
        p = self.policy.transmit_probability(slot)
        u = self.policy.u
        if p <= 0.0:
            k = 0
        else:
            k = int(np.count_nonzero(part & (world.uniforms[slot] < p)))
        jammed = self.budget.grant(self.intent.want(slot, self.budget, p, u))
        outcome = resolve_slot(slot, k, jammed)
        self.intent.observe(slot, outcome.observed_state)
        observed = (
            corrupt_observed(outcome.observed_state, flags)
            if flags is not None
            else outcome.observed_state
        )
        if cfg.tamper == (self.name, slot):
            observed = _tampered(observed)
        self.halted = outcome.successful_single and observed is ChannelState.SINGLE
        if not self.halted and observed is not None:
            self.policy.observe(slot, observed)
        return SlotFingerprint(
            slot=slot,
            p=p,
            k=k,
            jammed=jammed,
            observed=_ERASED if observed is None else int(observed),
            halted=self.halted,
            u=u,
        )


class _VectorStack:
    """VectorLESKPolicy (reps=1) + JammingBudgetArray + vectorized channel."""

    name = "vector"

    def __init__(self, config: DifferentialConfig) -> None:
        self.config = config
        self.budget = JammingBudgetArray(config.T, config.eps, reps=1)
        self.intent = _VectorIntent(config)
        self.policy = VectorLESKPolicy(config.eps, reps=1)
        self.active = np.ones(1, dtype=bool)
        self.halted = False

    def step(self, slot: int, world: _SharedWorld) -> SlotFingerprint:
        cfg = self.config
        part = world.participating[slot]
        flags = world.flags[slot]
        p_arr = self.policy.transmit_probabilities(slot)
        p = float(p_arr[0])
        u = float(self.policy.u[0])
        if p <= 0.0:
            k = 0
        else:
            k = int(np.count_nonzero(part & (world.uniforms[slot] < p)))
        want = self.intent.want(slot, self.budget, p_arr, self.policy.u, self.active)
        jammed = bool(self.budget.grant(want)[0])
        k_arr = np.array([k], dtype=np.int64)
        # The batched engine's observation expressions, verbatim.
        observed_arr = np.where(
            np.array([jammed]),
            np.int8(ChannelState.COLLISION),
            np.minimum(k_arr, 2).astype(np.int8),
        )
        # Pre-fault-corruption feedback, mirroring the batched engine's
        # observe_outcomes hook placement.
        self.intent.observe(slot, observed_arr, self.active)
        erased = False
        if flags is not None:
            if flags.downgrade:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.SINGLE),
                    np.int8(ChannelState.COLLISION),
                    observed_arr,
                )
            if flags.flip:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.NULL),
                    np.int8(ChannelState.COLLISION),
                    np.where(
                        observed_arr == np.int8(ChannelState.COLLISION),
                        np.int8(ChannelState.NULL),
                        observed_arr,
                    ),
                )
            erased = flags.erase
        if cfg.tamper == (self.name, slot):
            tampered = _tampered(None if erased else ChannelState(int(observed_arr[0])))
            erased = tampered is None
            if not erased:
                observed_arr = np.array([np.int8(tampered)])
        heard_single = (
            k == 1 and not jammed and not erased
            and int(observed_arr[0]) == int(ChannelState.SINGLE)
        )
        self.halted = heard_single
        if not self.halted:
            self.policy.observe_batch(
                slot, observed_arr, self.active & ~np.array([erased])
            )
        return SlotFingerprint(
            slot=slot,
            p=p,
            k=k,
            jammed=jammed,
            observed=_ERASED if erased else int(observed_arr[0]),
            halted=self.halted,
            u=u,
        )


class _VectorizedFaithfulStack:
    """The vectorized faithful engine's per-cell semantics, one rep.

    Width-``n`` :class:`VectorLESKPolicy` (one column per station cell),
    per-cell transmit decisions from the shared uniforms, and the
    strong-CD observation/halting expressions of
    :func:`repro.sim.vectorized.simulate_stations_vectorized` -- verbatim,
    so a semantic drift in that engine's update path diverges here.
    """

    name = "vectorized"

    def __init__(self, config: DifferentialConfig) -> None:
        self.config = config
        self.budget = JammingBudgetArray(config.T, config.eps, reps=1)
        self.intent = _VectorIntent(config)
        self.policy = VectorLESKPolicy(config.eps, reps=config.n)
        self.cell_done = np.zeros(config.n, dtype=bool)
        self.rep_active = np.ones(1, dtype=bool)
        self.halted = False

    def step(self, slot: int, world: _SharedWorld) -> SlotFingerprint:
        cfg = self.config
        part = world.participating[slot]
        flags = world.flags[slot]
        p_vec = self.policy.transmit_probabilities(slot)
        u_vec = self.policy.u
        alive = part & ~self.cell_done
        live_p = p_vec[alive]
        p = float(live_p[0]) if live_p.size else 0.0
        if live_p.size and float(live_p.max() - live_p.min()) > FLOAT_TOL:
            p = math.nan
        u = float(u_vec[alive][0]) if alive.any() else math.nan
        # The engine's station-0 probe hints (0.0 once that cell is done).
        p_hint = 0.0 if self.cell_done[0] else float(p_vec[0])
        transmit = alive & (world.uniforms[slot] < p_vec)
        k = int(np.count_nonzero(transmit))
        want = self.intent.want(
            slot,
            self.budget,
            np.array([p_hint]),
            u_vec[:1],
            self.rep_active,
        )
        jammed = bool(self.budget.grant(want)[0])
        # The engine's channel/corruption expressions, one rep wide.
        observed_arr = np.where(
            np.array([jammed]),
            np.int8(ChannelState.COLLISION),
            np.minimum(np.array([k], dtype=np.int64), 2).astype(np.int8),
        )
        self.intent.observe(slot, observed_arr, self.rep_active)
        erased = False
        if flags is not None:
            if flags.downgrade:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.SINGLE),
                    np.int8(ChannelState.COLLISION),
                    observed_arr,
                )
            if flags.flip:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.NULL),
                    np.int8(ChannelState.COLLISION),
                    np.where(
                        observed_arr == np.int8(ChannelState.COLLISION),
                        np.int8(ChannelState.NULL),
                        observed_arr,
                    ),
                )
            erased = flags.erase
        if cfg.tamper == (self.name, slot):
            tampered = _tampered(None if erased else ChannelState(int(observed_arr[0])))
            erased = tampered is None
            if not erased:
                observed_arr = np.array([np.int8(tampered)])
        heard = (
            k == 1 and not jammed and not erased
            and int(observed_arr[0]) == int(ChannelState.SINGLE)
        )
        self.halted = heard
        if not self.halted:
            observers = alive if not erased else np.zeros(cfg.n, dtype=bool)
            states = np.broadcast_to(observed_arr, (cfg.n,))
            self.policy.observe_batch(slot, states, observers)
            self.cell_done |= self.policy.completed
        return SlotFingerprint(
            slot=slot,
            p=p,
            k=k,
            jammed=jammed,
            observed=_ERASED if erased else int(observed_arr[0]),
            halted=self.halted,
            u=u,
        )


class _MegakernelStack:
    """The megakernel's ladder + outcome-kernel arithmetic, one rep.

    Drives the slot-blocked engine's update state
    (:class:`repro.sim.megakernel._LESKLadder`) a slot at a time: the
    probability comes from the ladder's ``prepare_group`` fast path (the
    in-place ``exp2(-u)`` the engine feeds its fused binomial draws),
    Collision outcomes fold through ``apply_collision_only`` (the engine's
    jam-run / all-collision path) and Null/Single outcomes through the
    pluggable LESK kernel -- so a drift in any of those reductions
    diverges against the per-slot stacks.  Faults are folded from the
    *observed* state exactly as :meth:`VectorLESKPolicy.observe_batch`
    would (the engine itself delegates faulty cells to the batched
    engine, but the arithmetic contract is observed-state based either
    way).
    """

    name = "megakernel"

    def __init__(self, config: DifferentialConfig) -> None:
        from repro.sim.kernels import get_lesk_kernel
        from repro.sim.megakernel import _LESKLadder

        self.config = config
        self.budget = JammingBudgetArray(config.T, config.eps, reps=1)
        self.intent = _VectorIntent(config)
        self.ladder = _LESKLadder(
            VectorLESKPolicy(config.eps, reps=1), get_lesk_kernel("numpy")
        )
        self.active = np.ones(1, dtype=bool)
        self.halted = False

    def step(self, slot: int, world: _SharedWorld) -> SlotFingerprint:
        cfg = self.config
        part = world.participating[slot]
        flags = world.flags[slot]
        ladder = self.ladder
        u = float(ladder.u[0])
        # The engine's probability path: prepare a zero-length jam run
        # plus the free row (no exponent advance).
        p_arr = ladder.prepare_group(0, True, 1)[0].copy()
        p = float(p_arr[0])
        if p <= 0.0:
            k = 0
        else:
            k = int(np.count_nonzero(part & (world.uniforms[slot] < p)))
        want = self.intent.want(slot, self.budget, p_arr, ladder.u, self.active)
        jammed = bool(self.budget.grant(want)[0])
        k_arr = np.array([k], dtype=np.int64)
        observed_arr = np.where(
            np.array([jammed]),
            np.int8(ChannelState.COLLISION),
            np.minimum(k_arr, 2).astype(np.int8),
        )
        self.intent.observe(slot, observed_arr, self.active)
        erased = False
        if flags is not None:
            if flags.downgrade:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.SINGLE),
                    np.int8(ChannelState.COLLISION),
                    observed_arr,
                )
            if flags.flip:
                observed_arr = np.where(
                    observed_arr == np.int8(ChannelState.NULL),
                    np.int8(ChannelState.COLLISION),
                    np.where(
                        observed_arr == np.int8(ChannelState.COLLISION),
                        np.int8(ChannelState.NULL),
                        observed_arr,
                    ),
                )
            erased = flags.erase
        if cfg.tamper == (self.name, slot):
            tampered = _tampered(None if erased else ChannelState(int(observed_arr[0])))
            erased = tampered is None
            if not erased:
                observed_arr = np.array([np.int8(tampered)])
        heard_single = (
            k == 1 and not jammed and not erased
            and int(observed_arr[0]) == int(ChannelState.SINGLE)
        )
        self.halted = heard_single
        ladder.commit_jams()
        if not self.halted and not erased:
            observed = int(observed_arr[0])
            if observed == int(ChannelState.COLLISION):
                ladder.apply_collision_only()
            else:
                # Null steps down, Single is a no-op -- both via the
                # engine's pluggable kernel on the observed-state count.
                k_eff = 0 if observed == int(ChannelState.NULL) else 1
                ladder.apply_free_outcome(np.array([k_eff], dtype=np.int64))
        return SlotFingerprint(
            slot=slot,
            p=p,
            k=k,
            jammed=jammed,
            observed=_ERASED if erased else int(observed_arr[0]),
            halted=self.halted,
            u=u,
        )


_STACK_TYPES = {
    "scalar": _ScalarStack,
    "fast": _FastStack,
    "vector": _VectorStack,
    "vectorized": _VectorizedFaithfulStack,
    "megakernel": _MegakernelStack,
}


def _run_stack(
    name: str, config: DifferentialConfig, world: _SharedWorld, upto: "int | None" = None
) -> list[SlotFingerprint]:
    """Run one stack over the shared world; stop at halt or *upto* slots."""
    stack = _STACK_TYPES[name](config)
    limit = config.max_slots if upto is None else min(upto, config.max_slots)
    fingerprints = []
    for slot in range(limit):
        fingerprints.append(stack.step(slot, world))
        if stack.halted:
            break
    return fingerprints


def _first_mismatch(
    sequences: dict[str, list[SlotFingerprint]]
) -> "Divergence | None":
    names = list(sequences)
    length = min(len(s) for s in sequences.values())
    for slot in range(length):
        ref_name = names[0]
        ref = sequences[ref_name][slot]
        for other in names[1:]:
            fp = sequences[other][slot]
            if not ref.matches(fp):
                return Divergence(
                    slot=slot,
                    stack_a=ref_name,
                    stack_b=other,
                    fingerprint_a=ref,
                    fingerprint_b=fp,
                )
    # Equal prefixes but different lengths: one stack halted, another kept
    # going -- the first extra slot is the divergence.
    lengths = {name: len(s) for name, s in sequences.items()}
    if len(set(lengths.values())) > 1:
        short = min(lengths, key=lengths.get)
        long = max(lengths, key=lengths.get)
        return Divergence(
            slot=length,
            stack_a=short,
            stack_b=long,
            fingerprint_a=sequences[short][length - 1],
            fingerprint_b=sequences[long][length],
        )
    return None


def run_differential(config: DifferentialConfig) -> DifferentialReport:
    """Run all three stacks over one shared world and compare every slot."""
    world = _SharedWorld(config)
    sequences = {name: _run_stack(name, config, world) for name in STACKS}
    divergence = _first_mismatch(sequences)
    return DifferentialReport(
        config=config,
        slots_compared=min(len(s) for s in sequences.values()),
        divergence=divergence,
    )


def first_diverging_slot(config: DifferentialConfig) -> "int | None":
    """Binary-search the first diverging slot by re-running prefixes.

    The predicate "all stacks produce identical fingerprints for the first
    ``m`` slots" is monotone in ``m`` (stacks are deterministic functions
    of the shared world), so bisection applies: each probe re-runs every
    stack for ``m`` slots and compares the full prefix.  Returns ``None``
    when the stacks agree over the whole horizon.
    """
    world = _SharedWorld(config)

    def prefix_agrees(m: int) -> bool:
        seqs = {name: _run_stack(name, config, world, upto=m) for name in STACKS}
        div = _first_mismatch(seqs)
        # A halt-length mismatch only counts once the longer run is within
        # the probe prefix; _first_mismatch already handles it.
        return div is None or div.slot >= m

    full = {name: _run_stack(name, config, world) for name in STACKS}
    div = _first_mismatch(full)
    if div is None:
        return None
    lo, hi = 0, div.slot + 1  # prefix of lo agrees; prefix of hi diverges
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if prefix_agrees(mid):
            lo = mid
        else:
            hi = mid
    return lo  # first diverging slot index (prefix of length lo agrees)

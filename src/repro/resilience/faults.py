"""Model-level fault injection: station churn, feedback corruption, skew.

PR 2 made the *harness* fault-tolerant (worker crashes, hangs, corrupt
checkpoints); this module stresses the simulated **model** itself.  A
:class:`FaultModel` declares, deterministically and seeded through
:mod:`repro.rng`, three composable fault families:

**Station churn** (cf. Augustine et al., *Robust Leader Election in a
Fast-Changing World*):

* ``crash_slots`` / ``crash_rate`` -- stations fail permanently, at listed
  slots or as independent per-slot Bernoulli trials;
* ``sleep_spans`` -- a station powers down for ``[start, end)`` and resumes
  with its state frozen;
* ``join_slots`` -- stations are dormant until their join slot, then start
  with fresh state.

**Feedback corruption** (the channel lies to everyone alike):

* ``flip_slots`` / ``flip_rate`` -- the observed state is flipped
  ``Null <-> Collision`` (note a fault *can* fabricate a Null, which the
  model's adversary cannot -- that is the point of injecting it);
* ``erase_slots`` / ``erase_rate`` -- feedback is erased: no station
  observes the slot (a successful Single goes unheard);
* ``downgrade_slots`` -- collision detection degrades for the slot
  (strong-CD behaves like weak/no-CD): a Single is reported as Collision,
  so a would-be winner does not learn it won.

**Clock skew**:

* ``skew_rate`` -- each awake station independently misses each slot
  (neither transmits nor hears it).

All realizations flow from ``(model, run seed)`` through
:class:`numpy.random.Generator` spawning, so a faulted run reproduces
bit-for-bit and the three engines can pin fixed-seed regressions.  The
engines consume two views of one realization:

* :class:`RealizedFaults` -- per-station schedule for the faithful engine
  and aggregate (count-level) per-slot state for the fast engine;
* :class:`BatchFaultState` -- the batched engine's vectorized fault masks
  (churn shared across columns, rate-based corruption drawn per column).

Uniform engines apply clock skew as transmit thinning
(``p_eff = p * (1 - skew_rate)``; exact for the transmitter-count law) --
per-station missed *observations* are only representable in the faithful
engine, which is the ground truth for skew.  See ``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FaultModel",
    "SlotFaults",
    "RealizedFaults",
    "BatchFaultState",
    "NO_FAULTS",
]


def _check_rate(name: str, rate: float) -> float:
    if not (0.0 <= rate <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {rate!r}")
    return float(rate)


def _check_slots(name: str, slots: Iterable[int]) -> tuple[int, ...]:
    out = tuple(int(s) for s in slots)
    for s in out:
        if s < 0:
            raise ConfigurationError(f"{name} entries must be >= 0, got {s}")
    return out


@dataclass(frozen=True)
class FaultModel:
    """Declarative, composable model-level fault specification.

    All fields default to "no fault"; :attr:`enabled` is False for the
    default instance, and every engine skips its fault path entirely in
    that case (the no-fault hot path is bit-identical to a build without
    this subsystem).
    """

    # -- station churn -----------------------------------------------------
    #: One (seeded-random) station crashes permanently at each listed slot.
    crash_slots: tuple[int, ...] = ()
    #: Per-slot probability that each awake station crashes permanently.
    crash_rate: float = 0.0
    #: One station sleeps during each listed ``[start, end)`` span.
    sleep_spans: tuple[tuple[int, int], ...] = ()
    #: One station stays dormant until each listed slot, then joins fresh.
    join_slots: tuple[int, ...] = ()
    # -- feedback corruption ----------------------------------------------
    #: Observed state flipped ``Null <-> Collision`` at these slots.
    flip_slots: tuple[int, ...] = ()
    #: Per-slot probability of a ``Null <-> Collision`` flip.
    flip_rate: float = 0.0
    #: Feedback erased (slot unobserved by everyone) at these slots.
    erase_slots: tuple[int, ...] = ()
    #: Per-slot probability of an erasure.
    erase_rate: float = 0.0
    #: Collision detection downgraded (Single reported as Collision) here.
    downgrade_slots: tuple[int, ...] = ()
    # -- clock skew --------------------------------------------------------
    #: Per-slot probability that each awake station misses the slot.
    skew_rate: float = 0.0

    def __post_init__(self):
        object.__setattr__(
            self, "crash_slots", _check_slots("crash_slots", self.crash_slots)
        )
        object.__setattr__(
            self, "join_slots", _check_slots("join_slots", self.join_slots)
        )
        for name in ("flip_slots", "erase_slots", "downgrade_slots"):
            object.__setattr__(self, name, _check_slots(name, getattr(self, name)))
        spans = tuple(
            (int(a), int(b)) for a, b in self.sleep_spans
        )
        for a, b in spans:
            if a < 0 or b <= a:
                raise ConfigurationError(
                    f"sleep_spans entries must satisfy 0 <= start < end, "
                    f"got ({a}, {b})"
                )
        object.__setattr__(self, "sleep_spans", spans)
        for name in ("crash_rate", "flip_rate", "erase_rate", "skew_rate"):
            _check_rate(name, getattr(self, name))

    @property
    def enabled(self) -> bool:
        """Whether any fault is configured at all."""
        return any(getattr(self, f.name) != f.default for f in fields(self)
                   if f.name not in ("crash_slots",)) or bool(self.crash_slots)

    @property
    def has_churn(self) -> bool:
        return bool(
            self.crash_slots
            or self.crash_rate
            or self.sleep_spans
            or self.join_slots
        )

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-data form for repro bundles and manifests."""
        return {
            "crash_slots": list(self.crash_slots),
            "crash_rate": self.crash_rate,
            "sleep_spans": [list(s) for s in self.sleep_spans],
            "join_slots": list(self.join_slots),
            "flip_slots": list(self.flip_slots),
            "flip_rate": self.flip_rate,
            "erase_slots": list(self.erase_slots),
            "erase_rate": self.erase_rate,
            "downgrade_slots": list(self.downgrade_slots),
            "skew_rate": self.skew_rate,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultModel":
        """Inverse of :meth:`to_jsonable`; validates like the constructor."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault model fields: {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "sleep_spans" in kwargs:
            kwargs["sleep_spans"] = tuple(
                tuple(span) for span in kwargs["sleep_spans"]
            )
        return cls(**kwargs)

    def realize(self, n: int, max_slots: int, rng: np.random.Generator) -> "RealizedFaults":
        """Realize this model for one run of *n* stations (scalar engines)."""
        return RealizedFaults(self, n, max_slots, rng)

    def realize_batch(
        self, n: int, reps: int, max_slots: int, rng: np.random.Generator
    ) -> "BatchFaultState":
        """Realize vectorized fault masks for the batched engine."""
        return BatchFaultState(self, n, reps, max_slots, rng)


#: Shared immutable "no faults" instance.
NO_FAULTS = FaultModel()


@dataclass(slots=True)
class SlotFaults:
    """Faults applying to one slot (scalar-engine view)."""

    #: Number of stations participating this slot (awake, joined, on-clock).
    awake: int
    #: Transmit-probability multiplier (clock-skew thinning; uniform engines).
    p_scale: float
    #: Flip the observed state ``Null <-> Collision``.
    flip: bool
    #: Erase the slot's feedback entirely.
    erase: bool
    #: Collision detection downgraded (Single reported as Collision).
    downgrade: bool

    @property
    def corrupted(self) -> bool:
        """Whether observation-layer corruption applies to this slot."""
        return self.flip or self.erase or self.downgrade


class RealizedFaults:
    """One run's deterministic fault realization (scalar engines).

    Station-level churn is realized eagerly: ``crash_slot[sid]`` /
    ``join_slot[sid]`` arrays plus sleep spans assigned to seeded-random
    distinct stations.  Corruption and skew are drawn lazily, one slot at a
    time, from a dedicated stream -- calls must therefore proceed in slot
    order (both engines already guarantee that).
    """

    def __init__(
        self, model: FaultModel, n: int, max_slots: int, rng: np.random.Generator
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.model = model
        self.n = int(n)
        self.max_slots = int(max_slots)
        churn_rng, self._corruption_rng, self._skew_rng = rng.spawn(3)

        # Assign scheduled churn events to distinct stations via one seeded
        # permutation: crashes from the front, joins from the back, sleeps
        # from the middle.  Over-subscription (more events than stations)
        # wraps around -- later assignments override earlier ones.
        perm = churn_rng.permutation(self.n)
        self.crash_slot = np.full(self.n, -1, dtype=np.int64)
        self.join_slot = np.zeros(self.n, dtype=np.int64)
        self.sleep_span = np.full((self.n, 2), -1, dtype=np.int64)
        for i, slot in enumerate(sorted(model.crash_slots)):
            self.crash_slot[perm[i % self.n]] = slot
        for i, slot in enumerate(sorted(model.join_slots)):
            self.join_slot[perm[self.n - 1 - (i % self.n)]] = slot
        offset = len(model.crash_slots)
        for i, (a, b) in enumerate(model.sleep_spans):
            self.sleep_span[perm[(offset + i) % self.n]] = (a, b)
        # Rate-based crashes: i.i.d. per-slot Bernoulli trials per station
        # are equivalent to one geometric lifetime draw per station.
        if model.crash_rate > 0.0:
            lifetimes = churn_rng.geometric(model.crash_rate, size=self.n) - 1
            rate_crash = self.join_slot + lifetimes
            mask = (self.crash_slot < 0) | (rate_crash < self.crash_slot)
            mask &= rate_crash < self.max_slots
            self.crash_slot[mask] = rate_crash[mask]

        self._flip_slots = frozenset(model.flip_slots)
        self._erase_slots = frozenset(model.erase_slots)
        self._downgrade_slots = frozenset(model.downgrade_slots)
        self._p_scale = 1.0 - model.skew_rate
        # Injection counters (telemetry + engine summaries).
        self.counters = {
            "crash": 0,
            "sleep_slots": 0,
            "join": 0,
            "flip": 0,
            "erase": 0,
            "downgrade": 0,
            "skew_slots": 0,
        }
        self._awake_mask = np.ones(self.n, dtype=bool)
        self._crash_seen = np.zeros(self.n, dtype=bool)
        # Stations present from slot 0 never "join"; only join_slot > 0
        # transitions are counted as injections.
        self._join_seen = self.join_slot <= 0

    # -- per-slot API ------------------------------------------------------

    def station_awake(self, slot: int) -> np.ndarray:
        """Mask of stations participating in *slot* (faithful engine).

        Excludes crashed, sleeping and not-yet-joined stations; clock skew
        is drawn on top per station (a skewed station misses the slot
        entirely: no transmission, no feedback).
        """
        mask = self._awake_mask
        np.greater(self.crash_slot, slot, out=mask, where=self.crash_slot >= 0)
        mask[self.crash_slot < 0] = True
        mask &= self.join_slot <= slot
        asleep = (self.sleep_span[:, 0] <= slot) & (slot < self.sleep_span[:, 1])
        mask &= ~asleep
        self._count_churn(slot, asleep)
        c = self.counters
        if self.model.skew_rate > 0.0:
            skewed = mask & (self._skew_rng.random(self.n) < self.model.skew_rate)
            c["skew_slots"] += int(skewed.sum())
            mask = mask & ~skewed
        return mask

    def awake_count(self, slot: int) -> int:
        """Number of participating stations in *slot* (uniform engines).

        Count-level view of the same realization: crashed / sleeping /
        unjoined stations are excluded; clock skew is *not* subtracted here
        -- uniform engines apply it as transmit thinning via
        :attr:`SlotFaults.p_scale` instead.
        """
        alive = (self.crash_slot < 0) | (self.crash_slot > slot)
        alive &= self.join_slot <= slot
        asleep = (self.sleep_span[:, 0] <= slot) & (slot < self.sleep_span[:, 1])
        alive &= ~asleep
        self._count_churn(slot, asleep)
        return int(alive.sum())

    def _count_churn(self, slot: int, asleep: np.ndarray) -> None:
        """Update churn injection counters for *slot* (idempotent per
        station for crash/join; called once per slot by every engine)."""
        c = self.counters
        c["sleep_slots"] += int(asleep.sum())
        fresh_crash = (self.crash_slot >= 0) & (self.crash_slot <= slot)
        new = fresh_crash & ~self._crash_seen
        if new.any():
            c["crash"] += int(new.sum())
            self._crash_seen |= new
        joined = (self.join_slot <= slot) & ~self._join_seen
        if joined.any():
            c["join"] += int(joined.sum())
            self._join_seen |= joined

    def begin_slot(self, slot: int, awake: int) -> SlotFaults:
        """Corruption/skew flags for *slot* (must be called in slot order)."""
        m = self.model
        flip = slot in self._flip_slots
        erase = slot in self._erase_slots
        if m.flip_rate > 0.0:
            flip = flip or bool(self._corruption_rng.random() < m.flip_rate)
        if m.erase_rate > 0.0:
            erase = erase or bool(self._corruption_rng.random() < m.erase_rate)
        downgrade = slot in self._downgrade_slots
        c = self.counters
        if flip:
            c["flip"] += 1
        if erase:
            c["erase"] += 1
        if downgrade:
            c["downgrade"] += 1
        return SlotFaults(
            awake=awake,
            p_scale=self._p_scale,
            flip=flip,
            erase=erase,
            downgrade=downgrade,
        )

    # -- leader bookkeeping ------------------------------------------------

    def pick_awake_station(self, slot: int, rng: np.random.Generator) -> int:
        """A uniformly random participating station id (fast engine's
        symmetric leader draw, restricted to stations awake in *slot*)."""
        alive = (self.crash_slot < 0) | (self.crash_slot > slot)
        alive &= self.join_slot <= slot
        alive &= ~(
            (self.sleep_span[:, 0] <= slot) & (slot < self.sleep_span[:, 1])
        )
        ids = np.flatnonzero(alive)
        if ids.size == 0:
            raise ConfigurationError(
                f"no awake station to elect at slot {slot} (all churned out)"
            )
        return int(ids[rng.integers(ids.size)])

    def leader_survives(self, station: int) -> bool:
        """Whether *station* is never scheduled to crash within the horizon."""
        return bool(self.crash_slot[station] < 0)

    def station_participating(self, station: int, slot: int) -> bool:
        """Whether *station* was churned into *slot* (ignores clock skew;
        side-effect-free, usable out of slot order for post-hoc audits)."""
        crash = self.crash_slot[station]
        if 0 <= crash <= slot:
            return False
        if self.join_slot[station] > slot:
            return False
        a, b = self.sleep_span[station]
        return not (a <= slot < b)

    # -- telemetry ---------------------------------------------------------

    def publish(self, tel) -> None:
        """Publish injection counters to a live telemetry sink."""
        c = self.counters
        for kind in ("crash", "sleep_slots", "join", "skew_slots"):
            if c[kind]:
                tel.counter("faults_injected_total", kind=kind).inc(c[kind])
        for kind in ("flip", "erase", "downgrade"):
            if c[kind]:
                tel.counter("faults_injected_total", kind=kind).inc(c[kind])
                tel.counter("feedback_corrupted_total", kind=kind).inc(c[kind])
        if c["crash"]:
            tel.counter("stations_crashed_total").inc(c["crash"])


class BatchFaultState:
    """Vectorized fault masks for the batched engine.

    Churn (and its awake count) is realized **once** and shared by every
    column, mirroring how the deterministic vector adversaries apply one
    pattern across the batch; rate-based corruption is drawn per column per
    slot, keeping replications statistically independent where the model is
    probabilistic.  Scheduled corruption slots broadcast to all columns.
    """

    def __init__(
        self,
        model: FaultModel,
        n: int,
        reps: int,
        max_slots: int,
        rng: np.random.Generator,
    ) -> None:
        self.model = model
        self.reps = int(reps)
        # Shared churn realization: reuse the scalar realization's count
        # view (one station-level draw for the whole batch).
        self.realized = RealizedFaults(model, n, max_slots, rng.spawn(1)[0])
        self._corruption_rng = rng.spawn(1)[0]
        self.p_scale = 1.0 - model.skew_rate
        self.counters = self.realized.counters

    def awake_count(self, slot: int) -> int:
        """Participating stations in *slot* (identical across columns)."""
        return self.realized.awake_count(slot)

    def begin_slot(
        self, slot: int, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Per-column ``(flip, erase)`` masks plus the downgrade flag.

        Only *active* columns draw corruption; retired columns' masks are
        forced False so counters track injections into live replications.
        """
        m = self.model
        reps = self.reps
        if slot in self.realized._flip_slots:
            flip = active.copy()
        elif m.flip_rate > 0.0:
            flip = active & (self._corruption_rng.random(reps) < m.flip_rate)
        else:
            flip = np.zeros(reps, dtype=bool)
        if slot in self.realized._erase_slots:
            erase = active.copy()
        elif m.erase_rate > 0.0:
            erase = active & (self._corruption_rng.random(reps) < m.erase_rate)
        else:
            erase = np.zeros(reps, dtype=bool)
        downgrade = slot in self.realized._downgrade_slots
        c = self.counters
        c["flip"] += int(flip.sum())
        c["erase"] += int(erase.sum())
        if downgrade:
            c["downgrade"] += int(active.sum())
        return flip, erase, downgrade

    def pick_awake_stations(
        self, slot: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Leader ids for *count* winning columns, uniform over awake ids."""
        r = self.realized
        alive = (r.crash_slot < 0) | (r.crash_slot > slot)
        alive &= r.join_slot <= slot
        alive &= ~((r.sleep_span[:, 0] <= slot) & (slot < r.sleep_span[:, 1]))
        ids = np.flatnonzero(alive)
        if ids.size == 0:
            raise ConfigurationError(
                f"no awake station to elect at slot {slot} (all churned out)"
            )
        return ids[rng.integers(ids.size, size=count)]

    def leaders_survive(self, stations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`RealizedFaults.leader_survives`."""
        return self.realized.crash_slot[stations] < 0

    def publish(self, tel) -> None:
        """Publish injection counters to a live telemetry sink."""
        self.realized.publish(tel)

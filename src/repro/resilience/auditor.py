"""Runtime invariant auditor for the simulation engines.

Opt-in correctness instrumentation: an engine handed an
:class:`InvariantAuditor` (or :class:`BatchInvariantAuditor` for the
batched engine) reports every slot, and the auditor verifies -- *while the
run executes* -- that:

* **budget** -- the granted jam sequence honors the (T, 1-eps) definition
  over every realized window of length >= T, via the online
  :class:`~repro.adversary.validation.WindowAuditor`;
* **channel** -- the observed state is consistent with the transmitter
  count and the jam flag (``Single`` iff exactly one transmitter and not
  jammed), except in slots the fault model deliberately corrupted;
* **election** -- at most one station believes it is the leader, and the
  winner transmitted (awake) in the deciding slot.

A violated invariant raises a typed
:class:`~repro.errors.InvariantViolationError` carrying a
:class:`~repro.resilience.bundle.ReproBundle`: seed, configuration and
offending slot window, replayable with ``python -m repro replay``.

The honest engines never trip the auditor (their adversaries are clamped
by :class:`~repro.adversary.budget.JammingBudget` and their channels are
:func:`~repro.channel.channel.resolve_slot`); the auditor exists to catch
the dishonest and the broken -- e.g. :class:`OverBudgetAdversary` below,
which deliberately ignores its clamp, or a miswired fault path.  Auditing
is opt-in precisely so the hot path stays branch-free when off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.adversary.base import Adversary, AdversaryView
from repro.adversary.validation import WindowAuditor, WindowViolation
from repro.errors import ConfigurationError, InvariantViolationError
from repro.resilience.bundle import ReproBundle
from repro.resilience.faults import FaultModel
from repro.types import ChannelState

__all__ = [
    "AuditContext",
    "InvariantAuditor",
    "BatchInvariantAuditor",
    "OverBudgetAdversary",
]


@dataclass(slots=True)
class AuditContext:
    """Run description attached to violations for replayable bundles."""

    seed: int | None = None
    engine: str = "unknown"
    n: int | None = None
    protocol: str | None = None
    T: int | None = None
    eps: float | None = None
    max_slots: int | None = None
    adversary: str | None = None
    faults: FaultModel | None = None
    params: dict = field(default_factory=dict)

    def bundle(
        self,
        invariant: str,
        detail: str,
        start: int,
        end: int,
        column: "int | None" = None,
    ) -> ReproBundle:
        """Build a :class:`ReproBundle` for a violation of *invariant*
        spanning slots ``[start, end)`` in this run context."""
        return ReproBundle(
            invariant=invariant,
            detail=detail,
            slot_start=start,
            slot_end=end,
            seed=self.seed,
            engine=self.engine,
            n=self.n,
            protocol=self.protocol,
            T=self.T,
            eps=self.eps,
            max_slots=self.max_slots,
            adversary=self.adversary,
            faults=self.faults.to_jsonable() if self.faults is not None else None,
            column=column,
            params=dict(self.params),
        )


def _fail(
    context: "AuditContext | None",
    invariant: str,
    detail: str,
    start: int,
    end: int,
    column: "int | None" = None,
) -> None:
    bundle = None
    if context is not None:
        bundle = context.bundle(invariant, detail, start, end, column=column)
    where = f"slot {start}" if end == start + 1 else f"slots [{start}, {end})"
    raise InvariantViolationError(
        f"{invariant} invariant violated at {where}: {detail}", bundle=bundle
    )


class InvariantAuditor:
    """Per-slot invariant checks for the scalar engines (opt-in)."""

    def __init__(
        self, T: int, eps: float, context: "AuditContext | None" = None
    ) -> None:
        self._window = WindowAuditor(T, eps)
        self.context = context
        self.slots_checked = 0

    def observe_slot(
        self,
        slot: int,
        transmitters: int,
        jammed: bool,
        observed: "ChannelState | None" = None,
        corrupted: bool = False,
    ) -> None:
        """Audit one resolved slot (must be called in slot order).

        *observed* is the state delivered to the stations (after any fault
        corruption; ``None`` for an erased slot); *corrupted* marks slots
        the fault model deliberately rewrote, which are exempt from the
        channel-consistency check (but never from the budget check).
        """
        violation = self._window.append(jammed)
        if violation is not None:
            _fail(
                self.context,
                "budget",
                violation.describe(),
                violation.start,
                violation.end,
            )
        if not corrupted and observed is not None:
            expected = (
                ChannelState.COLLISION
                if jammed
                else ChannelState.from_transmitter_count(transmitters)
            )
            if observed is not expected:
                _fail(
                    self.context,
                    "channel",
                    f"k={transmitters}, jammed={jammed} must be observed as "
                    f"{expected.name}, engine delivered {observed.name}",
                    slot,
                    slot + 1,
                )
        elif not corrupted and observed is None:
            _fail(
                self.context,
                "channel",
                "feedback withheld (observed=None) in a slot the fault model "
                "did not erase",
                slot,
                slot + 1,
            )
        self.slots_checked += 1

    def check_election(
        self,
        leaders_count: int,
        leader: "int | None" = None,
        deciding_slot: "int | None" = None,
        leader_transmitted: bool = True,
        leader_awake: bool = True,
    ) -> None:
        """Audit the run's election outcome (engine calls once at the end)."""
        end = self._window.slot
        if leaders_count > 1:
            _fail(
                self.context,
                "election",
                f"{leaders_count} stations believe they are the leader "
                f"(must be at most 1)",
                deciding_slot if deciding_slot is not None else max(0, end - 1),
                end,
            )
        if leaders_count == 1:
            if not leader_transmitted:
                _fail(
                    self.context,
                    "election",
                    f"station {leader} won without transmitting in the "
                    f"deciding slot",
                    deciding_slot if deciding_slot is not None else max(0, end - 1),
                    deciding_slot + 1 if deciding_slot is not None else end,
                )
            if not leader_awake:
                _fail(
                    self.context,
                    "election",
                    f"station {leader} won while not awake in the deciding "
                    f"slot",
                    deciding_slot if deciding_slot is not None else max(0, end - 1),
                    deciding_slot + 1 if deciding_slot is not None else end,
                )


class BatchInvariantAuditor:
    """Vectorized invariant checks for the batched engine.

    Runs the same potential-based budget detection as
    :class:`~repro.adversary.validation.WindowAuditor`, but over all
    ``reps`` columns in lockstep NumPy (mirroring
    :class:`~repro.adversary.budget.JammingBudgetArray`): per column the
    prefix potential ``phi = J - (1-eps)*slot`` is compared against its
    ``T``-lagged running minimum.  Channel consistency is one mask
    expression per slot.
    """

    def __init__(
        self, T: int, eps: float, reps: int, context: "AuditContext | None" = None
    ) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        if reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {reps}")
        self.T = int(T)
        self.eps = float(eps)
        self.reps = int(reps)
        self.context = context
        self.slots_checked = 0
        self._rate = 1.0 - self.eps
        self._slot = 0
        self._J = np.zeros(reps, dtype=np.int64)
        self._pending: deque[tuple[np.ndarray, np.ndarray]] = deque(
            [(np.zeros(reps), np.zeros(reps, dtype=np.int64))]
        )
        self._min_phi = np.full(reps, np.inf)
        self._argmin = np.zeros(reps, dtype=np.int64)
        self._argmin_J = np.zeros(reps, dtype=np.int64)
        self._folded = 0

    def observe_slot(
        self,
        slot: int,
        k: np.ndarray,
        jammed: np.ndarray,
        observed: np.ndarray,
        corrupted: "np.ndarray | None" = None,
        active: "np.ndarray | None" = None,
    ) -> None:
        """Audit one batched slot; arrays are all shape ``(reps,)``.

        *observed* uses the int8 state codes of the batched engine.  The
        budget is audited for every column (retired columns' budgets still
        advance in lockstep, exactly like the engine); channel consistency
        only for *active*, un-*corrupted* columns.
        """
        self._J += jammed
        self._slot += 1
        e = self._slot
        self._pending.append(
            (self._J - self._rate * e, self._J.copy())
        )
        if e >= self.T:
            horizon = e - self.T
            while self._folded <= horizon:
                phi_s, J_s = self._pending.popleft()
                better = phi_s < self._min_phi
                self._min_phi[better] = phi_s[better]
                self._argmin[better] = self._folded
                self._argmin_J[better] = J_s[better]
                self._folded += 1
            over = (self._J - self._rate * e) > self._min_phi + 1e-9
            if over.any():
                c = int(np.argmax(over))
                s = int(self._argmin[c])
                violation = WindowViolation(
                    start=s,
                    end=e,
                    jams=int(self._J[c] - self._argmin_J[c]),
                    allowed=self._rate * (e - s),
                )
                _fail(
                    self.context,
                    "budget",
                    f"column {c}: {violation.describe()}",
                    violation.start,
                    violation.end,
                    column=c,
                )
        check = np.ones(self.reps, dtype=bool) if active is None else active.copy()
        if corrupted is not None:
            check &= ~corrupted
        expected = np.where(
            jammed, np.int8(ChannelState.COLLISION), np.minimum(k, 2).astype(np.int8)
        )
        bad = check & (observed != expected)
        if bad.any():
            c = int(np.argmax(bad))
            _fail(
                self.context,
                "channel",
                f"column {c}: k={int(k[c])}, jammed={bool(jammed[c])} must be "
                f"observed as state {int(expected[c])}, engine delivered "
                f"{int(observed[c])}",
                slot,
                slot + 1,
                column=c,
            )
        self.slots_checked += 1


class OverBudgetAdversary(Adversary):
    """A *cheating* adversary that ignores its budget's clamp decisions.

    Test/CI harness only: it keeps the budget accounting running (so
    ``jams_granted`` / ``denied_requests`` stay meaningful) but returns the
    strategy's raw intent, jamming even when the (T, 1-eps) budget said no.
    Driven with a saturating strategy it violates the definition within the
    first T slots -- the canonical way to prove the auditor actually trips.
    """

    def decide(self, view: AdversaryView) -> bool:
        want = self.strategy.wants_jam(view, self._rng)
        self.budget.grant(want)
        return want

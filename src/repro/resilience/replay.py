"""Re-execute saved violation bundles (``python -m repro replay``).

A :class:`~repro.resilience.bundle.ReproBundle` written by the auditor is a
deterministic recipe: root seed, engine, protocol/adversary parameters and
fault-model spec.  :func:`replay_bundle` reconstructs that run, attaches a
fresh :class:`~repro.resilience.auditor.InvariantAuditor`, and reports
whether the recorded violation reproduces -- the "does it still fail on my
machine" step of a bug report.

Adversary names with the ``overbudget:`` prefix (written by
``python -m repro audit --overbudget`` and by tests) denote the cheating
harness :class:`~repro.resilience.auditor.OverBudgetAdversary`, which asks
its budget for permission (keeping the books honest) and jams anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.adversary.base import Adversary
from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.core.election import _policy_factory, make_protocol_stations
from repro.errors import ConfigurationError, InvariantViolationError
from repro.resilience.auditor import AuditContext, InvariantAuditor, OverBudgetAdversary
from repro.resilience.bundle import ReproBundle
from repro.resilience.faults import FaultModel
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.types import CDMode

__all__ = [
    "ReplayResult",
    "replay_bundle",
    "replay_file",
    "audited_election",
    "OVERBUDGET_PREFIX",
]

OVERBUDGET_PREFIX = "overbudget:"


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-executing one bundle."""

    bundle: ReproBundle
    #: Whether a violation of the *same invariant* was raised again.
    reproduced: bool
    #: The violation observed during replay (None when the run was clean).
    violation: "InvariantViolationError | None"
    #: Slots the replay executed before stopping.
    slots_run: int

    def describe(self) -> str:
        """REPRODUCED / DIVERGED / NOT REPRODUCED, with the detail line."""
        if self.reproduced:
            return (
                f"REPRODUCED after {self.slots_run} slots: {self.violation}"
            )
        if self.violation is not None:
            return (
                f"DIVERGED: replay raised a different violation after "
                f"{self.slots_run} slots: {self.violation}"
            )
        return f"NOT REPRODUCED: replay ran {self.slots_run} slots cleanly"


def _make_replay_adversary(name: str, T: int, eps: float) -> Adversary:
    """Adversary for a replay, honoring the ``overbudget:`` prefix."""
    if name.startswith(OVERBUDGET_PREFIX):
        inner = name[len(OVERBUDGET_PREFIX):]
        honest = make_adversary(inner, T=T, eps=eps)
        return OverBudgetAdversary(honest.strategy, T=T, eps=eps)
    return make_adversary(name, T=T, eps=eps)


def _execute_audited(
    config: ElectionConfig,
    adversary_name: str,
    seed,
    faults: "FaultModel | None",
):
    """Run one audited election, returning ``(result, violation, slots)``.

    The adversary is built from *adversary_name* (honoring the
    ``overbudget:`` prefix) rather than through
    :func:`~repro.core.election.run_config`, which only knows honest
    registry names.
    """
    adversary = _make_replay_adversary(adversary_name, T=config.T, eps=config.eps)
    auditor = InvariantAuditor(
        config.T,
        config.eps,
        context=AuditContext(
            seed=seed if isinstance(seed, int) else None,
            engine=config.resolved_engine(),
            n=config.n,
            protocol=config.protocol,
            T=config.T,
            eps=config.eps,
            max_slots=config.slot_budget(),
            adversary=adversary_name,
            faults=faults,
            params={"lesu_c": config.lesu_c} if "lesu" in config.protocol else {},
        ),
    )
    violation: InvariantViolationError | None = None
    result = None
    slots_run = 0
    try:
        if config.resolved_engine() == "fast" and config.cd_mode is CDMode.STRONG:
            result = simulate_uniform_fast(
                _policy_factory(config)(),
                n=config.n,
                adversary=adversary,
                max_slots=config.slot_budget(),
                seed=seed,
                faults=faults,
                auditor=auditor,
            )
        else:
            result = simulate_stations(
                make_protocol_stations(config),
                adversary=adversary,
                cd_mode=config.cd_mode,
                max_slots=config.slot_budget(),
                seed=seed,
                faults=faults,
                auditor=auditor,
                stop_on_first_single=config.cd_mode is CDMode.STRONG,
            )
        slots_run = result.slots
    except InvariantViolationError as exc:
        violation = exc
        slots_run = auditor.slots_checked
    return result, violation, slots_run


def audited_election(
    n: int,
    protocol: str = "lesk",
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "none",
    seed: "int | None" = None,
    max_slots: "int | None" = None,
    engine: str = "auto",
    faults: "FaultModel | None" = None,
    overbudget: bool = False,
):
    """One fully audited election run for the CLI and CI smoke checks.

    With ``overbudget=True`` the named adversary is wrapped in
    :class:`OverBudgetAdversary` (it jams whenever its strategy wants to,
    ignoring the budget clamp) -- the auditor *must* trip.  Returns
    ``(result, violation, slots_run)``; ``violation`` is ``None`` for a
    clean run.
    """
    name = OVERBUDGET_PREFIX + adversary if overbudget else adversary
    config = ElectionConfig(
        n=n,
        protocol=protocol,
        eps=eps,
        T=T,
        adversary=adversary,
        max_slots=max_slots,
        engine=engine,
    )
    return _execute_audited(config, name, seed, faults)


def replay_bundle(bundle: ReproBundle) -> ReplayResult:
    """Re-run the execution described by *bundle* under a fresh auditor."""
    if not bundle.replayable:
        raise ConfigurationError(
            "bundle is not replayable (it lacks a seed or run parameters):\n"
            + bundle.describe()
        )
    faults = (
        FaultModel.from_jsonable(bundle.faults) if bundle.faults else None
    )
    engine = bundle.engine if bundle.engine in ("fast", "faithful") else "auto"
    config = ElectionConfig(
        n=bundle.n,
        protocol=bundle.protocol,
        eps=bundle.eps,
        T=bundle.T,
        # Honest registry name for config validation; the real (possibly
        # over-budget) adversary is built by _execute_audited.
        adversary=bundle.adversary.removeprefix(OVERBUDGET_PREFIX),
        max_slots=bundle.max_slots,
        engine=engine,
        lesu_c=float(bundle.params.get("lesu_c", 2.0)),
    )
    _, violation, slots_run = _execute_audited(
        config, bundle.adversary, bundle.seed, faults
    )
    reproduced = (
        violation is not None
        and violation.bundle is not None
        and violation.bundle.invariant == bundle.invariant
    )
    return ReplayResult(
        bundle=bundle,
        reproduced=reproduced,
        violation=violation,
        slots_run=slots_run,
    )


def replay_file(path: "str | Path") -> ReplayResult:
    """Load a bundle JSON file and replay it."""
    return replay_bundle(ReproBundle.load(path))

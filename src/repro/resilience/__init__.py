"""Model-level fault injection and runtime invariant auditing.

Two halves (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` -- a deterministic, seeded
  :class:`FaultModel` composing station churn, feedback corruption and
  clock skew, injected through all three engines;
* :mod:`repro.resilience.auditor` -- opt-in per-slot verification that the
  adversary honored its (T, 1-eps) budget, the channel stayed consistent,
  and election safety held, raising
  :class:`~repro.errors.InvariantViolationError` with a replayable
  :class:`ReproBundle`.

:mod:`repro.resilience.differential` (imported explicitly; it pulls in the
protocol stack) runs scalar / fast / batched semantics in lockstep on
shared randomness and binary-searches the first diverging slot;
:mod:`repro.resilience.replay` re-executes saved bundles
(``python -m repro replay``).
"""

from repro.resilience.auditor import (
    AuditContext,
    BatchInvariantAuditor,
    InvariantAuditor,
    OverBudgetAdversary,
)
from repro.resilience.bundle import ReproBundle
from repro.resilience.faults import (
    NO_FAULTS,
    BatchFaultState,
    FaultModel,
    RealizedFaults,
    SlotFaults,
)

__all__ = [
    "FaultModel",
    "RealizedFaults",
    "BatchFaultState",
    "SlotFaults",
    "NO_FAULTS",
    "AuditContext",
    "InvariantAuditor",
    "BatchInvariantAuditor",
    "OverBudgetAdversary",
    "ReproBundle",
]

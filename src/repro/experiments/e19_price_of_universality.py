"""A7 -- the price of universality: LESU vs LESK head to head.

The paper's selling point over [3] is not only speed but *zero parameter
knowledge*.  Knowledge is not free, though: comparing Theorem 2.6 with
Theorem 2.9 (regime 1), LESU's predicted overhead over LESK is the factor
``log(1/eps) * log log(1/eps)`` -- the cost of sweeping candidate
strengths ``eps_j`` instead of knowing eps.  This experiment measures the
ratio ``LESU median / LESK median`` across true adversary strengths and
network sizes (same jammer, same seeds) and compares it against that
predicted shape.

The measured result is stronger than the paper's "for the price of a
small overhead" (Section 1.2): the price is often *negative*.  LESU's
Estimation phase doubles as a jam-proof scale probe that reaches the
right transmission probability in O(log n) slots of doubling rounds,
while LESK must climb its estimator from 0 at +eps/8 per slot
(~(8/eps) log2 n slots).  When n sits near a round's sweet spot
(n ~ 2^(2^r)) the estimation phase even elects outright.  The
log(1/eps)*loglog(1/eps) factor is a worst-case guarantee, not a typical
cost.
"""

from __future__ import annotations

import math

from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times

EXPERIMENT = "A7"


def _predicted_overhead(eps: float) -> float:
    """Theorem 2.9 regime 1 over Theorem 2.6: log(1/eps)*loglog(1/eps),
    with the paper's a = 8/eps convention inside the logs and floors at 1
    so the shape stays defined near eps = 1."""
    log_term = max(1.0, math.log2(8.0 / eps))
    return log_term * max(1.0, math.log2(log_term))


def run(preset: str = "small", seed: int = 2033) -> Table:
    """Run experiment A7 at *preset* scale and return its table."""
    grid = preset_value(
        preset,
        [(256, 0.5), (256, 0.25)],
        [(256, 0.7), (256, 0.5), (256, 0.35), (256, 0.25), (4096, 0.5), (4096, 0.25)],
    )
    reps = preset_value(preset, 15, 100)
    T = 8  # small T: regime 1, where the overhead shape is cleanest

    table = Table(
        name=EXPERIMENT,
        title="The price of knowing nothing: LESU vs LESK "
        f"(single-suppressor jammer, T={T})",
        claim="Sec 1.2/Thm 2.9: universality costs only a "
        "log(1/eps)*loglog(1/eps) factor",
        columns=[
            Column("n", "n"),
            Column("eps", "eps", ".2f"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("lesu_median", "LESU median", ".0f"),
            Column("overhead", "measured x", ".2f"),
            Column("predicted", "predicted shape x", ".2f"),
            Column("lesu_success", "LESU success", ".3f"),
        ],
    )
    for gi, (n, eps) in enumerate(grid):
        lesk = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesk", eps=eps, T=T, adversary="single-suppressor", seed=s
            ),
            reps,
            seed,
            19,
            gi,
            0,
        )
        lesu = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesu", eps=eps, T=T, adversary="single-suppressor", seed=s
            ),
            reps,
            seed,
            19,
            gi,
            1,
        )
        ls = summarize_times(lesk)
        lu = summarize_times(lesu)
        table.add_row(
            n=n,
            eps=eps,
            lesk_median=ls["median_slots"],
            lesu_median=lu["median_slots"],
            overhead=lu["median_slots"] / max(1.0, ls["median_slots"]),
            predicted=_predicted_overhead(eps),
            lesu_success=lu["success_rate"],
        )
    table.add_note(
        "measured 'overhead' is typically below 1: Estimation's doubling "
        "rounds reach the right probability scale in O(log n) slots, "
        "skipping LESK's (8/eps)*log2(n)-slot climb -- universality is "
        "effectively free on this substrate; the predicted factor is a "
        "worst-case bound"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""T7 -- Section 1.3: LESK vs the Awerbuch-Richa-Scheideler baseline [3].

Both protocols elect by first successful ``Single`` in strong-CD; both run
against the same (T, 1-eps) jammer.  The paper's claim: LESK needs
``O(log n)`` slots where the [3] machinery has proven runtime
``O(log^4 n)`` (constant eps).  Our measured target is the *shape*: LESK's
time grows linearly in ``log n`` while ARS grows like a higher power --
the log-log fit's slope separates them -- and LESK wins by a factor that
widens with ``n``.

ARS additionally needs the global parameter
``gamma = O(1/(log T + log log n))`` (the dependence the paper removes).
"""

from __future__ import annotations

from repro.adversary.suite import make_adversary
from repro.analysis.estimators import fit_power_law
from repro.experiments.cells import CellSpec, run_cells
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    replicate,
    summarize_times,
)
from repro.protocols.baselines.ars_fast import simulate_ars_fast
from repro.protocols.baselines.ars_mac import ars_gamma

EXPERIMENT = "T7"


def _run_ars(n: int, eps: float, T: int, adversary: str, seed: int, max_slots: int):
    adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_ars_fast(
        n, ars_gamma(n, T), adv, max_slots=max_slots, seed=seed
    )


def run(preset: str = "small", seed: int = 2021, batched: bool | None = None) -> Table:
    """Run experiment T7 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch (LESK side
    only; the ARS baseline is a per-station machine and stays scalar).
    """
    if batched is None:
        batched = batched_enabled(preset)
    ns = preset_value(preset, [32, 128, 512], [32, 128, 512, 2048, 8192, 32768])
    reps = preset_value(preset, 8, 40)
    eps = 0.5
    T = 16
    adversary = "saturating"
    max_slots = preset_value(preset, 200_000, 2_000_000)

    table = Table(
        name=EXPERIMENT,
        title=f"LESK vs ARS [3] election time ({adversary} jammer, eps={eps}, T={T})",
        claim="Sec 1.3: LESK O(log n) vs [3] O(log^4 n); LESK needs no global parameters",
        columns=[
            Column("n", "n"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("ars_median", "ARS median", ".0f"),
            Column("speedup", "ARS/LESK", ".1f"),
            Column("lesk_success", "LESK success", ".3f"),
            Column("ars_success", "ARS success", ".3f"),
        ],
    )
    lesk_specs = [
        CellSpec(
            kind="lesk", n=n, eps=eps, T=T, adversary=adversary,
            reps=reps, root_seed=seed, path=(7, ni, 0), batched=batched,
        )
        for ni, n in enumerate(ns)
    ]
    lesk_cells = run_cells(lesk_specs)
    lesk_pts, ars_pts = [], []
    for ni, n in enumerate(ns):
        lesk = lesk_cells[ni]
        ars = replicate(
            lambda s: _run_ars(n, eps, T, adversary, s, max_slots),
            reps,
            seed,
            7,
            ni,
            1,
        )
        ls = summarize_times(lesk)
        ar = summarize_times(ars)
        table.add_row(
            n=n,
            lesk_median=ls["median_slots"],
            ars_median=ar["median_slots"],
            speedup=ar["median_slots"] / max(1.0, ls["median_slots"]),
            lesk_success=ls["success_rate"],
            ars_success=ar["success_rate"],
        )
        lesk_pts.append(ls["median_slots"])
        ars_pts.append(ar["median_slots"])
    import math

    logn = [math.log2(n) for n in ns]
    lesk_fit = fit_power_law(logn, lesk_pts)
    ars_fit = fit_power_law(logn, ars_pts)
    table.add_note(
        f"log-log slope in log2(n): LESK {lesk_fit.slope:.2f} "
        f"(theory 1), ARS {ars_fit.slope:.2f} (theory <= 4); "
        "ARS uses global gamma = 1/(log2 T + log2 log2 n)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""T9 -- Section 1.3: energy expectation.

"...we expect, however, that the energetic efficiency of our protocol
should be similar to the leader election from [3]."  We measure, per
station: mean transmissions until election, for LESK and for ARS [3],
across ``n``.  (LESK transmits with probability ``2**-u``; the expected
per-station count is small because ``u`` reaches ``~log2 n`` quickly and
only ``O(1)`` of the early slots have high probability.)
"""

from __future__ import annotations

import numpy as np

from repro.adversary.suite import make_adversary
from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate
from repro.protocols.baselines.ars_fast import simulate_ars_fast
from repro.protocols.baselines.ars_mac import ars_gamma

EXPERIMENT = "T9"


def _run_ars(n: int, eps: float, T: int, adversary: str, seed: int, max_slots: int):
    adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_ars_fast(
        n, ars_gamma(n, T), adv, max_slots=max_slots, seed=seed
    )


def run(preset: str = "small", seed: int = 2023) -> Table:
    """Run experiment T9 at *preset* scale and return its table."""
    ns = preset_value(preset, [64, 256], [64, 256, 1024, 4096, 16384])
    reps = preset_value(preset, 10, 80)
    eps = 0.5
    T = 16
    adversary = "saturating"
    max_slots = preset_value(preset, 200_000, 1_000_000)

    table = Table(
        name=EXPERIMENT,
        title="Energy to election: mean transmissions per station",
        claim="Sec 1.3: LESK's energy should be comparable to [3]'s",
        columns=[
            Column("n", "n"),
            Column("lesk_tx", "LESK tx/station", ".2f"),
            Column("lesk_listen", "LESK listen/station", ".0f"),
            Column("lesk_slots", "LESK slots", ".0f"),
            Column("ars_tx", "ARS tx/station", ".2f"),
            Column("ars_slots", "ARS slots", ".0f"),
            Column("tx_ratio", "LESK/ARS tx", ".2f"),
        ],
    )
    for ni, n in enumerate(ns):
        lesk = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesk", eps=eps, T=T, adversary=adversary, seed=s
            ),
            reps,
            seed,
            9,
            ni,
            0,
        )
        ars = replicate(
            lambda s: _run_ars(n, eps, T, adversary, s, max_slots), reps, seed, 9, ni, 1
        )
        lesk_tx = float(np.mean([r.energy.transmissions_per_station(n) for r in lesk]))
        lesk_listen = float(np.mean([r.energy.listening_per_station(n) for r in lesk]))
        ars_tx = float(np.mean([r.energy.transmissions_per_station(n) for r in ars]))
        table.add_row(
            n=n,
            lesk_tx=lesk_tx,
            lesk_listen=lesk_listen,
            lesk_slots=float(np.median([r.slots for r in lesk])),
            ars_tx=ars_tx,
            ars_slots=float(np.median([r.slots for r in ars])),
            tx_ratio=lesk_tx / max(ars_tx, 1e-9),
        )
    table.add_note(
        "transmission energy only; every awake non-transmitting station also "
        "listens, so listening energy is proportional to slots"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

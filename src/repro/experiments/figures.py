"""Quick-look terminal charts from experiment CSVs.

``python -m repro.experiments.figures results/F1.csv`` renders the
numeric columns of an exported experiment table as ASCII line charts
(one per column, x = row index), using
:mod:`repro.analysis.ascii_plot`.  Intended for eyeballing figure-series
experiments (F1, F2) without a plotting stack.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.analysis.ascii_plot import line_chart, sparkline
from repro.errors import ConfigurationError

__all__ = ["load_numeric_columns", "render_csv", "main"]


def load_numeric_columns(text: str) -> dict[str, list[float]]:
    """Parse CSV text into {column: values} keeping only fully numeric
    columns (at least two parseable values)."""
    reader = csv.DictReader(text.splitlines())
    if not reader.fieldnames:
        raise ConfigurationError("CSV has no header")
    columns: dict[str, list[float]] = {name: [] for name in reader.fieldnames}
    ok: dict[str, bool] = {name: True for name in reader.fieldnames}
    for row in reader:
        for name in reader.fieldnames:
            try:
                columns[name].append(float(row[name]))
            except (TypeError, ValueError):
                ok[name] = False
    return {
        name: values
        for name, values in columns.items()
        if ok[name] and len(values) >= 2
    }


def render_csv(text: str, width: int = 60, height: int = 10) -> str:
    """Render every numeric column of a CSV as a labelled chart."""
    columns = load_numeric_columns(text)
    if not columns:
        raise ConfigurationError("no numeric columns with >= 2 values found")
    blocks = []
    for name, values in columns.items():
        lo, hi = min(values), max(values)
        blocks.append(
            f"-- {name} (min {lo:g}, max {hi:g}) --\n"
            + (
                line_chart(values, width=width, height=height)
                if hi > 0
                else f"  {sparkline(values, width)}"
            )
        )
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: render one or more experiment CSVs."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", nargs="+", type=Path)
    parser.add_argument("--width", type=int, default=60)
    parser.add_argument("--height", type=int, default=10)
    args = parser.parse_args(argv)
    for path in args.csv:
        print(f"==== {path} ====")
        print(render_csv(path.read_text(), width=args.width, height=args.height))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

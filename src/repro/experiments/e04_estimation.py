"""T4 -- Lemma 2.8: Estimation(2) brackets max{log log n, log T} w.h.p.

Run the standalone ``Estimation(2)`` primitive over a grid of ``n`` and
``T`` against the saturating jammer.  The lemma promises, w.h.p.:

* the returned round ``i`` satisfies
  ``log log n - 1 <= i <= max{log log n, log T} + 1``;
* runtime ``O(max{log n, T})``.

A run may instead end in a ``Single`` ("obtains Single or returns value");
such runs count as successes of the *other* kind and are reported
separately.  Jamming can only delay Nulls (push ``i`` up toward the
``log T`` cap), never produce them -- so the lower bracket holds even at
full jam intensity.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import estimation_result_bounds
from repro.experiments.cells import CellSpec, run_cells
from repro.experiments.harness import Column, Table, batched_enabled, preset_value

EXPERIMENT = "T4"


def run(preset: str = "small", seed: int = 2018, batched: bool | None = None) -> Table:
    """Run experiment T4 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; the cell's
    ``policy_result`` round indices come out of either engine.
    """
    if batched is None:
        batched = batched_enabled(preset)
    ns = preset_value(preset, [256, 4096], [128, 1024, 8192, 65536, 2**20])
    Ts = preset_value(preset, [1, 256], [1, 64, 1024, 16384])
    reps = preset_value(preset, 20, 200)
    eps = 0.5
    adversary = "saturating"

    table = Table(
        name=EXPERIMENT,
        title="Estimation(2) bracket and runtime under saturating jamming (eps=0.5)",
        claim="Lemma 2.8: i in [loglog n - 1, max{loglog n, log T} + 1] w.h.p., "
        "time O(max{log n, T})",
        columns=[
            Column("n", "n"),
            Column("T", "T"),
            Column("bracket", "lemma bracket"),
            Column("rounds", "rounds seen"),
            Column("in_bracket", "in-bracket", ".3f"),
            Column("singles", "ended by Single", ".3f"),
            Column("median_slots", "median slots", ".0f"),
            Column("slots_per_bound", "slots/max{log n,T}", ".1f"),
        ],
    )
    specs = [
        CellSpec(
            kind="estimation", n=n, eps=eps, T=T, adversary=adversary,
            reps=reps, root_seed=seed, path=(4, gi, ti), batched=batched,
        )
        for gi, n in enumerate(ns)
        for ti, T in enumerate(Ts)
    ]
    for spec, results in zip(specs, run_cells(specs)):
        n, T = spec.n, spec.T
        lo, hi = estimation_result_bounds(n, T)
        rounds = [r.policy_result for r in results if r.policy_result is not None]
        singles = sum(1 for r in results if r.elected)
        in_bracket = sum(1 for i in rounds if lo <= i <= hi)
        denom = len(rounds) if rounds else 1
        slots = sorted(r.slots for r in results)
        median_slots = slots[len(slots) // 2]
        table.add_row(
            n=n,
            T=T,
            bracket=f"[{lo:.1f}, {hi:.0f}]",
            rounds=f"{min(rounds)}-{max(rounds)}" if rounds else "-",
            in_bracket=in_bracket / denom,
            singles=singles / len(results),
            median_slots=median_slots,
            slots_per_bound=median_slots / max(math.log2(n), T),
        )
    table.add_note(
        "runs ending in a Single elect a leader outright (the lemma's other branch); "
        "'in-bracket' is over the remaining runs"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""T10 -- numeric verification of Lemmas 2.1-2.4 and Lemma 2.3 on traces.

Three sub-checks in one table:

1. **Lemma 2.1** on a grid of ``(n, x)``: the four bounds vs the exact
   probabilities (reports the worst slack; must be >= 0).
2. **Lemma 2.4**: the minimum of ``P[Single]`` over the regular band vs
   the constant ``C = ln a / a^2`` for a range of ``a`` and ``n``.
3. **Lemma 2.3** counter inequalities on traces of *real* LESK runs under
   a saturating jammer (rates of satisfaction; must be 1.0).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.probabilities import (
    collision_upper_bound,
    lemma_2_2_collision_slack,
    lemma_2_2_silence_slack,
    null_upper_bound,
    p_collision,
    p_null,
    p_single,
    regular_single_lower_bound,
    single_lower_bound_exp,
    single_lower_bound_poly,
)
from repro.analysis.slot_classes import (
    classify_trace,
    theorem_2_6_regular_floor,
    verify_lemma_2_3,
)
from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate
from repro.protocols.lesk import lesk_parameter_a

EXPERIMENT = "T10"


def _lemma_21_worst_slacks(ns, xs) -> dict[str, float]:
    """Worst (bound - exact) slack per Lemma 2.1 point.

    Points 1, 2 and 4 hold on the whole stated domain (x > 0, p <= 1).
    Point 3 -- ``P[Single] >= (1/x) e^(-1/x)`` -- provably needs ``x >= 1``
    (for x < 1 the exact value undershoots the bound by a (1 - o(1))
    factor); we check it on ``x >= 1`` and report the x < 1 deficit as a
    separate erratum row.
    """
    worst = {
        "null_ub": math.inf,
        "coll_ub": math.inf,
        "single_lb_exp (x>=1)": math.inf,
        "single_lb_poly": math.inf,
        "single_lb_exp erratum (x<1)": math.inf,
    }
    for n in ns:
        for x in xs:
            p = 1.0 / (x * n)
            if p > 1.0:
                continue
            worst["null_ub"] = min(worst["null_ub"], null_upper_bound(x) - p_null(n, p))
            worst["coll_ub"] = min(
                worst["coll_ub"], collision_upper_bound(x) - p_collision(n, p)
            )
            slack3 = p_single(n, p) - single_lower_bound_exp(x)
            if x >= 1.0:
                worst["single_lb_exp (x>=1)"] = min(worst["single_lb_exp (x>=1)"], slack3)
            else:
                worst["single_lb_exp erratum (x<1)"] = min(
                    worst["single_lb_exp erratum (x<1)"], slack3
                )
            worst["single_lb_poly"] = min(
                worst["single_lb_poly"], p_single(n, p) - single_lower_bound_poly(x)
            )
    return worst


def _lemma_24_worst_slack(ns, a_values) -> float:
    worst = math.inf
    for n in ns:
        u0 = math.log2(n)
        for a in a_values:
            C = regular_single_lower_bound(a)
            lo = u0 - math.log2(2.0 * math.log(a))
            hi = u0 + 0.5 * math.log2(a) + 1.0
            for u in np.linspace(max(lo, 0.0), hi, 64):
                p = min(1.0, 2.0**-u)
                worst = min(worst, p_single(n, p) - C)
    return worst


def run(preset: str = "small", seed: int = 2024) -> Table:
    """Run experiment T10 at *preset* scale and return its table."""
    ns = preset_value(preset, [2, 16, 1024], [2, 4, 16, 256, 4096, 2**16, 2**20])
    xs = preset_value(
        preset, [0.5, 1.0, 4.0], [0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0]
    )
    a_values = preset_value(preset, [8.0, 16.0], [8.0, 16.0, 32.0, 80.0])
    trace_reps = preset_value(preset, 10, 100)

    table = Table(
        name=EXPERIMENT,
        title="Numeric verification of the paper's lemmas",
        claim="Lemma 2.1 bounds, Lemma 2.4 constant, Lemma 2.3 counter relations",
        columns=[
            Column("check", "check"),
            Column("grid", "grid"),
            Column("worst_slack", "worst slack", ".3e"),
            Column("holds", "holds"),
        ],
    )
    slacks = _lemma_21_worst_slacks(ns, xs)
    for name, slack in slacks.items():
        expected_to_hold = "erratum" not in name
        table.add_row(
            check=f"Lemma 2.1 {name}",
            grid=f"{len(ns)}x{len(xs)} (n,x)",
            worst_slack=slack,
            holds=bool(slack >= -1e-12) if expected_to_hold else "known-neg",
        )
    s24 = _lemma_24_worst_slack([n for n in ns if n >= 115] or [115, 1024], a_values)
    table.add_row(
        check="Lemma 2.4 P[Single] >= ln(a)/a^2 (n >= 115)",
        grid=f"{len(a_values)} a-values",
        worst_slack=s24,
        holds=bool(s24 >= -1e-12),
    )
    table.add_note(
        "Lemma 2.1(3) as stated requires x >= 1: for x < 1 the exact P[Single] "
        "undershoots (1/x)e^(-1/x) by a (1-o(1)) factor (worst at p = 1); the "
        "paper only uses the bound inside constants, so nothing downstream "
        "breaks.  Lemma 2.4's constant likewise needs the paper's n >= 115."
    )

    # Lemma 2.2: irregular-slot probabilities at the band edges.
    s22_silence = min(
        lemma_2_2_silence_slack(n_, a_) for n_ in ns if n_ >= 8 for a_ in a_values
    )
    s22_collision = min(
        lemma_2_2_collision_slack(n_, a_) for n_ in ns if n_ >= 8 for a_ in a_values
    )
    table.add_row(
        check="Lemma 2.2 P[irregular silence] <= 1/a^2",
        grid=f"{len(a_values)} a-values",
        worst_slack=s22_silence,
        holds=bool(s22_silence >= -1e-12),
    )
    table.add_row(
        check="Lemma 2.2 P[irregular collision] <= 1/a",
        grid=f"{len(a_values)} a-values",
        worst_slack=s22_collision,
        holds=bool(s22_collision >= -1e-12),
    )

    # Lemma 2.3 on real traces.
    n, eps, T = 1024, 0.5, 32
    a = lesk_parameter_a(eps)
    results = replicate(
        lambda s: elect_leader(
            n=n, protocol="lesk", eps=eps, T=T, adversary="saturating", seed=s,
            record_trace=True,
        ),
        trace_reps,
        seed,
        10,
    )
    verdicts = [
        verify_lemma_2_3(classify_trace(r.trace, n=n, a=a), n, a) for r in results
    ]
    for key in ("partition", "correcting_silences", "correcting_collisions"):
        rate = sum(v[key] for v in verdicts) / len(verdicts)
        table.add_row(
            check=f"Lemma 2.3 {key} (live traces)",
            grid=f"{trace_reps} runs, n={n}",
            worst_slack=rate - 1.0,
            holds=bool(rate == 1.0),
        )

    # Theorem 2.6 proof chain: the regular-slot floor on the same traces.
    floors = [
        theorem_2_6_regular_floor(classify_trace(r.trace, n=n, a=a), n, eps)
        for r in results
    ]
    rate = sum(v["satisfied"] for v in floors) / len(floors)
    table.add_row(
        check="Thm 2.6 R >= (5/16) eps t - a log2 n - 1 (live traces)",
        grid=f"{trace_reps} runs, n={n}",
        worst_slack=rate - 1.0,
        holds=bool(rate == 1.0),
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

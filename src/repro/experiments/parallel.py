"""Parallel replication: fan experiment repetitions across processes.

The experiment harness is embarrassingly parallel: every repetition is an
independent simulation with a pre-derived seed.  This module provides a
drop-in parallel variant of :func:`repro.experiments.harness.replicate`
built on :mod:`multiprocessing` (process pool; simulations are pure CPU
and hold the GIL, so threads would not help).

Determinism is preserved by construction: seeds are derived *before*
dispatch from ``(root_seed, path, rep)``, so results are identical to the
serial runner regardless of scheduling -- verified by
``tests/experiments/test_parallel.py``.

Work functions must be picklable (module-level functions plus plain-data
arguments); the experiment modules' ``_one``-style helpers qualify.  For
closures, fall back to the serial :func:`replicate`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.rng import derive_seed

__all__ = ["replicate_parallel", "default_jobs", "run_seeded", "subprocess_context"]


def default_jobs() -> int:
    """A sensible process count: physical-ish core count, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def subprocess_context(threadsafe: bool = False) -> mp.context.BaseContext:
    """The preferred multiprocessing context for worker dispatch.

    ``fork`` keeps the warm imported state on POSIX and is the default.
    Pass ``threadsafe=True`` when the *caller* dispatches from multiple
    threads (as the fault-tolerant runner does with ``--jobs N``): forking
    a multi-threaded process can deadlock the child on locks held mid-fork
    (BLAS thread pools are the classic case), so that path prefers
    ``forkserver``, then ``spawn``.
    """
    methods = mp.get_all_start_methods()
    if not threadsafe and "fork" in methods:
        return mp.get_context("fork")
    for method in ("forkserver", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return mp.get_context()


def run_seeded(args: tuple[Callable, int, tuple]) -> object:
    """Pool work item: ``(fn, seed, extra_args) -> fn(seed, *extra_args)``.

    Module-level so it is picklable under the default start method.
    """
    fn, seed, extra = args
    return fn(seed, *extra)


def _check_picklable_fn(fn: Callable) -> None:
    """Reject lambdas and closures before they kill the worker pool.

    Pool dispatch pickles the work function by *reference* (module + qualified
    name), so a lambda or a function defined inside another function cannot
    cross the process boundary -- without this check the pool dies with an
    opaque ``PicklingError`` deep inside multiprocessing.
    """
    name = getattr(fn, "__name__", "")
    qualname = getattr(fn, "__qualname__", name)
    if name == "<lambda>" or "<locals>" in qualname:
        kind = "a lambda" if name == "<lambda>" else f"defined inside {qualname.split('.<locals>')[0]}()"
        raise ConfigurationError(
            f"replicate_parallel needs a picklable work function, but {fn!r} "
            f"is {kind} and cannot be sent to worker processes. Move it to "
            "module level (bind parameters via extra_args or functools."
            "partial), or use the serial replicate() / jobs=1 instead."
        )


def replicate_parallel(
    fn: Callable,
    reps: int,
    root_seed: int,
    *path: int,
    jobs: int | None = None,
    extra_args: Sequence = (),
) -> list:
    """Parallel version of :func:`repro.experiments.harness.replicate`.

    Parameters
    ----------
    fn:
        Picklable callable ``fn(seed, *extra_args)``.
    reps, root_seed, path:
        Replication count and stable seed-derivation path, exactly as for
        the serial ``replicate``.
    jobs:
        Process count (``None`` -> :func:`default_jobs`; ``1`` runs
        serially in-process, with identical results).
    extra_args:
        Additional positional arguments forwarded to every call.
    """
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    seeds = [derive_seed(root_seed, *path, r) for r in range(reps)]
    extra = tuple(extra_args)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or reps == 1:
        return [fn(seed, *extra) for seed in seeds]
    _check_picklable_fn(fn)
    items = [(fn, seed, extra) for seed in seeds]
    ctx = subprocess_context()  # warm forked state; chunk to cut IPC
    chunksize = max(1, reps // (jobs * 4))
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(run_seeded, items, chunksize=chunksize)

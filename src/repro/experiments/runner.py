"""Fault-tolerant supervised experiment runner.

``run_all`` used to be all-or-nothing: one crashed or hung worker aborted
a multi-hour run and discarded every completed table.  This module wraps
each experiment in a *supervised unit of work*, in the same spirit as the
paper's protocols, which make progress despite an adversary disrupting a
``(T, 1-eps)`` fraction of slots:

* **isolation** -- every attempt runs in its own worker process, so a
  crash (or even a SIGKILL/OOM kill) loses one attempt, not the run;
* **timeout** -- a wall-clock budget per attempt; a hung worker is killed
  and recorded as :class:`~repro.errors.ExperimentTimeoutError`, never
  waited on forever;
* **retry** -- transient failures (crashes, dead workers) are retried
  with exponential backoff and seeded jitter, up to a bounded attempt
  count.  :class:`~repro.errors.ReproError` failures are configuration
  errors by contract and are *never* retried; timeouts are not retried by
  default (a hung worker usually hangs again);
* **checkpointing** -- finished tables are snapshotted atomically to a
  :class:`~repro.experiments.checkpoint.RunDir` the moment they complete,
  with a journal and manifest, so ``--resume`` re-runs only what is
  missing (seeds are path-derived, so the remainder bit-reproduces);
* **graceful degradation** -- with ``keep_going`` (the default) failures
  are collected into a summary table instead of aborting the run, and the
  exit code distinguishes full, partial, and total success.

Determinism note: results always cross the worker boundary as the
table's JSON form (:meth:`~repro.experiments.harness.Table.to_jsonable`),
the same representation checkpoints use -- so direct runs, resumed runs,
and restored checkpoints render byte-identically by construction.
"""

from __future__ import annotations

import importlib
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait as futures_wait
from contextlib import ExitStack
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable

from repro import telemetry as _telemetry
from repro.errors import ChecksumMismatchError, ConfigurationError, ReproError
from repro.experiments.checkpoint import RunDir, atomic_write_text, corrupt_checkpoint
from repro.experiments.faults import FaultPlan
from repro.experiments.harness import Column, Table
from repro.experiments.parallel import subprocess_context
from repro.experiments.retry import RetryPolicy
from repro.experiments.shard_supervisor import shard_context
from repro.telemetry.export import prometheus_text, write_jsonl
from repro.telemetry.report import TELEMETRY_JSONL, TELEMETRY_PROM, TELEMETRY_SUBDIR

__all__ = [
    "RetryPolicy",
    "RunnerConfig",
    "ExperimentOutcome",
    "Runner",
    "failure_table",
    "exit_code",
]

#: Outcome statuses that count as a usable table.
_OK_STATUSES = ("ok", "restored")


@dataclass(frozen=True, slots=True)
class RunnerConfig:
    """Knobs of one supervised run (see the module docstring).

    ``shard_jobs`` (with optional ``shard_block_size`` /
    ``shard_block_timeout``) turns on *intra-experiment* sharding: each
    attempt installs an ambient
    :class:`~repro.experiments.shard_supervisor.ShardContext`, so
    experiments whose cells route through
    :func:`repro.experiments.cells.run_cells` split their rep-blocks
    across supervised shard workers -- with block-level checkpoints under
    ``<run_dir>/shards/`` when the run is checkpointed.
    """

    preset: str = "small"
    seed: int | None = None  # None -> each experiment's module default
    jobs: int = 1
    timeout: float | None = None  # wall-clock seconds per attempt
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    keep_going: bool = True
    fault_plan: FaultPlan | None = None
    isolate: bool = True  # False: in-process attempts (no timeout/kill)
    telemetry: bool = False  # collect per-attempt metrics and merge them
    telemetry_stride: int = _telemetry.DEFAULT_STRIDE
    shard_jobs: int | None = None  # None: experiments run their cells unsharded
    shard_block_size: int | None = None
    shard_block_timeout: float | None = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.telemetry_stride < 1:
            raise ConfigurationError(
                f"telemetry_stride must be >= 1, got {self.telemetry_stride}"
            )
        if self.shard_jobs is not None and self.shard_jobs < 1:
            raise ConfigurationError(
                f"shard_jobs must be >= 1, got {self.shard_jobs}"
            )
        if self.shard_block_size is not None and self.shard_block_size < 1:
            raise ConfigurationError(
                f"shard_block_size must be >= 1, got {self.shard_block_size}"
            )


@dataclass(slots=True)
class ExperimentOutcome:
    """What happened to one experiment across all its attempts."""

    exp_id: str
    status: str  # "ok" | "restored" | "failed" | "timeout" | "aborted"
    table: Table | None = None
    attempts: int = 0
    elapsed: float = 0.0
    error: str | None = None
    traceback: str | None = None
    checksum: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in _OK_STATUSES


class _AttemptFailure(Exception):
    """Internal: one attempt failed; carries retryability and diagnostics."""

    def __init__(self, kind: str, message: str, tb: str | None, permanent: bool):
        super().__init__(message)
        self.kind = kind  # "error" | "crash" | "timeout"
        self.message = message
        self.tb = tb
        self.permanent = permanent


def _attempt_worker(
    conn, module_name, exp_id, preset, seed, attempt, fault_plan, tel_stride=None,
    shard=None,
):
    """Child-process body: run one experiment attempt, ship the result back.

    Module-level (picklable by reference) so it works under fork,
    forkserver and spawn alike.  All exceptions -- including injected
    faults -- are serialized rather than raised, so the parent can decide
    retryability; only a hard kill leaves the pipe empty.

    With *tel_stride* set, the attempt runs under a fresh scoped telemetry
    sink and its registry ships home alongside the table (as JSON, the
    same merge-safe form the exporters use), so the parent can aggregate
    across processes regardless of the start method.

    With *shard* set (a dict of :class:`~repro.experiments
    .shard_supervisor.ShardContext` fields), the attempt installs the
    ambient shard context so the experiment's cells run on the supervised
    sharded path; the child process is discarded afterwards, so no
    restore is needed.
    """
    try:
        if shard is not None:
            from repro.experiments.shard_supervisor import (
                ShardContext as _ShardContext,
                configure_shard_context,
            )

            configure_shard_context(_ShardContext(**shard))
        if fault_plan is not None:
            fault_plan.fire(exp_id, attempt)
        module = importlib.import_module(module_name)
        kwargs = {"preset": preset}
        if seed is not None:
            kwargs["seed"] = seed
        if tel_stride is not None:
            with _telemetry.collecting(stride=tel_stride) as tel:
                table = module.run(**kwargs)
            conn.send(
                (
                    "ok",
                    {"table": table.to_jsonable(), "telemetry": tel.to_jsonable()},
                )
            )
        else:
            table = module.run(**kwargs)
            conn.send(("ok", table.to_jsonable()))
    except BaseException as exc:  # noqa: BLE001 -- ship *everything* home
        conn.send(
            (
                "error",
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                    "permanent": isinstance(exc, ReproError),
                },
            )
        )
    finally:
        conn.close()


class Runner:
    """Supervised execution of a list of experiments.

    Parameters
    ----------
    ids:
        Experiment ids, in output order.
    modules:
        ``id -> module path`` registry (normally
        ``run_all.EXPERIMENT_MODULES``).
    config:
        The :class:`RunnerConfig`.
    run_dir:
        Optional :class:`~repro.experiments.checkpoint.RunDir` for
        checkpoints/journal/outputs; ``None`` runs ephemerally.
    resume:
        When true, valid checkpoints in *run_dir* are restored instead of
        recomputed (corrupt ones are detected and recomputed).  The caller
        is responsible for manifest validation before constructing the
        runner (see ``run_all.main``).
    """

    def __init__(
        self,
        ids: list[str],
        modules: dict[str, str],
        config: RunnerConfig,
        run_dir: RunDir | None = None,
        resume: bool = False,
    ):
        unknown = [i for i in ids if i not in modules]
        if unknown:
            raise ConfigurationError(f"unknown experiment ids: {unknown}")
        self.ids = list(ids)
        self.modules = modules
        self.config = config
        self.run_dir = run_dir
        self.resume = resume
        # Worker processes are forked directly when dispatch is
        # single-threaded; multi-threaded dispatch needs a thread-safe
        # start method (forking under live threads can deadlock in BLAS).
        self._ctx = subprocess_context(threadsafe=config.jobs > 1)
        # Run-level telemetry aggregate; attempt shards merge in under a
        # lock because multi-job dispatch finalizes from pool threads.
        self.telemetry: _telemetry.Telemetry | None = (
            _telemetry.Telemetry(stride=config.telemetry_stride)
            if config.telemetry
            else None
        )
        self._tel_lock = threading.Lock()

    # -- single attempt ----------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self.run_dir is not None:
            self.run_dir.append_journal(record)

    def _attempt(self, exp_id: str, attempt: int) -> Table:
        """Run one attempt; returns the table or raises :class:`_AttemptFailure`."""
        if self.config.isolate:
            status, payload = self._attempt_isolated(exp_id, attempt)
        else:
            status, payload = self._attempt_inline(exp_id, attempt)
        if status == "ok":
            if isinstance(payload, dict) and "telemetry" in payload:
                self._absorb_telemetry(exp_id, attempt, payload["telemetry"])
                payload = payload["table"]
            return Table.from_jsonable(payload)
        raise _AttemptFailure(
            kind="error",
            message=f"{payload['type']}: {payload['message']}",
            tb=payload.get("traceback"),
            permanent=payload["permanent"],
        )

    def _shard_settings(self) -> dict | None:
        """The ambient shard-context fields for attempts, or None.

        Block checkpoints live in one shared ``<run_dir>/shards/``
        directory for all experiments: block checkpoint keys are
        content-addressed over the full cell spec (kind, parameters, seed
        path), so blocks from different experiments can never collide.
        """
        if self.config.shard_jobs is None:
            return None
        checkpoint_dir = (
            str(self.run_dir.root / "shards") if self.run_dir is not None else None
        )
        return {
            "jobs": self.config.shard_jobs,
            "block_size": self.config.shard_block_size,
            "block_timeout": self.config.shard_block_timeout,
            "checkpoint_dir": checkpoint_dir,
            "fault_plan": self.config.fault_plan,
            # Inline attempts may be dispatched from runner threads; shard
            # workers must then avoid fork-under-threads.
            "threadsafe": not self.config.isolate and self.config.jobs > 1,
        }

    def _attempt_inline(self, exp_id: str, attempt: int):
        """In-process attempt (no isolation: hangs/timeouts unsupported)."""
        try:
            plan = self.config.fault_plan
            if plan is not None:
                plan.fire(exp_id, attempt)
            module = importlib.import_module(self.modules[exp_id])
            kwargs = {"preset": self.config.preset}
            if self.config.seed is not None:
                kwargs["seed"] = self.config.seed
            shard = self._shard_settings()
            with ExitStack() as stack:
                if shard is not None:
                    stack.enter_context(shard_context(**shard))
                if self.config.telemetry:
                    tel = stack.enter_context(
                        _telemetry.collecting(stride=self.config.telemetry_stride)
                    )
                    table = module.run(**kwargs)
                    table_json = table.to_jsonable()
                    tel_json = tel.to_jsonable()
                else:
                    table_json, tel_json = module.run(**kwargs).to_jsonable(), None
            if tel_json is not None:
                return "ok", {"table": table_json, "telemetry": tel_json}
            return "ok", table_json
        except Exception as exc:  # noqa: BLE001 -- mirrors the worker protocol
            return "error", {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "permanent": isinstance(exc, ReproError),
            }

    def _attempt_isolated(self, exp_id: str, attempt: int):
        """Run one attempt in a killable worker process."""
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_attempt_worker,
            args=(
                send,
                self.modules[exp_id],
                exp_id,
                self.config.preset,
                self.config.seed,
                attempt,
                self.config.fault_plan,
                self.config.telemetry_stride if self.config.telemetry else None,
                self._shard_settings(),
            ),
            name=f"repro-{exp_id}-attempt{attempt}",
        )
        proc.start()
        send.close()  # parent holds only the read end
        try:
            ready = connection_wait([recv, proc.sentinel], self.config.timeout)
            if not ready:  # wall-clock budget exhausted: kill, don't wait
                self._kill(proc)
                raise _AttemptFailure(
                    kind="timeout",
                    message=(
                        f"ExperimentTimeoutError: {exp_id} attempt {attempt} "
                        f"exceeded {self.config.timeout:.1f}s and was killed"
                    ),
                    tb=None,
                    permanent=not self.config.retry.retry_timeouts,
                )
            msg = None
            try:
                # The sentinel can fire while the result is still in flight;
                # a short grace poll catches it either way.
                if recv.poll(0.25):
                    msg = recv.recv()
            except (EOFError, OSError):
                msg = None
            if msg is None:  # died without reporting: crash / OOM / SIGKILL
                proc.join(5)
                raise _AttemptFailure(
                    kind="crash",
                    message=(
                        f"worker for {exp_id} attempt {attempt} died without a "
                        f"result (exit code {proc.exitcode})"
                    ),
                    tb=None,
                    permanent=False,
                )
            proc.join(10)
            if proc.is_alive():
                self._kill(proc)
            return msg
        finally:
            recv.close()
            if proc.is_alive():
                self._kill(proc)

    def _absorb_telemetry(self, exp_id: str, attempt: int, data: dict) -> None:
        """Merge one attempt's telemetry shard into the run-level aggregate.

        Counters add and histograms add bucket-wise, so retried attempts
        each contribute their (journaled) share; the journal record keeps
        the per-attempt totals addressable after merging.
        """
        if self.telemetry is None:
            return
        shard = _telemetry.Telemetry.from_jsonable(data)
        with self._tel_lock:
            self.telemetry.merge(shard)
        self._journal(
            {
                "event": "telemetry",
                "id": exp_id,
                "attempt": attempt,
                "counters": shard.metrics.totals_by_name(),
                "events": len(shard.events),
                "events_dropped": shard.events.dropped,
            }
        )

    def _export_telemetry(self) -> None:
        """Persist the merged run-level telemetry next to the checkpoints."""
        if self.telemetry is None or self.run_dir is None:
            return
        if not self.telemetry.metrics.totals_by_name() and not len(
            self.telemetry.events
        ):
            # Nothing collected (e.g. a --resume run restored everything):
            # keep any previous export instead of clobbering it with blanks.
            return
        tel_dir = self.run_dir.root / TELEMETRY_SUBDIR
        tel_dir.mkdir(parents=True, exist_ok=True)
        write_jsonl(tel_dir / TELEMETRY_JSONL, self.telemetry)
        atomic_write_text(
            tel_dir / TELEMETRY_PROM, prometheus_text(self.telemetry.metrics)
        )

    @staticmethod
    def _kill(proc) -> None:
        proc.terminate()
        proc.join(5)
        if proc.is_alive():
            proc.kill()
            proc.join(5)

    # -- one experiment, with retries -------------------------------------

    def _supervise(self, exp_id: str) -> ExperimentOutcome:
        """Drive one experiment through attempts, checkpoint its result."""
        policy = self.config.retry
        started = time.perf_counter()
        last: _AttemptFailure | None = None
        for attempt in range(1, policy.max_attempts + 1):
            self._journal({"event": "attempt_start", "id": exp_id, "attempt": attempt})
            attempt_start = time.perf_counter()
            try:
                table = self._attempt(exp_id, attempt)
            except _AttemptFailure as failure:
                last = failure
                self._journal(
                    {
                        "event": "attempt_end",
                        "id": exp_id,
                        "attempt": attempt,
                        "status": failure.kind,
                        "elapsed": round(time.perf_counter() - attempt_start, 3),
                        "error": failure.message,
                        "traceback": failure.tb,
                        "permanent": failure.permanent,
                    }
                )
                if failure.permanent or attempt == policy.max_attempts:
                    break
                time.sleep(policy.delay(exp_id, attempt))
                continue
            elapsed = time.perf_counter() - started
            self._journal(
                {
                    "event": "attempt_end",
                    "id": exp_id,
                    "attempt": attempt,
                    "status": "ok",
                    "elapsed": round(time.perf_counter() - attempt_start, 3),
                }
            )
            checksum = self._checkpoint(table, exp_id, attempt)
            self._journal(
                {
                    "event": "done",
                    "id": exp_id,
                    "status": "ok",
                    "attempts": attempt,
                    "elapsed": round(elapsed, 3),
                    "checksum": checksum,
                }
            )
            return ExperimentOutcome(
                exp_id=exp_id,
                status="ok",
                table=table,
                attempts=attempt,
                elapsed=elapsed,
                checksum=checksum,
            )
        assert last is not None
        elapsed = time.perf_counter() - started
        status = "timeout" if last.kind == "timeout" else "failed"
        self._journal(
            {
                "event": "done",
                "id": exp_id,
                "status": status,
                "attempts": attempt,
                "elapsed": round(elapsed, 3),
                "error": last.message,
                "traceback": last.tb,
            }
        )
        return ExperimentOutcome(
            exp_id=exp_id,
            status=status,
            attempts=attempt,
            elapsed=elapsed,
            error=last.message,
            traceback=last.tb,
        )

    def _checkpoint(self, table: Table, exp_id: str, attempt: int) -> str | None:
        """Snapshot a finished table (and apply any planned corruption)."""
        if self.run_dir is None:
            return None
        checksum = self.run_dir.save_table(table)
        plan = self.config.fault_plan
        if plan is not None and plan.should_corrupt(exp_id, attempt):
            corrupt_checkpoint(self.run_dir.checkpoint_path(exp_id), plan.seed)
        self.run_dir.write_outputs(table)
        return checksum

    def _restore(self, exp_id: str) -> ExperimentOutcome | None:
        """Restore a valid checkpoint on resume, or None to recompute."""
        if not (self.resume and self.run_dir and self.run_dir.has_checkpoint(exp_id)):
            return None
        try:
            table = self.run_dir.load_table(exp_id)
        except ChecksumMismatchError as exc:
            self._journal({"event": "recompute", "id": exp_id, "reason": str(exc)})
            return None
        self.run_dir.write_outputs(table)  # regenerate .txt/.csv for a full set
        checksum = self.run_dir.save_table(table)
        self._journal({"event": "restored", "id": exp_id, "checksum": checksum})
        return ExperimentOutcome(
            exp_id=exp_id, status="restored", table=table, checksum=checksum
        )

    # -- the whole run -----------------------------------------------------

    def run(
        self, on_outcome: Callable[[ExperimentOutcome], None] | None = None
    ) -> list[ExperimentOutcome]:
        """Run every experiment; returns outcomes in ``ids`` order.

        *on_outcome* is invoked as each experiment finalizes (possibly from
        a dispatcher thread, in completion order).  With ``keep_going``
        off, the first failure stops dispatch; experiments never started
        are reported with status ``"aborted"``.
        """
        outcomes: dict[str, ExperimentOutcome] = {}
        emit = on_outcome or (lambda outcome: None)

        pending: list[str] = []
        for exp_id in self.ids:
            restored = self._restore(exp_id)
            if restored is not None:
                outcomes[exp_id] = restored
                emit(restored)
            else:
                pending.append(exp_id)

        if self.config.jobs == 1:
            for exp_id in pending:
                if not self.config.keep_going and any(
                    not o.ok for o in outcomes.values()
                ):
                    outcomes[exp_id] = ExperimentOutcome(exp_id, "aborted")
                    self._journal({"event": "aborted", "id": exp_id})
                    emit(outcomes[exp_id])
                    continue
                outcomes[exp_id] = self._supervise(exp_id)
                emit(outcomes[exp_id])
        elif pending:
            with ThreadPoolExecutor(
                max_workers=min(self.config.jobs, len(pending)),
                thread_name_prefix="repro-runner",
            ) as pool:
                futures = {pool.submit(self._supervise, i): i for i in pending}
                not_done = set(futures)
                while not_done:
                    done, not_done = futures_wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        exp_id = futures[future]
                        if future.cancelled():
                            outcomes[exp_id] = ExperimentOutcome(exp_id, "aborted")
                            self._journal({"event": "aborted", "id": exp_id})
                        else:
                            outcomes[exp_id] = future.result()
                        emit(outcomes[exp_id])
                        if not outcomes[exp_id].ok and not self.config.keep_going:
                            for pending_future in not_done:
                                pending_future.cancel()

        if self.run_dir is not None:
            failures = [o for o in outcomes.values() if not o.ok]
            failures_path = self.run_dir.root / "failures.txt"
            if failures:
                atomic_write_text(
                    failures_path,
                    failure_table([outcomes[i] for i in self.ids if i in outcomes])
                    .render()
                    + "\n",
                )
            else:
                failures_path.unlink(missing_ok=True)
        self._export_telemetry()
        return [outcomes[i] for i in self.ids if i in outcomes]


def failure_table(outcomes: list[ExperimentOutcome]) -> Table:
    """The graceful-degradation summary: every non-ok experiment, one row."""
    table = Table(
        name="FAILURES",
        title="experiments that did not complete",
        claim=(
            "graceful degradation: --keep-going collects failures instead of "
            "aborting the run"
        ),
        columns=[
            Column("id", "id"),
            Column("status", "status"),
            Column("attempts", "attempts"),
            Column("elapsed", "elapsed s", ".1f"),
            Column("error", "error"),
        ],
    )
    for outcome in outcomes:
        if outcome.ok:
            continue
        table.add_row(
            id=outcome.exp_id,
            status=outcome.status,
            attempts=outcome.attempts,
            elapsed=outcome.elapsed,
            error=(outcome.error or "")[:200],
        )
    return table


def exit_code(outcomes: list[ExperimentOutcome]) -> int:
    """0 = every table produced; 2 = partial success; 1 = nothing usable."""
    if all(o.ok for o in outcomes):
        return 0
    if any(o.ok for o in outcomes) and not any(
        o.status == "aborted" for o in outcomes
    ):
        return 2
    return 1

"""A3 -- the paper's open problem, quantified: the no-CD frontier.

Section 4: "it is not clear what countermeasures against a jammer can be
constructed for the communication model without collision detection."

Two halves to the problem, and this experiment measures the half that is
measurable:

1. **Selection** (getting a first ``Single``) *can* survive jamming in
   no-CD -- but only via oblivious repetition ([19]-style schedules that
   ignore feedback entirely), at an ``O(log^2 n)``-ish slot bill.  The
   table races the no-CD sweep against LESK across the jammer suite: both
   succeed, but the adaptive protocol is far cheaper *and* its advantage
   is exactly the feedback bit no-CD lacks.

2. **Termination** is the open half: in no-CD a listener cannot
   distinguish ``Null`` from ``Collision``, so LESK's estimator has no
   unforgeable anchor and -- worse -- the Notification construction
   breaks: the leader quits on a *silence* in ``C_1`` (Function 4), an
   event a no-CD station simply cannot observe.  No table can show a
   protocol that does not exist; the note records the structural reason.
"""

from __future__ import annotations

from repro.experiments.cells import CellSpec, run_cells
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "A3"


def run(preset: str = "small", seed: int = 2029, batched: bool | None = None) -> Table:
    """Run experiment A3 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; both the
    no-CD sweep and the LESK side vectorize, and ``single-suppressor``
    (the jammer used here) is now batchable.
    """
    if batched is None:
        batched = batched_enabled(preset)
    ns = preset_value(preset, [2**8, 2**14], [2**8, 2**12, 2**16, 2**20, 2**24])
    reps = preset_value(preset, 10, 60)
    eps = 0.5
    T = 16
    cap = preset_value(preset, 100_000, 500_000)
    adversary = "single-suppressor"

    table = Table(
        name=EXPERIMENT,
        title=f"no-CD oblivious selection vs CD-adaptive LESK "
        f"({adversary} jammer, eps={eps})",
        claim="Sec 4 open problem: no-CD selection survives only by oblivious "
        "repetition, pays ~log^2 n, and cannot notify its winner",
        columns=[
            Column("n", "n"),
            Column("nocd_median", "no-CD median", ".0f"),
            Column("nocd_success", "no-CD success", ".3f"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("lesk_success", "LESK success", ".3f"),
            Column("ratio", "no-CD/LESK", ".1f"),
        ],
    )
    nocd_specs = [
        CellSpec(
            kind="nocd", n=n, eps=eps, T=T, adversary=adversary,
            reps=reps, root_seed=seed, path=(15, ni, 0), batched=batched,
            max_slots=cap,
        )
        for ni, n in enumerate(ns)
    ]
    lesk_specs = [
        CellSpec(
            kind="lesk", n=n, eps=eps, T=T, adversary=adversary,
            reps=reps, root_seed=seed, path=(15, ni, 1), batched=batched,
            max_slots=cap,
        )
        for ni, n in enumerate(ns)
    ]
    nocd_cells = run_cells(nocd_specs)
    lesk_cells = run_cells(lesk_specs)
    nocd_pts, lesk_pts = [], []
    for ni, n in enumerate(ns):
        nocd = nocd_cells[ni]
        lesk = lesk_cells[ni]
        ns_ = summarize_times(nocd)
        ls = summarize_times(lesk)
        table.add_row(
            n=n,
            nocd_median=ns_["median_slots"],
            nocd_success=ns_["success_rate"],
            lesk_median=ls["median_slots"],
            lesk_success=ls["success_rate"],
            ratio=ns_["median_slots"] / max(1.0, ls["median_slots"]),
        )
        nocd_pts.append(ns_["median_slots"])
        lesk_pts.append(ls["median_slots"])
    import math

    from repro.analysis.estimators import fit_power_law

    logn = [math.log2(n) for n in ns]
    table.add_note(
        f"growth in log2(n): no-CD slope "
        f"{fit_power_law(logn, nocd_pts).slope:.2f} (theory 2), LESK "
        f"{fit_power_law(logn, lesk_pts).slope:.2f} (theory 1)"
    )
    table.add_note(
        "selection-resolution semantics (first Single).  Full no-CD *election* "
        "is the open problem: the winner cannot be notified -- Notification's "
        "termination signal is a Null in C_1, invisible without collision "
        "detection -- and any adaptive estimator lacks an unforgeable anchor."
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""A5 -- the Section 4 building blocks, measured end to end.

"We believe that some of the presented procedures can be also used as
building blocks in constructions of other protocols including size
approximation, k-selection or fair use of the wireless channel."

One table, three panels over a sweep of n under the saturating jammer:

* **size approximation** -- error of the walk-based estimate
  (`|log2(est) - log2(n)|`, should stay within a few doublings) and the
  fraction of runs whose accuracy bracket contains the truth;
* **k-selection** -- total slots to elect k = 4 leaders and the marginal
  cost per extra leader (should be far below the first election: the
  estimator is already calibrated);
* **fair use** -- Jain fairness of leader-coordinated TDMA goodput and the
  loss rate (loss ~ 1-eps is the adversary's entitlement; fairness should
  stay near 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.applications.fair_use import simulate_fair_use
from repro.applications.k_selection import select_k_leaders
from repro.applications.size_estimation import estimate_size_walk
from repro.experiments.harness import Column, Table, preset_value, replicate

EXPERIMENT = "A5"


def run(preset: str = "small", seed: int = 2031) -> Table:
    """Run experiment A5 at *preset* scale and return its table."""
    ns = preset_value(preset, [64, 512], [64, 256, 1024, 4096])
    reps = preset_value(preset, 6, 40)
    eps, T = 0.5, 16
    adversary = "saturating"
    k = 4

    table = Table(
        name=EXPERIMENT,
        title=f"Section 4 building blocks under the {adversary} jammer (eps={eps})",
        claim="Sec 4: size approximation, k-selection and fair channel use "
        "from the paper's primitives",
        columns=[
            Column("n", "n"),
            Column("size_err", "size err (log2)", ".2f"),
            Column("size_in_bracket", "in bracket", ".3f"),
            Column("kselect_slots", "4-select slots", ".0f"),
            Column("marginal", "marginal/leader", ".1f"),
            Column("fairness", "TDMA fairness", ".3f"),
            Column("loss", "TDMA loss", ".3f"),
        ],
    )
    for ni, n in enumerate(ns):
        est = replicate(
            lambda s: estimate_size_walk(n=n, eps=eps, T=T, adversary=adversary, seed=s),
            reps,
            seed,
            17,
            ni,
            0,
        )
        errs = [abs(e.log2_estimate - math.log2(n)) for e in est]
        in_bracket = sum(1 for e in est if e.n_low <= n <= e.n_high) / len(est)

        ks = replicate(
            lambda s: select_k_leaders(
                n=n, k=k, eps=eps, T=T, adversary=adversary, seed=s
            ),
            reps,
            seed,
            17,
            ni,
            1,
        )
        slots = float(np.median([r.slots for r in ks]))
        marginals = [
            (r.win_slots[-1] - r.win_slots[0]) / (k - 1) for r in ks
        ]

        fu = replicate(
            lambda s: simulate_fair_use(
                n=min(n, 64), eps=eps, T=T, adversary=adversary, cycles=8, seed=s
            ),
            reps,
            seed,
            17,
            ni,
            2,
        )
        table.add_row(
            n=n,
            size_err=float(np.median(errs)),
            size_in_bracket=in_bracket,
            kselect_slots=slots,
            marginal=float(np.median(marginals)),
            fairness=float(np.mean([r.tdma_fairness for r in fu])),
            loss=float(np.mean([r.tdma_loss for r in fu])),
        )
    table.add_note(
        "size bracket from the walk equilibrium analysis; k-selection keeps "
        "the estimator across wins, so marginal cost per extra leader is "
        "O(1/eps) slots; TDMA capped at 64 participants for the fairness panel"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

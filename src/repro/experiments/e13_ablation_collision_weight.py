"""A1 -- ablation: the collision weight ``1/a`` with ``a = 8/eps``.

Algorithm 1 increments the estimator by ``1/a`` per observed collision with
``a = 8/eps``.  Why 8?  The proof needs (i) each genuine silence to
out-weigh the ``(1-eps)/eps`` jammed slots surrounding it (so ``a``
*must* exceed ``~1/eps``) and (ii) ``a >= 8`` for the Lemma 2.4 constant.
This ablation sweeps the multiplier ``m`` in ``a = m/eps`` under the
collision-forcing jammer:

* ``m`` too small (``a`` close to ``1/eps``): jamming out-runs silences,
  the walk drifts above the election band and times out -- the symmetric
  strawman's failure mode reappears;
* ``m`` too large: each collision moves the walk by a sliver, inflating
  the initial climb (``a * log2 n`` slots) linearly in ``m``.

The paper's ``m = 8`` sits near the flat bottom of the resulting U-curve.
"""

from __future__ import annotations

from repro.adversary.suite import make_adversary
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times
from repro.protocols.lesk import LESKPolicy
from repro.sim.fast import simulate_uniform_fast

EXPERIMENT = "A1"


class _WeightedLESK(LESKPolicy):
    """LESK with an explicit collision weight (ablation only)."""

    def __init__(self, eps: float, multiplier: float) -> None:
        super().__init__(eps)
        self.a = multiplier / eps  # override Algorithm 1's 8/eps

    def clone(self) -> "_WeightedLESK":
        return _WeightedLESK(self.eps, self.a * self.eps)


def run(preset: str = "small", seed: int = 2027) -> Table:
    """Run experiment A1 at *preset* scale and return its table."""
    multipliers = preset_value(
        preset, [0.5, 2.0, 8.0, 32.0], [0.5, 0.6, 0.8, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
    )
    reps = preset_value(preset, 20, 150)
    n = 1024
    eps = 0.3
    T = 32
    cap = preset_value(preset, 30_000, 100_000)

    table = Table(
        name=EXPERIMENT,
        title=f"Ablation: collision weight a = m/eps (n={n}, eps={eps}, "
        "collision-forcing jammer)",
        claim="Algorithm 1's a = 8/eps balances jam resistance (a >> 1/eps) "
        "against climb cost (a log n)",
        columns=[
            Column("m", "m (a = m/eps)", ".1f"),
            Column("median_slots", "median slots", ".0f"),
            Column("p90_slots", "p90", ".0f"),
            Column("success_rate", "success", ".3f"),
        ],
    )
    for mi, m in enumerate(multipliers):
        results = replicate(
            lambda s: simulate_uniform_fast(
                _WeightedLESK(eps, m),
                n=n,
                adversary=make_adversary("collision-forcer", T=T, eps=eps),
                max_slots=cap,
                seed=s,
            ),
            reps,
            seed,
            13,
            mi,
        )
        stats = summarize_times(results)
        table.add_row(
            m=m,
            median_slots=stats["median_slots"],
            p90_slots=stats["p90_slots"],
            success_rate=stats["success_rate"],
        )
    table.add_note(
        f"timeouts count at the cap ({cap}); the walk diverges once the "
        f"jammed drift (1-eps)/a outweighs the clear-slot pull (a < (1-eps)/eps, "
        f"i.e. m < {(1.0 - eps):.1f} here); large m pays a linear climb penalty"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""Regenerate every experiment table: ``python -m repro.experiments.run_all``.

Options::

    --preset small|smoke|full
                          (default: full; smoke = the small parameters,
                          named for CI and acceptance runs)
    --out DIR             checkpointed run directory: per-experiment .txt
                          and .csv, plus checkpoints/, journal.jsonl and
                          manifest.json (see docs/runner.md)
    --telemetry           collect metrics/events in every attempt, merge
                          them across workers, and persist the aggregate
                          under DIR/telemetry/ (see docs/telemetry.md);
                          render with `python -m repro telemetry report DIR`
    --telemetry-stride N  event-sampling stride in slots (default 64)
    --resume DIR          continue an interrupted --out run: restore valid
                          checkpoints, recompute only what is missing
    --only T1,T5,F1       run a subset by experiment id
    --jobs N              run experiments in N parallel workers
                          (results identical: seeds are pre-derived)
    --seed N              root seed forwarded to every experiment
                          (default: each module's published default)
    --timeout S           wall-clock budget per attempt; a hung worker is
                          killed and recorded, not waited on forever
    --retries N           max attempts per experiment (default 3);
                          transient crashes retry with backoff + jitter,
                          ReproError config failures and timeouts do not
    --backoff S           base backoff delay between retries (default 0.5)
    --keep-going          collect failures and keep running (default);
    --no-keep-going       abort dispatch at the first failure
    --inject-faults SPEC  chaos testing: deterministic faults, e.g.
                          "T1:raise@1,T7:hang@2" (see repro.experiments.faults);
                          block<N>:kill/hang/corrupt-result@E atoms target
                          the shard supervisor's work units
    --shard-jobs N        split each experiment's sharded cells across N
                          supervised shard workers (block-level retry,
                          quarantine, speculation, checkpoints under
                          DIR/shards/; see docs/runner.md)
    --shard-block-size N  repetitions per shard block (default 64)
    --shard-timeout S     wall-clock budget per shard block; a hung block's
                          worker is killed and the block retried/quarantined

Exit status: 0 every table produced, 2 partial success (some experiments
failed but the rest completed and were checkpointed), 1 total failure or
an aborted --no-keep-going run.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import RunDir, build_manifest, cli_invocation
from repro.experiments.faults import FaultPlan
from repro.experiments.runner import (
    ExperimentOutcome,
    RetryPolicy,
    Runner,
    RunnerConfig,
    exit_code,
    failure_table,
)

EXPERIMENT_MODULES: dict[str, str] = {
    "T1": "repro.experiments.e01_lesk_scaling",
    "T2": "repro.experiments.e02_lesk_eps",
    "T3": "repro.experiments.e03_lower_bound",
    "T4": "repro.experiments.e04_estimation",
    "T5": "repro.experiments.e05_lesu",
    "T6": "repro.experiments.e06_notification",
    "T7": "repro.experiments.e07_vs_ars",
    "T8": "repro.experiments.e08_adversary_ablation",
    "T9": "repro.experiments.e09_energy",
    "T10": "repro.experiments.e10_lemma_checks",
    "F1": "repro.experiments.e11_trajectory",
    "F2": "repro.experiments.e12_success_curve",
    "A1": "repro.experiments.e13_ablation_collision_weight",
    "A2": "repro.experiments.e14_ablation_lesu_c",
    "A3": "repro.experiments.e15_nocd_frontier",
    "A4": "repro.experiments.e16_ars_throughput",
    "A5": "repro.experiments.e17_applications",
    "A6": "repro.experiments.e18_energy_frontier",
    "A7": "repro.experiments.e19_price_of_universality",
    "A8": "repro.experiments.e20_worst_case_search",
    "A9": "repro.experiments.e21_interval_ablation",
    "A10": "repro.experiments.e22_fault_degradation",
}


def run_experiment(exp_id: str, preset: str):
    """Run one experiment by id, in-process, and return its Table.

    The direct, unsupervised path -- used by tests and notebooks.  The CLI
    goes through :class:`repro.experiments.runner.Runner` instead, which
    adds isolation, timeout, retry and checkpointing around this same
    unit of work.
    """
    import importlib

    module = importlib.import_module(EXPERIMENT_MODULES[exp_id])
    return module.run(preset=preset)


class _OrderedPrinter:
    """Emit per-experiment output in ``ids`` order as outcomes stream in.

    The runner finalizes experiments in completion order (and from
    dispatcher threads with ``--jobs N``); buffering out-of-order results
    keeps stdout deterministic without delaying everything to the end.
    """

    def __init__(self, ids: list[str]):
        self._order = list(ids)
        self._buffer: dict[str, ExperimentOutcome] = {}
        self._next = 0
        self._lock = threading.Lock()

    def __call__(self, outcome: ExperimentOutcome) -> None:
        with self._lock:
            self._buffer[outcome.exp_id] = outcome
            while self._next < len(self._order):
                ready = self._buffer.pop(self._order[self._next], None)
                if ready is None:
                    break
                self._next += 1
                self._print(ready)

    @staticmethod
    def _print(outcome: ExperimentOutcome) -> None:
        if outcome.status == "ok":
            print(outcome.table.render())
            suffix = f" in {outcome.attempts} attempts" if outcome.attempts > 1 else ""
            print(f"[{outcome.exp_id} done in {outcome.elapsed:.1f}s{suffix}]\n",
                  flush=True)
        elif outcome.status == "restored":
            print(outcome.table.render())
            print(f"[{outcome.exp_id} restored from checkpoint]\n", flush=True)
        elif outcome.status == "aborted":
            print(f"[{outcome.exp_id} aborted: --no-keep-going]\n", flush=True)
        else:
            print(
                f"[{outcome.exp_id} {outcome.status} after {outcome.attempts} "
                f"attempt(s): {outcome.error}]\n",
                flush=True,
            )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for options."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", choices=("small", "smoke", "full"), default="full"
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--resume", type=Path, default=None, metavar="RUN_DIR")
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--backoff", type=float, default=0.5)
    parser.add_argument(
        "--keep-going",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="collect failures and keep running (default on)",
    )
    parser.add_argument("--inject-faults", type=str, default=None, metavar="SPEC")
    parser.add_argument("--shard-jobs", type=int, default=None, metavar="N")
    parser.add_argument("--shard-block-size", type=int, default=None, metavar="N")
    parser.add_argument("--shard-timeout", type=float, default=None, metavar="S")
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect and persist merged metrics/events (docs/telemetry.md)",
    )
    parser.add_argument("--telemetry-stride", type=int, default=64, metavar="N")
    args = parser.parse_args(argv)
    if args.telemetry_stride < 1:
        parser.error("--telemetry-stride must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if args.shard_jobs is not None and args.shard_jobs < 1:
        parser.error("--shard-jobs must be >= 1")
    if args.shard_block_size is not None and args.shard_block_size < 1:
        parser.error("--shard-block-size must be >= 1")
    if (args.shard_block_size or args.shard_timeout) and args.shard_jobs is None:
        parser.error("--shard-block-size/--shard-timeout require --shard-jobs")
    if args.out and args.resume:
        parser.error("--out and --resume are mutually exclusive "
                     "(--resume already names the run directory)")

    ids = list(EXPERIMENT_MODULES)
    if args.only:
        ids = [i.strip() for i in args.only.split(",") if i.strip()]
        unknown = [i for i in ids if i not in EXPERIMENT_MODULES]
        if unknown:
            parser.error(f"unknown experiment ids: {unknown}")

    fault_plan = None
    if args.inject_faults:
        try:
            fault_plan = FaultPlan.from_spec(args.inject_faults).validate_ids(
                EXPERIMENT_MODULES
            )
        except ConfigurationError as exc:
            parser.error(str(exc))

    run_dir = None
    resume = args.resume is not None
    sharded = None
    if args.shard_jobs is not None:
        sharded = {
            "shard_jobs": args.shard_jobs,
            "shard_block_size": args.shard_block_size,
            "shard_timeout": args.shard_timeout,
        }
    manifest = build_manifest(
        args.preset,
        ids,
        args.seed,
        sharded=sharded,
        invocation=cli_invocation("experiments", argv),
    )
    if resume:
        run_dir = RunDir(args.resume)
        try:
            warnings = run_dir.validate_manifest(manifest)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
    elif args.out:
        run_dir = RunDir(args.out)
        run_dir.init(manifest)

    config = RunnerConfig(
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        timeout=args.timeout,
        retry=RetryPolicy(
            max_attempts=args.retries,
            backoff_base=args.backoff,
            seed=args.seed or 0,
        ),
        keep_going=args.keep_going,
        fault_plan=fault_plan,
        telemetry=args.telemetry,
        telemetry_stride=args.telemetry_stride,
        shard_jobs=args.shard_jobs,
        shard_block_size=args.shard_block_size,
        shard_block_timeout=args.shard_timeout,
    )
    runner = Runner(ids, EXPERIMENT_MODULES, config, run_dir=run_dir, resume=resume)
    outcomes = runner.run(on_outcome=_OrderedPrinter(ids))

    failures = [o for o in outcomes if not o.ok]
    if failures:
        print(failure_table(outcomes).render(), flush=True)
    return exit_code(outcomes)


if __name__ == "__main__":
    sys.exit(main())

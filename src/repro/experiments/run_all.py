"""Regenerate every experiment table: ``python -m repro.experiments.run_all``.

Options::

    --preset small|full   (default: full)
    --out DIR             write per-experiment .txt and .csv under DIR
    --only T1,T5,F1       run a subset by experiment id
    --jobs N              run experiments in N parallel processes
                          (results identical: seeds are pre-derived)
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

EXPERIMENT_MODULES: dict[str, str] = {
    "T1": "repro.experiments.e01_lesk_scaling",
    "T2": "repro.experiments.e02_lesk_eps",
    "T3": "repro.experiments.e03_lower_bound",
    "T4": "repro.experiments.e04_estimation",
    "T5": "repro.experiments.e05_lesu",
    "T6": "repro.experiments.e06_notification",
    "T7": "repro.experiments.e07_vs_ars",
    "T8": "repro.experiments.e08_adversary_ablation",
    "T9": "repro.experiments.e09_energy",
    "T10": "repro.experiments.e10_lemma_checks",
    "F1": "repro.experiments.e11_trajectory",
    "F2": "repro.experiments.e12_success_curve",
    "A1": "repro.experiments.e13_ablation_collision_weight",
    "A2": "repro.experiments.e14_ablation_lesu_c",
    "A3": "repro.experiments.e15_nocd_frontier",
    "A4": "repro.experiments.e16_ars_throughput",
    "A5": "repro.experiments.e17_applications",
    "A6": "repro.experiments.e18_energy_frontier",
    "A7": "repro.experiments.e19_price_of_universality",
    "A8": "repro.experiments.e20_worst_case_search",
    "A9": "repro.experiments.e21_interval_ablation",
}


def run_experiment(exp_id: str, preset: str):
    """Run one experiment by id and return its Table."""
    module = importlib.import_module(EXPERIMENT_MODULES[exp_id])
    return module.run(preset=preset)


def _run_one(item: tuple[str, str]):
    """Pool work item (module-level for picklability)."""
    exp_id, preset = item
    start = time.perf_counter()
    table = run_experiment(exp_id, preset)
    return exp_id, table, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for options."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=("small", "full"), default="full")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    ids = list(EXPERIMENT_MODULES)
    if args.only:
        ids = [i.strip() for i in args.only.split(",") if i.strip()]
        unknown = [i for i in ids if i not in EXPERIMENT_MODULES]
        if unknown:
            parser.error(f"unknown experiment ids: {unknown}")

    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    items = [(exp_id, args.preset) for exp_id in ids]
    if args.jobs == 1 or len(items) == 1:
        outputs = map(_run_one, items)
    else:
        import multiprocessing as mp

        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        pool = ctx.Pool(processes=min(args.jobs, len(items)))
        outputs = pool.imap(_run_one, items)
    for exp_id, table, elapsed in outputs:
        text = table.render()
        print(text)
        print(f"[{exp_id} done in {elapsed:.1f}s]\n", flush=True)
        if args.out:
            (args.out / f"{exp_id}.txt").write_text(text + "\n")
            (args.out / f"{exp_id}.csv").write_text(table.to_csv() + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""F2 -- Theorem 2.6 "with high probability": the success curve.

Fix ``n`` and the saturating jammer, truncate LESK at a slot budget ``t``,
and measure the election probability as ``t`` grows.  Theorem 2.6 says
the failure probability drops below ``1/n^beta`` once
``t = O(max{T, log n/(eps^3 log 1/eps)})``; the curve should rise steeply
and cross ``1 - 1/n`` within a small multiple of the bound shape.  The
failure probability beyond the knee decays geometrically (every additional
bound-width contributes an independent chance of a regular-slot Single).
"""

from __future__ import annotations

from repro.analysis.bounds import lesk_time_bound
from repro.experiments.cells import lesk_cell
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    megakernel_enabled,
    preset_value,
)

EXPERIMENT = "F2"


def run(
    preset: str = "small",
    seed: int = 2026,
    batched: bool | None = None,
    megakernel: bool | None = None,
) -> Table:
    """Run experiment F2 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; truncated
    budgets map directly to the batched engine's ``max_slots``.  The
    saturating jammer is oblivious, so with ``megakernel`` on (default:
    the preset switch) every cell runs the slot-blocked fused fast path.
    """
    if batched is None:
        batched = batched_enabled(preset)
    if megakernel is None:
        megakernel = megakernel_enabled(preset)
    n = 1024
    eps = 0.5
    T = 32
    reps = preset_value(preset, 60, 1000)
    multipliers = preset_value(
        preset, [2.0, 4.0, 6.0, 8.0], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 14.0, 20.0]
    )
    adversary = "saturating"
    bound = lesk_time_bound(n, eps, T)

    table = Table(
        name=EXPERIMENT,
        title=f"LESK success probability vs slot budget (n={n}, eps={eps}, T={T})",
        claim="Thm 2.6: failure prob <= 1/n^beta once t = O(bound shape)",
        columns=[
            Column("budget_x", "t / bound", ".2f"),
            Column("budget", "slot budget", ".0f"),
            Column("success_rate", "success", ".4f"),
            Column("ci", "95% Wilson CI"),
            Column("target", "1 - 1/n", ".4f"),
        ],
    )
    from repro.analysis.estimators import wilson_interval

    for mi, mult in enumerate(multipliers):
        budget = max(4, int(mult * bound))
        results = lesk_cell(
            n, eps, T, adversary, reps, seed, 12, mi,
            batched=batched, megakernel=megakernel, max_slots=budget,
        )
        successes = sum(1 for r in results if r.elected)
        lo, hi = wilson_interval(successes, len(results))
        table.add_row(
            budget_x=mult,
            budget=budget,
            success_rate=successes / len(results),
            ci=f"[{lo:.3f}, {hi:.3f}]",
            target=1.0 - 1.0 / n,
        )
    table.add_note(f"bound shape = {bound:.0f} slots")
    table.add_note(
        "the knee sits at ~4-6x the constant-free shape: LESK's estimator must "
        "first climb from u=0 to ~log2 n at +1/a per collision (the 'a log n' "
        "term of the exact Thm 2.6 bound, see lesk_exact_slot_bound)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

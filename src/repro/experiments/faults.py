"""Deterministic fault injection for chaos-testing the experiment runner.

A :class:`FaultPlan` names, ahead of time, exactly which fault fires on
which attempt of which experiment -- no probabilistic triggering -- so a
chaos test replays bit-for-bit.  The plan is plain picklable data and
crosses the worker-process boundary with the work item; the runner
consults it at two points:

* **before** running an attempt (:meth:`FaultPlan.fire`): ``raise`` /
  ``config`` / ``hang`` faults trigger here, exercising the retry,
  no-retry, and timeout paths respectively;
* **after** checkpointing a finished table
  (:meth:`FaultPlan.should_corrupt`): ``corrupt`` faults flip bytes in
  the just-written checkpoint so a later ``--resume`` must detect the
  bad checksum and recompute.

Fault kinds:

``raise``
    Raise :class:`InjectedFaultError` (a transient crash; the runner
    retries it with backoff).
``config``
    Raise :class:`~repro.errors.ConfigurationError` (a permanent,
    never-retried failure).
``hang``
    Sleep until the supervisor's wall-clock timeout kills the worker.
``corrupt``
    Let the attempt succeed, then corrupt its on-disk checkpoint.

The compact spec syntax used by ``run_all --inject-faults`` is
``ID:KIND@ATTEMPT`` joined by commas, e.g. ``"T1:raise@1,T7:hang@2"``
(``@ATTEMPT`` defaults to 1).

**Shard-level faults** target the block supervisor
(:mod:`repro.experiments.shard_supervisor`) instead of an experiment:
the pseudo-id ``block<N>`` names the N-th work unit of a sharded sweep
(its deterministic global task ordinal, counting ``(spec, block)`` pairs
in dispatch order), and ``@EXECUTION`` counts that block's dispatches --
so ``block2:kill@1`` SIGKILLs the worker the first time block 2 runs,
and the retry (execution 2) is undisturbed.  Block fault kinds:

``kill``
    ``SIGKILL`` the worker process mid-block: exercises death detection
    and orphan re-dispatch.  Needs real worker processes (``jobs > 1``).
``hang``
    Sleep forever: exercises the per-block deadline kill.  Also needs
    ``jobs > 1``.
``corrupt-result``
    Let the block succeed but deterministically perturb its results:
    exercises speculative-duplicate mismatch detection.

**Service-level faults** target the job-service worker fleet
(:mod:`repro.service.supervisor`) instead of an experiment or block.
Three pseudo-ids name the substrate being attacked, and ``@SEQ`` counts
*dispatches across the whole fleet* (the supervisor's global job
sequence, starting at 1) -- so a requeued run's retry lands on the next
sequence number and is undisturbed unless separately targeted:

``worker:kill@SEQ`` / ``worker:hang@SEQ``
    SIGKILL the worker process executing dispatch SEQ (exercises death
    detection + requeue) or hang it forever (exercises the per-run
    wall-clock deadline; heartbeats keep flowing, so this specifically
    proves the deadline path, not staleness detection).
``store:tamper@SEQ``
    Let dispatch SEQ complete, then silently perturb its stored result
    table without updating the checksum -- exercises verify-on-read
    quarantine.
``disk:full@SEQ``
    Make every atomic write during dispatch SEQ fail with ``ENOSPC``
    (via :func:`repro.experiments.checkpoint.failing_writes`).
"""

from __future__ import annotations

import dataclasses
import os
import re
import signal
import time
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "FAULT_KINDS",
    "BLOCK_FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
]

FAULT_KINDS = ("raise", "config", "hang", "corrupt")

#: Fault kinds valid for ``block<N>`` pseudo-ids (shard-level chaos).
BLOCK_FAULT_KINDS = ("kill", "hang", "corrupt-result")

#: Service-level pseudo-ids and the fault kinds each accepts
#: (see repro.service.chaos; ``@SEQ`` counts fleet-wide dispatches).
SERVICE_FAULT_KINDS = {
    "worker": ("kill", "hang"),
    "store": ("tamper",),
    "disk": ("full",),
}

#: Pseudo-id naming a sharded work unit by its global task ordinal.
_BLOCK_ID_RE = re.compile(r"^block(\d+)$")

#: How long a ``hang`` fault sleeps per poll; the loop below never exits,
#: short naps just keep the worker promptly killable.
_HANG_NAP_S = 0.05


class InjectedFaultError(RuntimeError):
    """The transient crash raised by a ``raise`` fault (retried)."""


@dataclass(frozen=True, slots=True)
class Fault:
    """One planned fault: *kind* fires on the *attempt*-th try of *exp_id*."""

    exp_id: str
    kind: str
    attempt: int = 1

    def __post_init__(self):
        if self.block_index() is not None:
            if self.kind not in BLOCK_FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown block fault kind {self.kind!r} for "
                    f"{self.exp_id!r}; expected one of {BLOCK_FAULT_KINDS}"
                )
        elif self.exp_id in SERVICE_FAULT_KINDS:
            allowed = SERVICE_FAULT_KINDS[self.exp_id]
            if self.kind not in allowed:
                raise ConfigurationError(
                    f"unknown service fault kind {self.kind!r} for "
                    f"{self.exp_id!r}; expected one of {allowed}"
                )
        elif self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise ConfigurationError(
                f"fault attempt must be >= 1, got {self.attempt}"
            )

    def block_index(self) -> int | None:
        """The task ordinal for ``block<N>`` pseudo-ids, else None."""
        match = _BLOCK_ID_RE.match(self.exp_id)
        return int(match.group(1)) if match else None

    def service_target(self) -> str | None:
        """The substrate name for service pseudo-ids, else None."""
        return self.exp_id if self.exp_id in SERVICE_FAULT_KINDS else None

    def to_spec(self) -> str:
        """Render as one ``ID:KIND@ATTEMPT`` spec atom."""
        return f"{self.exp_id}:{self.kind}@{self.attempt}"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, seeded schedule of faults keyed by (experiment, attempt).

    *seed* feeds the byte pattern of ``corrupt`` faults (see
    :func:`repro.experiments.checkpoint.corrupt_checkpoint`), keeping even
    the corruption deterministic.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"T1:raise@1,T7:hang"`` (``@attempt`` defaults to 1)."""
        faults = []
        for atom in spec.split(","):
            atom = atom.strip()
            if not atom:
                continue
            try:
                exp_id, rest = atom.split(":", 1)
                kind, _, attempt = rest.partition("@")
                faults.append(
                    Fault(exp_id.strip(), kind.strip(), int(attempt) if attempt else 1)
                )
            except ConfigurationError:
                raise  # Fault.__post_init__ already said what is wrong
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault spec {atom!r}; expected ID:KIND[@ATTEMPT] with "
                    f"KIND in {FAULT_KINDS}"
                ) from exc
        return cls(faults=tuple(faults), seed=seed)

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec`."""
        return ",".join(f.to_spec() for f in self.faults)

    def validate_ids(self, known_ids: "Iterable[str]") -> "FaultPlan":
        """Reject faults naming experiments that do not exist.

        ``from_spec`` can only check syntax; a typo like ``T99:raise`` used
        to parse fine and then silently never fire, making the chaos run
        vacuous.  The runner calls this with its experiment registry so the
        mistake fails fast at the CLI.  Returns ``self`` for chaining.
        """
        known = set(known_ids)
        unknown = sorted(
            {
                f.exp_id
                for f in self.faults
                if f.block_index() is None and f.service_target() is None
            }
            - known
        )
        if unknown:
            raise ConfigurationError(
                f"fault plan names unknown experiment ids {unknown}; "
                f"known ids: {sorted(known)}"
            )
        return self

    def fault_for(self, exp_id: str, attempt: int) -> Fault | None:
        """The fault planned for this (experiment, attempt), if any."""
        for fault in self.faults:
            if fault.exp_id == exp_id and fault.attempt == attempt:
                return fault
        return None

    def fire(self, exp_id: str, attempt: int) -> None:
        """Trigger any pre-run fault for this attempt (called in the worker)."""
        fault = self.fault_for(exp_id, attempt)
        if fault is None or fault.kind == "corrupt":
            return
        if fault.kind == "raise":
            raise InjectedFaultError(
                f"injected transient crash ({exp_id} attempt {attempt})"
            )
        if fault.kind == "config":
            raise ConfigurationError(
                f"injected permanent config failure ({exp_id} attempt {attempt})"
            )
        if fault.kind == "hang":
            while True:  # hold the worker until the supervisor kills it
                time.sleep(_HANG_NAP_S)

    def should_corrupt(self, exp_id: str, attempt: int) -> bool:
        """Whether to corrupt the checkpoint written by this attempt."""
        fault = self.fault_for(exp_id, attempt)
        return fault is not None and fault.kind == "corrupt"

    # -- shard-level (block) faults -----------------------------------------

    def block_fault_for(self, task_id: int, execution: int) -> Fault | None:
        """The fault planned for this (task ordinal, execution), if any."""
        for fault in self.faults:
            if fault.block_index() == task_id and fault.attempt == execution:
                return fault
        return None

    def fire_block(self, task_id: int, execution: int,
                   in_process: bool = False) -> None:
        """Trigger any pre-run block fault (called inside the shard worker).

        With ``in_process=True`` (the supervisor's ``jobs=1`` inline path)
        ``kill``/``hang`` faults raise :class:`~repro.errors
        .ConfigurationError` instead of firing: killing or hanging would
        take down the caller itself, and a chaos drill that silently
        skips its faults is worse than one that fails loudly.
        """
        fault = self.block_fault_for(task_id, execution)
        if fault is None or fault.kind == "corrupt-result":
            return
        if in_process:
            raise ConfigurationError(
                f"injected {fault.kind}@block fault for block {task_id} "
                f"(execution {execution}) needs worker processes; run the "
                "sharded sweep with jobs > 1"
            )
        if fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault.kind == "hang":
            while True:  # hold the worker until its block deadline kills it
                time.sleep(_HANG_NAP_S)

    # -- service-level faults -----------------------------------------------

    def service_fault_for(self, target: str, seq: int) -> Fault | None:
        """The fault planned for (substrate, fleet dispatch seq), if any."""
        for fault in self.faults:
            if fault.exp_id == target and fault.attempt == seq:
                return fault
        return None

    def service_seqs(self) -> tuple[int, ...]:
        """All dispatch sequence numbers named by service faults (sorted)."""
        return tuple(
            sorted(f.attempt for f in self.faults if f.service_target())
        )

    def should_corrupt_block(self, task_id: int, execution: int) -> bool:
        """Whether to perturb the payload produced by this execution."""
        fault = self.block_fault_for(task_id, execution)
        return fault is not None and fault.kind == "corrupt-result"

    def corrupt_block_payload(self, payload):
        """Deterministically perturb a block payload (silent-corruption drill).

        Bumps ``slots`` on every run result so the corrupted payload is
        structurally valid but numerically wrong -- exactly what the
        supervisor's speculative-duplicate verification must catch.
        Payloads without run results pass through unchanged.
        """
        if isinstance(payload, tuple) and len(payload) == 2:
            results, tel = payload
        else:
            results, tel = payload, None
        try:
            corrupted = [
                dataclasses.replace(r, slots=r.slots + 1) for r in results
            ]
        except (TypeError, AttributeError):
            return payload
        return (corrupted, tel) if tel is not None or isinstance(
            payload, tuple
        ) else corrupted

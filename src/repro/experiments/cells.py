"""Shared experiment cells: replicated LESK runs with engine selection.

E01/E02/E12 (and future LESK sweeps) all fill table cells with "reps
replications of LESK(n, eps, T) against a named adversary".  This module
picks the fastest engine that can run the cell:

* the batched cross-replication engine (:mod:`repro.sim.batched`) when the
  preset-level switch (:data:`repro.experiments.harness.BATCHED_PRESETS`)
  is on *and* the adversary has a vectorized implementation;
* the scalar fast-engine loop via :func:`repro.experiments.harness.replicate`
  otherwise (adaptive adversaries condition on each replication's trace and
  cannot be batched).

Both paths derive their seeds from ``(root_seed, *path)`` with
:func:`repro.rng.derive_seed` and return plain ``RunResult`` lists, so the
downstream ``summarize_times`` summaries are engine-agnostic.
"""

from __future__ import annotations

from repro.adversary.vector import is_batchable, make_batched_adversary
from repro.core.config import default_slot_budget
from repro.core.election import elect_leader
from repro.experiments.harness import replicate, replicate_batched
from repro.protocols.vector import VectorLESKPolicy

__all__ = ["lesk_cell"]


def lesk_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    max_slots: int | None = None,
) -> list:
    """Replicated LESK elections for one table cell.

    With ``batched=True`` and a vectorizable adversary, all *reps*
    replications advance together through the batched engine; otherwise
    each replication is a scalar :func:`repro.core.election.elect_leader`
    call.  ``max_slots=None`` selects the same
    :func:`~repro.core.config.default_slot_budget` either way.
    """
    if batched and is_batchable(adversary):
        budget = (
            max_slots
            if max_slots is not None
            else default_slot_budget(n, eps, T, "lesk")
        )
        return replicate_batched(
            lambda reps_: VectorLESKPolicy(eps, reps_),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
        )
    return replicate(
        lambda s: elect_leader(
            n=n,
            protocol="lesk",
            eps=eps,
            T=T,
            adversary=adversary,
            seed=s,
            max_slots=max_slots,
        ),
        reps,
        root_seed,
        *path,
    )

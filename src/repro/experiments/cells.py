"""Shared experiment cells: replicated runs with engine selection.

The experiment tables all fill cells with "reps replications of
protocol(n, eps, T) against a named adversary".  This module picks the
fastest engine that can run each cell:

* the slot-blocked megakernel (:mod:`repro.sim.megakernel`) when the cell
  asks for it (``megakernel=True``, driven by the preset-level switch
  :data:`repro.experiments.harness.MEGAKERNEL_PRESETS`): oblivious
  (schedulable) adversaries run the fused fast path, everything else
  delegates to the batched engine byte-identically inside the engine;
* the batched cross-replication engine (:mod:`repro.sim.batched`) when the
  preset-level switch (:data:`repro.experiments.harness.BATCHED_PRESETS`)
  is on *and* the adversary has a vectorized implementation -- which since
  the adaptive family gained :class:`~repro.adversary.vector`
  counterparts covers the whole strategy suite;
* the scalar fast-engine loop via :func:`repro.experiments.harness.replicate`
  otherwise.  The fallback is never silent: it increments
  ``engine_fallback_total{reason=...}`` and warns once per component
  (:func:`repro.experiments.harness.record_engine_fallback`).

Cell kinds: :func:`lesk_cell` (Algorithm 1), :func:`lesu_cell`
(Algorithm 2, unknown eps/T), :func:`estimation_cell` (Function 2),
:func:`sweep_cell` (Nakano--Olariu CD baseline) and :func:`nocd_cell`
(no-CD repeated sweep).  All derive their seeds from ``(root_seed, *path)``
with :func:`repro.rng.derive_seed` and return plain ``RunResult`` lists,
so the downstream ``summarize_times`` summaries are engine-agnostic.

For multi-cell sweeps, :class:`CellSpec` + :func:`run_cells_sharded` chunk
``(cell x rep-block)`` work units across a worker-process pool
(:class:`~repro.experiments.harness.ShardedScheduler`): each block runs
the cell with the path extended by ``(SHARD_BLOCK_TAG, block_index)``, so
block seeds are stable under any job count, and each worker ships its
telemetry shard home for merging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from functools import lru_cache

from repro import telemetry
from repro.adversary.suite import make_adversary
from repro.adversary.vector import is_batchable, make_batched_adversary
from repro.core.config import default_slot_budget
from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    SHARD_BLOCK_TAG,
    ShardedScheduler,
    record_engine_fallback,
    replicate,
    replicate_batched,
    replicate_megakernel,
)
from repro.protocols.baselines.nakano_olariu import NoCDSweepPolicy, UniformSweepPolicy
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.vector import (
    VectorEstimationPolicy,
    VectorLESKPolicy,
    VectorLESUPolicy,
    VectorNoCDSweepPolicy,
    VectorSweepPolicy,
)
from repro.sim.fast import simulate_uniform_fast

__all__ = [
    "lesk_cell",
    "lesu_cell",
    "estimation_cell",
    "sweep_cell",
    "nocd_cell",
    "cell_slot_budget",
    "CellSpec",
    "CELL_KINDS",
    "run_shard",
    "run_cell_direct",
    "run_cells",
    "run_cells_sharded",
    "run_cells_sharded_report",
]


@lru_cache(maxsize=4096)
def cell_slot_budget(n: int, eps: float, T: int, protocol: str) -> int:
    """Memoised :func:`~repro.core.config.default_slot_budget`.

    Every cell of a sweep (and every rep-block of a sharded cell) with the
    same ``(n, eps, T)`` shares one computed budget instead of re-deriving
    it; the value is pure in its arguments, so caching is invisible to the
    fixed-seed pins that guard it (``tests/experiments/test_sharded.py``).
    """
    return default_slot_budget(n, eps, T, protocol)


def estimation_slot_budget(n: int, T: int) -> int:
    """The generous Estimation(2) slot cap used by experiment T4."""
    return int(1024 * max(T, math.log2(max(n, 2))) + 4096)


def _use_batched(batched: bool, adversary: str) -> bool:
    """Engine selection plus loud accounting for the scalar fallback."""
    if not batched:
        return False
    if is_batchable(adversary):
        return True
    record_engine_fallback(
        f"adversary {adversary!r}", reason="adversary-not-batchable"
    )
    return False


def lesk_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    megakernel: bool = False,
    max_slots: int | None = None,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Replicated LESK elections for one table cell.

    With ``batched=True`` and a vectorizable adversary, all *reps*
    replications advance together through the batched engine; otherwise
    each replication is a scalar :func:`repro.core.election.elect_leader`
    call.  ``max_slots=None`` selects the same
    :func:`~repro.core.config.default_slot_budget` either way.

    ``megakernel=True`` routes the batched path through the slot-blocked
    megakernel instead (:func:`~repro.experiments.harness
    .replicate_megakernel`): oblivious adversaries run the fused fast
    path, everything else delegates back to the batched engine inside the
    engine, so the flag is always safe to set.

    *faults* (a :class:`~repro.resilience.faults.FaultModel`) applies on
    both engine paths; *compact_interval* (dead-rep compaction) is a
    batched-engine perf knob, ignored by the scalar loop.
    """
    if _use_batched(batched, adversary):
        budget = (
            max_slots if max_slots is not None else cell_slot_budget(n, eps, T, "lesk")
        )
        engine = replicate_megakernel if megakernel else replicate_batched
        return engine(
            lambda reps_: VectorLESKPolicy(eps, reps_),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
            faults=faults,
            compact_interval=compact_interval,
        )
    return replicate(
        lambda s: elect_leader(
            n=n,
            protocol="lesk",
            eps=eps,
            T=T,
            adversary=adversary,
            seed=s,
            max_slots=max_slots,
            faults=faults,
        ),
        reps,
        root_seed,
        *path,
    )


def lesu_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    megakernel: bool = False,
    max_slots: int | None = None,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Replicated LESU (Algorithm 2, unknown eps/T) elections for one cell.

    LESU has no megakernel ladder, so ``megakernel=True`` delegates back
    to the batched engine inside the engine (loudly, via
    ``engine_fallback_total``); the flag exists so sweeps can set it
    uniformly across cell kinds.
    """
    if _use_batched(batched, adversary):
        budget = (
            max_slots if max_slots is not None else cell_slot_budget(n, eps, T, "lesu")
        )
        engine = replicate_megakernel if megakernel else replicate_batched
        return engine(
            lambda reps_: VectorLESUPolicy(reps_),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
            faults=faults,
            compact_interval=compact_interval,
        )
    return replicate(
        lambda s: elect_leader(
            n=n,
            protocol="lesu",
            eps=eps,
            T=T,
            adversary=adversary,
            seed=s,
            max_slots=max_slots,
            faults=faults,
        ),
        reps,
        root_seed,
        *path,
    )


def estimation_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    megakernel: bool = False,
    max_slots: int | None = None,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Replicated standalone ``Estimation(2)`` runs (halt on Single).

    Results carry ``policy_result`` (the returned round index) on both
    engine paths; ``max_slots=None`` selects the T4 cap.  Estimation has
    no megakernel ladder, so ``megakernel=True`` delegates back to the
    batched engine inside the engine.
    """
    budget = max_slots if max_slots is not None else estimation_slot_budget(n, T)
    if _use_batched(batched, adversary):
        engine = replicate_megakernel if megakernel else replicate_batched
        return engine(
            lambda reps_: VectorEstimationPolicy(reps_, L=2),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
            faults=faults,
            compact_interval=compact_interval,
        )
    return replicate(
        lambda s: simulate_uniform_fast(
            EstimationPolicy(L=2),
            n=n,
            adversary=make_adversary(adversary, T=T, eps=eps),
            max_slots=budget,
            seed=s,
            halt_on_single=True,
            faults=faults,
        ),
        reps,
        root_seed,
        *path,
    )


def sweep_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    megakernel: bool = False,
    max_slots: int | None = None,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Replicated Nakano--Olariu doubling-sweep (CD) baseline runs."""
    budget = max_slots if max_slots is not None else cell_slot_budget(n, eps, T, "lesk")
    if _use_batched(batched, adversary):
        engine = replicate_megakernel if megakernel else replicate_batched
        return engine(
            lambda reps_: VectorSweepPolicy(reps_),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
            faults=faults,
            compact_interval=compact_interval,
        )
    return replicate(
        lambda s: simulate_uniform_fast(
            UniformSweepPolicy(),
            n=n,
            adversary=make_adversary(adversary, T=T, eps=eps),
            max_slots=budget,
            seed=s,
            faults=faults,
        ),
        reps,
        root_seed,
        *path,
    )


def nocd_cell(
    n: int,
    eps: float,
    T: int,
    adversary: str,
    reps: int,
    root_seed: int,
    *path: int,
    batched: bool = True,
    megakernel: bool = False,
    max_slots: int | None = None,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Replicated no-CD repeated-sweep baseline runs."""
    budget = max_slots if max_slots is not None else cell_slot_budget(n, eps, T, "lesk")
    if _use_batched(batched, adversary):
        engine = replicate_megakernel if megakernel else replicate_batched
        return engine(
            lambda reps_: VectorNoCDSweepPolicy(reps_),
            n,
            lambda reps_: make_batched_adversary(adversary, T=T, eps=eps, reps=reps_),
            reps,
            root_seed,
            *path,
            max_slots=budget,
            faults=faults,
            compact_interval=compact_interval,
        )
    return replicate(
        lambda s: simulate_uniform_fast(
            NoCDSweepPolicy(),
            n=n,
            adversary=make_adversary(adversary, T=T, eps=eps),
            max_slots=budget,
            seed=s,
            faults=faults,
        ),
        reps,
        root_seed,
        *path,
    )


#: Cell-kind registry used by :func:`run_shard` (names are CellSpec.kind).
CELL_KINDS = {
    "lesk": lesk_cell,
    "lesu": lesu_cell,
    "estimation": estimation_cell,
    "sweep": sweep_cell,
    "nocd": nocd_cell,
}


@dataclass(frozen=True, slots=True)
class CellSpec:
    """One shardable table cell: a cell kind plus its full configuration.

    Plain frozen data so it pickles across the worker-pool boundary; the
    ``path`` is the cell's seed-derivation path exactly as passed to the
    unsharded cell functions.  ``faults`` composes a model-level
    :class:`~repro.resilience.faults.FaultModel` into the cell (applied on
    both engine paths); ``compact_interval`` enables dead-rep compaction
    on the batched engine; ``megakernel`` routes the batched path through
    the slot-blocked megakernel engine (ineligible configurations
    delegate back to the batched engine inside the engine).
    """

    kind: str
    n: int
    eps: float
    T: int
    adversary: str
    reps: int
    root_seed: int
    path: tuple[int, ...]
    batched: bool = True
    megakernel: bool = False
    max_slots: int | None = None
    faults: object | None = None  # resilience.faults.FaultModel
    compact_interval: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            known = ", ".join(sorted(CELL_KINDS))
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r}; known: {known}"
            )
        if self.reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {self.reps}")
        if self.compact_interval is not None and self.compact_interval < 1:
            raise ConfigurationError(
                f"compact_interval must be >= 1, got {self.compact_interval}"
            )

    def to_jsonable(self) -> dict:
        """Plain-data form that round-trips exactly through JSON.

        Optional fields at their defaults are omitted, so
        ``from_jsonable(spec.to_jsonable())`` reproduces the spec and
        ``to_jsonable(from_jsonable(data))`` reproduces the dict.
        """
        data = {
            "kind": self.kind,
            "n": self.n,
            "eps": self.eps,
            "T": self.T,
            "adversary": self.adversary,
            "reps": self.reps,
            "root_seed": self.root_seed,
            "path": list(self.path),
        }
        if not self.batched:
            data["batched"] = self.batched
        if self.megakernel:
            data["megakernel"] = self.megakernel
        if self.max_slots is not None:
            data["max_slots"] = self.max_slots
        if self.faults is not None:
            data["faults"] = self.faults.to_jsonable()
        if self.compact_interval is not None:
            data["compact_interval"] = self.compact_interval
        return data

    @classmethod
    def from_jsonable(cls, data: dict) -> "CellSpec":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        from repro.resilience.faults import FaultModel

        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown CellSpec fields: {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["path"] = tuple(kwargs.get("path", ()))
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultModel.from_jsonable(kwargs["faults"])
        return cls(**kwargs)


def run_shard(item: tuple) -> tuple[list, dict]:
    """Pool work item: one ``(spec, block_index, block_reps)`` rep-block.

    Runs the cell with the seed path extended by ``(SHARD_BLOCK_TAG,
    block_index)`` -- stable under any job count -- inside a scoped
    telemetry collection, and returns ``(results, telemetry_jsonable)``
    so the scheduler can merge worker shards into the parent sink.
    Module-level so pool dispatch can pickle it by reference.
    """
    spec, block_index, block_reps = item
    cell = CELL_KINDS[spec.kind]
    with telemetry.collecting() as shard:
        results = cell(
            spec.n,
            spec.eps,
            spec.T,
            spec.adversary,
            block_reps,
            spec.root_seed,
            *spec.path,
            SHARD_BLOCK_TAG,
            block_index,
            batched=spec.batched,
            megakernel=spec.megakernel,
            max_slots=spec.max_slots,
            faults=spec.faults,
            compact_interval=spec.compact_interval,
        )
    return results, shard.to_jsonable()


def run_cell_direct(spec: CellSpec) -> list:
    """Run one cell unsharded, exactly as the direct cell call would.

    Bit-identical to calling the cell function with the spec's parameters
    (one batch seed from ``(root_seed, *path)``; no ``SHARD_BLOCK_TAG``
    in the derivation), so experiments that route through
    :func:`run_cells` preserve their fixed-seed pins when sharding is not
    requested.
    """
    cell = CELL_KINDS[spec.kind]
    return cell(
        spec.n,
        spec.eps,
        spec.T,
        spec.adversary,
        spec.reps,
        spec.root_seed,
        *spec.path,
        batched=spec.batched,
        megakernel=spec.megakernel,
        max_slots=spec.max_slots,
        faults=spec.faults,
        compact_interval=spec.compact_interval,
    )


def run_cells(
    specs,
    jobs: int | None = None,
    block_size: int | None = None,
    threadsafe: bool = False,
) -> list[list]:
    """Run several cells, sharding when sharding is configured.

    The single entry point for the sharded experiments (E04/E05/E07/E08/
    E15/E20): with an explicit *jobs* -- or an ambient
    :class:`~repro.experiments.shard_supervisor.ShardContext` installed by
    ``run_all --shard-jobs`` -- the cells run on the supervised sharded
    path (block seeds include ``SHARD_BLOCK_TAG``); otherwise each spec
    runs unsharded via :func:`run_cell_direct`, bit-identical to the
    direct cell calls the experiments used to make.
    """
    from repro.experiments.shard_supervisor import get_shard_context

    context = get_shard_context()
    if jobs is None:
        jobs = context.jobs
    if jobs is None:
        return [run_cell_direct(spec) for spec in specs]
    if block_size is None:
        block_size = context.block_size or 64
    return run_cells_sharded(
        specs,
        jobs=jobs,
        block_size=block_size,
        threadsafe=threadsafe or context.threadsafe,
        block_timeout=context.block_timeout,
        checkpoint_dir=context.checkpoint_dir,
        fault_plan=context.fault_plan,
    )


def run_cells_sharded(
    specs,
    jobs: int | None = None,
    block_size: int = 64,
    threadsafe: bool = False,
    **supervision,
) -> list[list]:
    """Run several :class:`CellSpec` cells sharded across worker processes.

    Returns one ``RunResult`` list per spec, in spec order; results are
    identical for any ``jobs`` (the rep-block partition and per-block
    seeds depend only on the specs and ``block_size``).  Note the sharded
    law matches the unsharded cell's (same engines, same per-column
    update rules) but the bitstreams differ: block ``b`` seeds from
    ``(root_seed, *path, SHARD_BLOCK_TAG, b)`` rather than one batch seed
    from ``(root_seed, *path)``.

    Extra keyword arguments (``retry``, ``block_timeout``, ``keep_going``,
    ``checkpoint_dir``, ``fault_plan``, ``speculate``, ``supervised``)
    pass through to :class:`~repro.experiments.harness.ShardedScheduler`.
    """
    with ShardedScheduler(
        jobs=jobs, block_size=block_size, threadsafe=threadsafe, **supervision
    ) as sched:
        return sched.run(run_shard, specs)


def run_cells_sharded_report(
    specs,
    jobs: int | None = None,
    block_size: int = 64,
    threadsafe: bool = False,
    **supervision,
):
    """Supervised sharded run returning ``(results, spec_shards, report)``.

    ``spec_shards[i]`` is a per-spec :class:`~repro.telemetry.Telemetry`
    merged from spec *i*'s block shards (None when no telemetry was
    collected, e.g. blocks restored from checkpoint), so callers like the
    E08 jam-efficiency columns can read per-spec counters; ``report`` is
    the supervisor's :class:`~repro.experiments.shard_supervisor
    .ShardReport` (quarantined blocks, retries, speculation).
    """
    with ShardedScheduler(
        jobs=jobs, block_size=block_size, threadsafe=threadsafe, **supervision
    ) as sched:
        return sched.run_report(run_shard, specs)

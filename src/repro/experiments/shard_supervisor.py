"""Block-level supervision for sharded sweeps: the execution layer that
keeps a ``(cell x rep-block)`` sweep alive despite crashing, hanging, or
poisoned workers.

The paper's protocols make progress although an adversary may disrupt a
``(T, 1-eps)`` fraction of slots; this module ports that mindset to the
sweep scheduler itself.  ``ShardedScheduler`` used to be a bare
``Pool.map`` -- one SIGKILL, hang, or poison block lost the entire sweep.
The supervisor replaces that with:

* **async block dispatch** -- one work item per message on a persistent
  worker-process pool, so a failure costs one block, never the sweep;
* **per-block deadlines** -- a hung block is killed at its wall-clock
  budget and its worker respawned;
* **death detection** -- a worker that dies without reporting (SIGKILL,
  OOM) is detected via its process sentinel and the orphaned block is
  re-dispatched onto a respawned worker;
* **bounded retry** -- transient failures back off exponentially with
  seeded jitter (:class:`~repro.experiments.retry.RetryPolicy`, the PR-2
  machinery); :class:`~repro.errors.ReproError` failures are permanent by
  contract and never retried;
* **quarantine** -- a block that exhausts its attempts is quarantined;
  with ``keep_going`` the sweep completes around it and reports a
  failure table, otherwise :class:`~repro.errors.ShardFailureError`;
* **speculative re-execution** -- block seeds derive from
  ``(root_seed, *path, SHARD_BLOCK_TAG, b)``, so every block is a pure
  deterministic function: duplicating a straggler is safe, the first
  result wins, and when both land they are verified identical;
* **block checkpoints** -- completed blocks snapshot atomically
  (SHA-256-checked, same discipline as the table checkpoints), so a
  killed sweep resumes mid-cell and bit-reproduces the remainder;
* **graceful shutdown** -- SIGINT/SIGTERM stop dispatch, drain in-flight
  blocks, checkpoint them, and then raise ``KeyboardInterrupt``; a second
  signal aborts immediately.

Every recovery event publishes a telemetry counter:
``shard_retries_total{kind=...}``, ``shard_redispatch_total``,
``shard_quarantined_total{kind=...}``, ``shard_speculative_wins_total``
(plus ``shard_speculative_mismatch_total`` and
``shard_blocks_restored_total``), so a chaotic sweep leaves a complete
audit trail in the metrics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Callable, Sequence

from repro import telemetry as _telemetry
from repro.errors import ConfigurationError, ReproError, ShardFailureError
from repro.experiments.retry import RetryPolicy
from repro.telemetry import get_telemetry

__all__ = [
    "ShardContext",
    "get_shard_context",
    "configure_shard_context",
    "shard_context",
    "active_shard_jobs",
    "SupervisionConfig",
    "BlockFailure",
    "ShardReport",
    "BlockCheckpointStore",
    "BlockSupervisor",
]

_log = logging.getLogger(__name__)

#: Schema version embedded in every block checkpoint.
BLOCK_CHECKPOINT_FORMAT = 1

#: Cap on the supervision loop's wait so drain requests (SIGINT/SIGTERM)
#: are noticed promptly even when no result or deadline is imminent.
_WAIT_CAP_S = 0.5


# -- ambient shard context --------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardContext:
    """Process-wide defaults for sharded cell execution.

    ``run_all --shard-jobs N`` configures this inside each experiment
    attempt (parent or isolated worker alike), so experiment modules keep
    their ``run(preset, seed)`` signature and still land on the supervised
    sharded path: :func:`repro.experiments.cells.run_cells` consults the
    context when the caller passes no explicit jobs.  ``jobs=None`` means
    sharding is not forced -- the inert default.
    """

    jobs: int | None = None
    block_size: int | None = None
    block_timeout: float | None = None
    checkpoint_dir: str | None = None
    fault_plan: object | None = None  # experiments.faults.FaultPlan
    #: Use a thread-safe start method for shard workers (needed when cells
    #: are dispatched from runner threads rather than the main thread).
    threadsafe: bool = False


_INERT_CONTEXT = ShardContext()
_active_context: ShardContext = _INERT_CONTEXT


def get_shard_context() -> ShardContext:
    """The ambient shard context (the inert default when unconfigured)."""
    return _active_context


def configure_shard_context(ctx: ShardContext | None) -> ShardContext:
    """Install *ctx* (None resets to inert); returns the previous context."""
    global _active_context
    previous = _active_context
    _active_context = ctx if ctx is not None else _INERT_CONTEXT
    return previous


@contextmanager
def shard_context(**kwargs):
    """Scoped :func:`configure_shard_context` for tests and library callers."""
    previous = configure_shard_context(ShardContext(**kwargs))
    try:
        yield get_shard_context()
    finally:
        configure_shard_context(previous)


def active_shard_jobs() -> int | None:
    """The ambient shard job count, or None when sharding is not forced."""
    return _active_context.jobs


# -- report -----------------------------------------------------------------


@dataclass(slots=True)
class BlockFailure:
    """One quarantined block: which block, why, after how many attempts."""

    spec_index: int
    block_index: int
    kind: str  # "error" | "crash" | "timeout"
    message: str
    attempts: int


@dataclass(slots=True)
class ShardReport:
    """What the supervisor did to finish (or give up on) a sweep."""

    blocks: int = 0
    completed: int = 0
    restored: int = 0
    retries: int = 0
    redispatches: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    speculative_mismatches: int = 0
    quarantined: list[BlockFailure] = field(default_factory=list)
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        """Every block produced a result and the sweep was not interrupted."""
        return not self.quarantined and not self.interrupted

    def quarantine_table(self):
        """The FAILURES-style summary table of quarantined blocks."""
        from repro.experiments.harness import Column, Table

        table = Table(
            name="SHARD-FAILURES",
            title="rep-blocks that did not complete",
            claim=(
                "block-level graceful degradation: keep_going quarantines "
                "poison blocks instead of aborting the sweep"
            ),
            columns=[
                Column("spec", "spec"),
                Column("block", "block"),
                Column("kind", "kind"),
                Column("attempts", "attempts"),
                Column("error", "error"),
            ],
        )
        for failure in self.quarantined:
            table.add_row(
                spec=failure.spec_index,
                block=failure.block_index,
                kind=failure.kind,
                attempts=failure.attempts,
                error=failure.message[:160],
            )
        return table

    def summary(self) -> str:
        """One human-readable line for logs and CLI footers."""
        return (
            f"blocks={self.blocks} completed={self.completed} "
            f"restored={self.restored} retries={self.retries} "
            f"redispatched={self.redispatches} "
            f"speculative={self.speculative_launches}"
            f"(wins={self.speculative_wins}) "
            f"quarantined={len(self.quarantined)}"
        )


# -- block checkpoints ------------------------------------------------------


class BlockCheckpointStore:
    """Atomic, checksummed snapshots of completed rep-blocks.

    One JSON file per block, keyed by a fingerprint of the *spec content*
    plus the block partition -- never by position -- so a resume restores
    a block only when its parameters (and therefore its derived seeds)
    match exactly, and differently-parameterized sweeps can never collide
    in one directory.  Files follow the same discipline as the table
    checkpoints: same-directory tmp + rename, embedded SHA-256 verified on
    load, damaged files treated as absent.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @staticmethod
    def block_key(spec, block_size: int, block_index: int) -> str:
        """Content-addressed key of one (spec, partition, block) unit."""
        if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
            fingerprint = dataclasses.asdict(spec)
        else:
            fingerprint = repr(spec)
        payload = json.dumps(
            {
                "format": BLOCK_CHECKPOINT_FORMAT,
                "spec": fingerprint,
                "block_size": block_size,
                "block": block_index,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def _path(self, key: str) -> Path:
        return self.root / f"block-{key}.json"

    def load(self, key: str) -> list | None:
        """Restore one block's results, or None to recompute.

        A missing file, unparseable JSON, a checksum mismatch, or an
        undecodable payload all mean "recompute" -- the store never trusts
        a damaged checkpoint.
        """
        from repro.sim.metrics import RunResult

        try:
            data = json.loads(self._path(key).read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None
        results = data.get("results")
        if results is None or data.get("checksum") != _results_checksum(results):
            return None
        try:
            return [RunResult.from_jsonable(r) for r in results]
        except (KeyError, TypeError):
            return None

    def save(self, key: str, results: Sequence) -> str:
        """Atomically snapshot one block's results; returns the checksum.

        Raises :class:`~repro.errors.ConfigurationError` when the results
        are not JSON-serializable run results (the supervisor then runs
        uncheckpointed for the rest of the sweep).
        """
        from repro.experiments.checkpoint import atomic_write_text

        jsonable = [r.to_jsonable() for r in results]
        digest = _results_checksum(jsonable)
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._path(key),
            json.dumps(
                {
                    "format": BLOCK_CHECKPOINT_FORMAT,
                    "checksum": digest,
                    "results": jsonable,
                },
                sort_keys=True,
                separators=(",", ":"),
            ),
        )
        return digest


def _results_checksum(results_jsonable) -> str:
    payload = json.dumps(results_jsonable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- supervision configuration ---------------------------------------------


@dataclass(frozen=True, slots=True)
class SupervisionConfig:
    """Knobs of one supervised sweep (see the module docstring)."""

    jobs: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    block_timeout: float | None = None
    keep_going: bool = False
    speculate: bool = True
    straggler_factor: float = 4.0
    straggler_min_done: int = 3
    fault_plan: object | None = None  # experiments.faults.FaultPlan
    threadsafe: bool = False

    def __post_init__(self):
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.block_timeout is not None and self.block_timeout <= 0:
            raise ConfigurationError(
                f"block_timeout must be > 0, got {self.block_timeout}"
            )
        if self.straggler_factor <= 1.0:
            raise ConfigurationError(
                f"straggler_factor must be > 1, got {self.straggler_factor}"
            )


# -- worker process body ----------------------------------------------------


def _block_worker_main(conn, worker_fn, fault_plan) -> None:
    """Child-process loop: receive ``(task_id, execution, item)``, run, reply.

    Module-level (picklable by reference) so it works under fork,
    forkserver and spawn alike.  Exceptions are serialized rather than
    raised so the parent decides retryability; only a hard kill (or an
    injected ``kill@block`` fault) leaves the pipe silent, which the
    parent detects via the process sentinel.
    """
    # A worker respawned while the supervisor's drain handlers are active
    # inherits them under fork; reset so terminate() actually terminates
    # (SIGTERM) and a terminal Ctrl+C (delivered to the whole foreground
    # group) lets the parent drain while this worker finishes (SIGINT).
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            task_id, execution, item = msg
            try:
                if fault_plan is not None:
                    fault_plan.fire_block(task_id, execution)
                payload = worker_fn(item)
                if fault_plan is not None and fault_plan.should_corrupt_block(
                    task_id, execution
                ):
                    payload = fault_plan.corrupt_block_payload(payload)
                conn.send(("ok", task_id, execution, payload))
            except BaseException as exc:  # noqa: BLE001 -- ship everything home
                try:
                    conn.send(
                        (
                            "error",
                            task_id,
                            execution,
                            {
                                "type": type(exc).__name__,
                                "message": str(exc),
                                "permanent": isinstance(exc, ReproError),
                            },
                        )
                    )
                except (OSError, ValueError):
                    break
    finally:
        conn.close()


class _Worker:
    """One supervised worker process and its duplex command pipe."""

    __slots__ = ("proc", "conn", "task_id", "execution", "started", "deadline")

    def __init__(self, ctx, worker_fn, fault_plan, number: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_block_worker_main,
            args=(child_conn, worker_fn, fault_plan),
            name=f"repro-shard-worker-{number}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()  # parent holds only its own end
        self.conn = parent_conn
        self.task_id: int | None = None
        self.execution = 0
        self.started = 0.0
        self.deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.task_id is not None

    def dispatch(self, task_id: int, execution: int, item, timeout) -> None:
        self.task_id = task_id
        self.execution = execution
        self.started = time.monotonic()
        self.deadline = None if timeout is None else self.started + timeout
        self.conn.send((task_id, execution, item))

    def release(self) -> None:
        self.task_id = None
        self.deadline = None

    def stop(self) -> None:
        """Ask the worker to exit cleanly (idle workers only)."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.proc.join(2)
        if self.proc.is_alive():
            self.kill()
        self.conn.close()

    def kill(self) -> None:
        """Terminate-then-kill; never waits on a wedged worker forever."""
        self.proc.terminate()
        self.proc.join(2)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(2)
        try:
            self.conn.close()
        except OSError:
            pass


# -- task state -------------------------------------------------------------

_PENDING, _RUNNING, _DONE, _QUARANTINED = "pending", "running", "done", "quarantined"


@dataclass(slots=True)
class _Task:
    """Supervision state of one ``(spec, block)`` work item."""

    task_id: int
    spec_index: int
    block_index: int
    item: object
    key: str | None  # checkpoint key (None when checkpointing is off)
    status: str = _PENDING
    attempts: int = 0  # executions dispatched (incl. speculative)
    failures: int = 0
    running: int = 0  # live executions right now
    not_before: float = 0.0
    payload: object = None
    speculated: bool = False
    last_failure: tuple[str, str] | None = None  # (kind, message)


class BlockSupervisor:
    """Drive a list of block tasks to completion under supervision.

    One-shot: construct, :meth:`run`, discard.  The pooled path spawns its
    own worker processes (it does not reuse a ``multiprocessing.Pool`` --
    per-task kill/respawn needs process identity, which ``Pool`` hides);
    ``jobs=1`` runs blocks inline with the same retry/quarantine/
    checkpoint semantics (timeouts, kills and speculation need real
    workers and are unavailable inline).
    """

    def __init__(
        self,
        worker_fn: Callable,
        config: SupervisionConfig,
        checkpoint: BlockCheckpointStore | None = None,
    ):
        self.worker_fn = worker_fn
        self.config = config
        self.checkpoint = checkpoint
        self.report = ShardReport()
        self._drain = False
        self._abort = False
        self._checkpointing = checkpoint is not None
        self._workers: list[_Worker] = []
        self._worker_seq = 0
        self._ctx = None
        self._queue: deque | None = None
        self._done_elapsed: list[float] = []

    # -- shared helpers ----------------------------------------------------

    def _tel(self):
        return get_telemetry()

    def _restore(self, task: _Task) -> bool:
        """Restore a completed block from its checkpoint, if valid."""
        if self.checkpoint is None or task.key is None:
            return False
        results = self.checkpoint.load(task.key)
        if results is None:
            return False
        task.status = _DONE
        task.payload = (results, None)  # checkpointed telemetry is not replayed
        self.report.restored += 1
        self._tel().counter("shard_blocks_restored_total").inc()
        return True

    def _save(self, task: _Task, results) -> None:
        """Checkpoint one completed block (disabling on unserializable data)."""
        if not self._checkpointing or self.checkpoint is None or task.key is None:
            return
        try:
            self.checkpoint.save(task.key, results)
        except ConfigurationError as exc:
            self._checkpointing = False
            _log.warning(
                "disabling block checkpoints for this sweep: %s", exc
            )

    def _complete(self, task: _Task, payload, speculative_win: bool) -> None:
        task.status = _DONE
        task.payload = payload
        self.report.completed += 1
        if speculative_win:
            self.report.speculative_wins += 1
            self._tel().counter("shard_speculative_wins_total").inc()
        results, tel_json = _split_payload(payload)
        if results is not None:
            self._save(task, results)
        if tel_json:
            live = self._tel()
            if live.enabled:
                live.merge(_telemetry.Telemetry.from_jsonable(tel_json))

    def _verify_duplicate(self, task: _Task, payload) -> None:
        """Check a second (speculative) result against the accepted one."""
        a, _ = _split_payload(task.payload)
        b, _ = _split_payload(payload)
        try:
            identical = a == b
        except Exception:  # exotic result types: treat as mismatch
            identical = False
        if not identical:
            self.report.speculative_mismatches += 1
            self._tel().counter("shard_speculative_mismatch_total").inc()
            _log.warning(
                "speculative duplicate of block (spec %d, block %d) produced "
                "a different result; kept the first-arriving one (block "
                "execution is expected to be deterministic -- investigate)",
                task.spec_index,
                task.block_index,
            )

    def _failed(self, task: _Task, kind: str, message: str, permanent: bool,
                now: float, redispatch: bool = False) -> None:
        """Account one failed execution; schedule a retry or quarantine."""
        if task.status == _DONE:
            return  # a speculative copy failed after the block completed
        task.failures += 1
        task.last_failure = (kind, message)
        if redispatch:
            self.report.redispatches += 1
            self._tel().counter("shard_redispatch_total").inc()
        if task.running > 0:
            return  # another execution of this block is still in flight
        no_retry = (
            permanent
            or (kind == "timeout" and not self.config.retry.retry_timeouts)
            or task.attempts >= self.config.retry.max_attempts
        )
        if no_retry:
            task.status = _QUARANTINED
            self.report.quarantined.append(
                BlockFailure(
                    spec_index=task.spec_index,
                    block_index=task.block_index,
                    kind=kind,
                    message=message,
                    attempts=task.attempts,
                )
            )
            self._tel().counter("shard_quarantined_total", kind=kind).inc()
            return
        task.status = _PENDING
        delay = 0.0 if redispatch else self.config.retry.delay(
            f"{task.spec_index}/{task.block_index}", task.failures
        )
        task.not_before = now + delay
        self.report.retries += 1
        self._tel().counter("shard_retries_total", kind=kind).inc()
        if self._queue is not None and task not in self._queue:
            self._queue.append(task)

    # -- public entry ------------------------------------------------------

    def run(self, items: Sequence[tuple[int, int, object]], block_size: int):
        """Supervise every ``(spec_index, block_index, item)`` work unit.

        Returns ``(payloads, report)`` where ``payloads[i]`` is the i-th
        item's worker payload (``None`` for quarantined blocks).  Raises
        :class:`~repro.errors.ShardFailureError` when blocks were
        quarantined and ``keep_going`` is off, and ``KeyboardInterrupt``
        after a signal-requested drain.
        """
        tasks = []
        for task_id, (spec_index, block_index, item) in enumerate(items):
            key = None
            if self.checkpoint is not None:
                spec = item[0] if isinstance(item, tuple) and item else item
                key = self.checkpoint.block_key(spec, block_size, block_index)
            tasks.append(
                _Task(
                    task_id=task_id,
                    spec_index=spec_index,
                    block_index=block_index,
                    item=item,
                    key=key,
                )
            )
        self.report.blocks = len(tasks)
        for task in tasks:
            self._restore(task)

        pending = [t for t in tasks if t.status == _PENDING]
        if pending:
            if self.config.jobs == 1:
                self._run_inline(pending)
            else:
                self._run_pooled(tasks, pending)

        if self.report.interrupted:
            done = self.report.completed + self.report.restored
            raise KeyboardInterrupt(
                f"sharded sweep interrupted: {done}/{self.report.blocks} "
                "blocks finished"
                + (
                    " and checkpointed"
                    if self._checkpointing and self.checkpoint is not None
                    else ""
                )
            )
        if self.report.quarantined and not self.config.keep_going:
            worst = self.report.quarantined[0]
            raise ShardFailureError(
                f"{len(self.report.quarantined)} rep-block(s) quarantined "
                f"after bounded retries (first: spec {worst.spec_index} "
                f"block {worst.block_index}, {worst.kind}: {worst.message}); "
                "pass keep_going=True to collect partial results",
                report=self.report,
            )
        return [t.payload for t in tasks], self.report

    # -- inline (jobs=1) path ----------------------------------------------

    def _run_inline(self, pending: list[_Task]) -> None:
        """Sequential execution with the same retry/quarantine semantics.

        Each execution runs under a private telemetry sink (merged into
        the surrounding live sink only on success), so retried failures
        never double-count and the merge discipline matches the pooled
        path exactly.
        """
        plan = self.config.fault_plan
        for task in pending:
            while task.status == _PENDING:
                task.attempts += 1
                execution = task.attempts
                previous = _telemetry.install(_telemetry.NULL_TELEMETRY)
                try:
                    if plan is not None:
                        plan.fire_block(task.task_id, execution, in_process=True)
                    payload = self.worker_fn(task.item)
                    if plan is not None and plan.should_corrupt_block(
                        task.task_id, execution
                    ):
                        payload = plan.corrupt_block_payload(payload)
                except KeyboardInterrupt:
                    self.report.interrupted = True
                    _telemetry.install(previous)
                    return
                except Exception as exc:  # noqa: BLE001 -- mirrors the worker
                    _telemetry.install(previous)
                    self._failed(
                        task,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        isinstance(exc, ReproError),
                        time.monotonic(),
                    )
                    if task.status == _PENDING:
                        time.sleep(max(0.0, task.not_before - time.monotonic()))
                else:
                    _telemetry.install(previous)
                    self._complete(task, payload, speculative_win=False)

    # -- pooled path --------------------------------------------------------

    def _spawn_worker(self, ctx) -> _Worker:
        self._worker_seq += 1
        return _Worker(
            ctx, self.worker_fn, self.config.fault_plan, self._worker_seq
        )

    def _run_pooled(self, tasks: list[_Task], pending: list[_Task]) -> None:
        from repro.experiments.parallel import _check_picklable_fn, subprocess_context

        _check_picklable_fn(self.worker_fn)
        self._ctx = subprocess_context(self.config.threadsafe)
        queue = deque(sorted(pending, key=lambda t: t.task_id))
        self._queue = queue
        jobs = min(self.config.jobs, len(queue))
        self._workers = [self._spawn_worker(self._ctx) for _ in range(jobs)]
        handlers = self._install_signal_handlers()
        try:
            self._supervise_loop(tasks, queue)
        finally:
            self._restore_signal_handlers(handlers)
            for worker in self._workers:
                if worker.busy or self._abort:
                    worker.kill()
                else:
                    worker.stop()
            self._workers = []

    def _supervise_loop(self, tasks: list[_Task], queue: deque) -> None:
        while True:
            now = time.monotonic()
            if self._abort:
                self.report.interrupted = True
                return
            unfinished = [t for t in tasks if t.status in (_PENDING, _RUNNING)]
            if not unfinished:
                return
            if self._drain and not any(t.status == _RUNNING for t in tasks):
                self.report.interrupted = True
                return
            self._dispatch_ready(tasks, queue, now)
            timeout = self._wait_timeout(queue, now)
            busy = [w for w in self._workers if w.busy]
            channels = [w.conn for w in busy] + [w.proc.sentinel for w in busy]
            if not channels:
                if self._drain:
                    self.report.interrupted = True
                    return
                # Nothing in flight: every remaining task is backing off.
                time.sleep(max(0.0, min(timeout, _WAIT_CAP_S)))
                continue
            ready = connection_wait(channels, timeout)
            now = time.monotonic()
            for worker in list(busy):
                if worker.conn in ready:
                    self._handle_message(tasks, worker, now)
                elif worker.proc.sentinel in ready:
                    self._handle_death(tasks, worker, now)
            self._handle_deadlines(tasks, now)

    def _dispatch_ready(self, tasks: list[_Task], queue: deque, now: float) -> None:
        if self._drain:
            return
        for worker in [w for w in self._workers if not w.busy]:
            task = self._next_ready(queue, now)
            if task is None:
                break
            self._dispatch_to(worker, task)
        # Any still-idle workers may speculate on stragglers.
        if not self.config.speculate:
            return
        if any(t.status == _PENDING for t in tasks):
            return  # real work still queued or backing off: no duplicates
        for worker in [w for w in self._workers if not w.busy]:
            task = self._straggler_candidate(tasks, now)
            if task is None:
                return
            task.speculated = True
            self.report.speculative_launches += 1
            self._dispatch_to(worker, task)

    def _dispatch_to(self, worker: _Worker, task: _Task) -> bool:
        """Send one execution to *worker*, replacing it if the pipe is dead."""
        task.status = _RUNNING
        task.attempts += 1
        task.running += 1
        try:
            worker.dispatch(
                task.task_id, task.attempts, task.item, self.config.block_timeout
            )
            return True
        except (OSError, ValueError):
            # The worker died while idle; undo the accounting, swap it out.
            task.attempts -= 1
            task.running -= 1
            if task.running == 0:
                task.status = _PENDING
                if self._queue is not None and task not in self._queue:
                    self._queue.append(task)
            worker.kill()
            self._workers.remove(worker)
            self._workers.append(self._spawn_worker(self._ctx))
            return False

    def _next_ready(self, queue: deque, now: float):
        """Pop the first pending task whose backoff has elapsed (FIFO)."""
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.status != _PENDING:
                continue  # completed by a speculative duplicate meanwhile
            if task.not_before <= now:
                return task
            queue.append(task)  # still backing off; rotate
        return None

    def _straggler_candidate(self, tasks: list[_Task], now: float):
        """The longest-running non-duplicated block, if it qualifies."""
        done_elapsed = self._done_elapsed
        if len(done_elapsed) < self.config.straggler_min_done:
            return None
        sorted_elapsed = sorted(done_elapsed)
        median = sorted_elapsed[len(sorted_elapsed) // 2]
        threshold = max(self.config.straggler_factor * median, 0.05)
        candidates = [
            (now - w.started, w.task_id)
            for w in self._workers
            if w.busy and tasks[w.task_id].status == _RUNNING
            and not tasks[w.task_id].speculated
            and tasks[w.task_id].running == 1
            and now - w.started > threshold
        ]
        if not candidates:
            return None
        candidates.sort(reverse=True)
        return tasks[candidates[0][1]]

    def _wait_timeout(self, queue: deque, now: float) -> float | None:
        bounds = [_WAIT_CAP_S]
        for worker in self._workers:
            if worker.busy and worker.deadline is not None:
                bounds.append(max(0.0, worker.deadline - now))
        for task in queue:
            if task.status == _PENDING and task.not_before > now:
                bounds.append(task.not_before - now)
        return min(bounds)

    def _record_done_elapsed(self, elapsed: float) -> None:
        self._done_elapsed.append(elapsed)

    def _handle_message(self, tasks: list[_Task], worker: _Worker, now: float) -> None:
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            self._handle_death(tasks, worker, now)
            return
        status, task_id, execution, payload = msg
        task = tasks[task_id]
        task.running -= 1
        elapsed = now - worker.started
        worker.release()
        if status == "ok":
            if task.status == _DONE:
                self._verify_duplicate(task, payload)
                return
            self._record_done_elapsed(elapsed)
            win = task.speculated and execution == task.attempts
            self._complete(task, payload, speculative_win=win)
        else:
            self._failed(
                task,
                "error",
                f"{payload['type']}: {payload['message']}",
                payload["permanent"],
                now,
            )

    def _handle_death(self, tasks: list[_Task], worker: _Worker, now: float) -> None:
        """A worker died without reporting: respawn it, re-dispatch the block."""
        task = tasks[worker.task_id]
        task.running -= 1
        worker.kill()
        exitcode = worker.proc.exitcode
        self._workers.remove(worker)
        self._workers.append(self._spawn_worker(self._ctx))
        self._failed(
            task,
            "crash",
            (
                f"worker died without a result while running block "
                f"(spec {task.spec_index}, block {task.block_index}); "
                f"exit code {exitcode}"
            ),
            False,
            now,
            redispatch=True,
        )

    def _handle_deadlines(self, tasks: list[_Task], now: float) -> None:
        for worker in list(self._workers):
            if not worker.busy or worker.deadline is None or now < worker.deadline:
                continue
            task = tasks[worker.task_id]
            task.running -= 1
            worker.kill()
            self._workers.remove(worker)
            self._workers.append(self._spawn_worker(self._ctx))
            if task.status == _DONE:
                continue  # a duplicate already won; the kill just freed a slot
            self._failed(
                task,
                "timeout",
                (
                    f"block (spec {task.spec_index}, block {task.block_index}) "
                    f"exceeded {self.config.block_timeout:.1f}s and its worker "
                    "was killed"
                ),
                False,
                now,
            )

    # -- signal handling ----------------------------------------------------

    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        handlers = {}

        def on_signal(signum, frame):
            if self._drain:
                self._abort = True
            else:
                self._drain = True
                _log.warning(
                    "shard supervisor: received signal %d -- draining "
                    "in-flight blocks (signal again to abort immediately)",
                    signum,
                )

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[sig] = signal.signal(sig, on_signal)
            except (ValueError, OSError):
                pass
        return handlers

    def _restore_signal_handlers(self, handlers) -> None:
        if not handlers:
            return
        for sig, previous in handlers.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass


def _split_payload(payload):
    """Unpack a worker payload into ``(results, telemetry_jsonable)``."""
    if isinstance(payload, tuple) and len(payload) == 2:
        return payload
    return payload, None

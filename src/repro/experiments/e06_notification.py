"""T6 -- Lemma 3.1 / Theorems 3.2-3.3: weak-CD election via Notification.

Runs LEWK (= Notification(LESK)) on the faithful per-station engine and
compares against plain LESK in strong-CD.  Checks, per configuration:

* **correctness**: every station terminates and *exactly one* holds
  ``leader = true`` (reported as a rate over repetitions; must be 1.0);
* **overhead**: the ratio of the weak-CD completion time to the strong-CD
  first-Single time stays bounded by a constant (Lemma 3.1's factor is 8
  asymptotically; small n pay extra for interval alignment).
"""

from __future__ import annotations

import numpy as np

from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times

EXPERIMENT = "T6"


def run(preset: str = "small", seed: int = 2020) -> Table:
    """Run experiment T6 at *preset* scale and return its table."""
    ns = preset_value(preset, [16, 64], [8, 32, 128, 512])
    reps = preset_value(preset, 10, 40)
    eps = 0.5
    T = 16
    adversaries = preset_value(
        preset, ["none", "saturating"], ["none", "saturating", "single-suppressor"]
    )

    table = Table(
        name=EXPERIMENT,
        title="LEWK (weak-CD Notification) vs LESK (strong-CD)",
        claim="Lemma 3.1/Thm 3.2: weak-CD election in O(t(n)) (<= 8 t(n)), "
        "w.h.p. exactly one leader",
        columns=[
            Column("adversary", "adversary"),
            Column("n", "n"),
            Column("weak_median", "LEWK median", ".0f"),
            Column("strong_median", "LESK median", ".0f"),
            Column("overhead", "overhead x", ".2f"),
            Column("unique_leader", "1-leader rate", ".3f"),
            Column("terminated", "all-done rate", ".3f"),
        ],
    )
    for ai, adversary in enumerate(adversaries):
        for ni, n in enumerate(ns):
            weak = replicate(
                lambda s: elect_leader(
                    n=n, protocol="lewk", eps=eps, T=T, adversary=adversary, seed=s
                ),
                reps,
                seed,
                6,
                ai,
                ni,
                0,
            )
            strong = replicate(
                lambda s: elect_leader(
                    n=n, protocol="lesk", eps=eps, T=T, adversary=adversary, seed=s
                ),
                reps,
                seed,
                6,
                ai,
                ni,
                1,
            )
            w = summarize_times(weak)
            s = summarize_times(strong)
            unique = sum(1 for r in weak if r.leaders_count == 1) / len(weak)
            done = sum(1 for r in weak if r.all_terminated) / len(weak)
            table.add_row(
                adversary=adversary,
                n=n,
                weak_median=w["median_slots"],
                strong_median=s["median_slots"],
                overhead=w["median_slots"] / max(1.0, s["median_slots"]),
                unique_leader=unique,
                terminated=done,
            )
    overheads = [row["overhead"] for row in table.rows]
    table.add_note(
        f"max observed overhead {np.max(overheads):.1f}x; Lemma 3.1 promises O(1) "
        "(the asymptotic constant is 8; interval alignment adds a small-n surcharge)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

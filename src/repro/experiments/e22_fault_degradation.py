"""A10 -- graceful degradation of election under model-level faults.

The paper's guarantees assume a fixed, fault-free station population: the
only disruption is the (T, 1-eps)-bounded jammer.  This experiment measures
what happens when that assumption is relaxed with the
:mod:`repro.resilience` fault injector: station churn (a severity-fraction
of stations crash at scheduled slots) and feedback corruption (each slot's
shared observation is flipped or erased with the severity probability),
swept for LESK and LESU.

Every run executes with the runtime
:class:`~repro.resilience.auditor.InvariantAuditor` attached -- the
adversary budget, channel consistency and election safety are re-verified
on every slot of every cell, so the table doubles as a large randomized
audit (a violation aborts the experiment loudly).  Crashed would-be
leaders are handled by the restart supervision in
:func:`~repro.core.election.elect_leader`; the mean restart count is part
of the degradation picture.

Expected shape: success degrades smoothly (no cliff at small severities);
corruption slows elections (erased/flipped Singles go unheard, collisions
mislead the estimator) before it prevents them; churn costs restarts --
the chance the first winner is doomed scales with the crashed fraction --
rather than slots.
"""

from __future__ import annotations

from statistics import mean

from repro.adversary.vector import make_batched_adversary
from repro.core.config import default_slot_budget
from repro.core.election import elect_leader
from repro.experiments.harness import (
    Column,
    Table,
    preset_value,
    record_engine_fallback,
    replicate,
    replicate_vectorized,
    summarize_times,
    vectorized_enabled,
)
from repro.protocols.vector import VectorLESKPolicy, VectorLESUPolicy
from repro.resilience.faults import NO_FAULTS, FaultModel

EXPERIMENT = "A10"

#: Restart budget for crashed would-be leaders (supervision layer).
MAX_RESTARTS = 3


def _fault_model(kind: str, rate: float, n: int, T: int) -> FaultModel:
    if rate == 0.0:
        return NO_FAULTS
    if kind == "churn":
        # Crash a *fraction* of the population at scheduled slots spread
        # over the first 8T slots.  (A geometric crash *rate* would doom
        # essentially every station within the slot budget's horizon --
        # informative about nothing but the horizon length; the fraction
        # sweep isolates how election copes with losing stations.)
        crashes = max(1, round(rate * n))
        return FaultModel(
            crash_slots=tuple((i * 8 * T) // crashes for i in range(crashes))
        )
    if kind == "corruption":
        return FaultModel(flip_rate=rate, erase_rate=rate)
    raise ValueError(f"unknown fault kind {kind!r}")


def _vector_policy_factory(protocol: str, eps: float):
    if protocol == "lesk":
        return lambda width: VectorLESKPolicy(eps, width)
    return lambda width: VectorLESUPolicy(width)


def run(
    preset: str = "small", seed: int = 2026, vectorized: bool | None = None
) -> Table:
    """Run experiment A10 at *preset* scale and return its table.

    *vectorized* overrides the preset switch
    (:data:`~repro.experiments.harness.VECTORIZED_PRESETS`): when on, the
    corruption cells and the fault-free baseline run as one audited
    :func:`~repro.sim.vectorized.simulate_stations_vectorized` batch per
    cell -- the same per-station faithful model, minus the scalar station
    loop.  Churn cells always stay on the scalar path: restart
    supervision after a doomed leader lives in
    :func:`~repro.core.election.elect_leader`, which reruns one scalar
    election at a time.
    """
    n = preset_value(preset, 128, 1024)
    eps = 0.5
    T = 16
    reps = preset_value(preset, 12, 200)
    rates = preset_value(
        preset,
        [0.0, 0.1, 0.3],
        [0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5],
    )
    adversary = "saturating"
    use_vectorized = (
        vectorized if vectorized is not None else vectorized_enabled(preset)
    )

    table = Table(
        name=EXPERIMENT,
        title=(
            f"Election under injected faults (n={n}, eps={eps}, T={T}, "
            f"{adversary} jammer, auditor on)"
        ),
        claim=(
            "robustness: success degrades smoothly with fault severity; "
            "every slot passes the invariant auditor"
        ),
        columns=[
            Column("protocol", "protocol"),
            Column("fault", "fault"),
            Column("rate", "severity", ".3f"),
            Column("success_rate", "clean success", ".3f"),
            Column("mean_slots", "mean slots", ".1f"),
            Column("mean_restarts", "mean restarts", ".2f"),
            Column("leader_crashes", "doomed leaders", "d"),
        ],
    )

    for pi, protocol in enumerate(("lesk", "lesu")):
        for ki, kind in enumerate(("churn", "corruption")):
            for ri, rate in enumerate(rates):
                if rate == 0.0 and ki > 0:
                    continue  # the fault-free baseline is one row per protocol
                faults = _fault_model(kind, rate, n, T)
                if use_vectorized and kind != "churn":
                    # Corruption (and the fault-free baseline) schedules
                    # no crashes, so restart supervision is moot and the
                    # whole cell runs as one audited vectorized batch.
                    results = replicate_vectorized(
                        _vector_policy_factory(protocol, eps),
                        n,
                        lambda r: make_batched_adversary(
                            adversary, T=T, eps=eps, reps=r
                        ),
                        reps,
                        seed,
                        22,
                        pi,
                        ki,
                        ri,
                        max_slots=default_slot_budget(n, eps, T, protocol),
                        faults=None if faults is NO_FAULTS else faults,
                        audit_T=T,
                        audit_eps=eps,
                    )
                else:
                    if use_vectorized:
                        record_engine_fallback(
                            "e22-churn", "restart-supervision"
                        )
                    results = replicate(
                        lambda s: elect_leader(
                            n=n,
                            protocol=protocol,
                            eps=eps,
                            T=T,
                            adversary=adversary,
                            seed=s,
                            engine="fast",
                            faults=faults,
                            audit=True,
                            max_restarts=MAX_RESTARTS,
                        ),
                        reps,
                        seed,
                        22,
                        pi,
                        ki,
                        ri,
                    )
                # "Clean" success: elected AND the leader is not scheduled
                # to crash within the horizon (leader_survived).
                clean = [r for r in results if r.elected and r.leader_survived]
                stats = summarize_times(
                    results,
                    elected_of=lambda r: r.elected and r.leader_survived,
                )
                table.add_row(
                    protocol=protocol,
                    fault="none" if rate == 0.0 else kind,
                    rate=rate,
                    success_rate=stats["success_rate"],
                    mean_slots=(
                        mean(r.slots for r in clean) if clean else float("nan")
                    ),
                    mean_restarts=mean(r.restarts for r in results),
                    leader_crashes=sum(
                        1 for r in results if r.elected and not r.leader_survived
                    ),
                )
    table.add_note(
        f"every run audited per-slot (budget/channel/election invariants); "
        f"restart supervision re-elects after a doomed leader, "
        f"max_restarts={MAX_RESTARTS}"
    )
    table.add_note(
        "churn severity = fraction of stations scheduled to crash (spread "
        "over the first 8T slots); corruption severity = per-slot "
        "flip/erase probability of the shared observation"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""F1 -- Section 2.2: the estimator walk hugs log2(n); the strawman diverges.

Figure-series experiment: record the trajectory of the estimate ``u``
for (a) LESK and (b) the symmetric-update strawman, both under the
silence-masking jammer with a strong adversary (eps = 0.3, i.e. 70% of
every window jammable).  The output table reports the trajectory
down-sampled at fixed checkpoints plus summary statistics:

* LESK's ``u`` stays inside the regular band around ``log2 n``
  (Section 2.2's ``[u0 - log2(2 ln a), u0 + log2(sqrt a) + 1]``);
* the symmetric walk's ``u`` climbs roughly linearly with the jam rate
  and never comes back -- "the adversary could force the estimate u to
  diverge to infinity" (Section 2.1).

CSV columns ``slot, u_lesk, u_symmetric`` are the figure's series.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.suite import make_adversary
from repro.experiments.harness import Column, Table, preset_value
from repro.protocols.baselines.symmetric_walk import SymmetricWalkPolicy
from repro.protocols.lesk import LESKPolicy
from repro.sim.fast import simulate_uniform_fast
from repro.types import ChannelState

EXPERIMENT = "F1"


class _NonHaltingLESK(LESKPolicy):
    """LESK that treats a heard Single as a collision so the trajectory can
    be recorded past would-be elections (figure runs only)."""

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            state = ChannelState.COLLISION
        super().observe(step, state)


class _NonHaltingSymmetric(SymmetricWalkPolicy):
    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            state = ChannelState.COLLISION
        super().observe(step, state)


def _trajectory(policy, n, eps, T, adversary, slots, seed) -> np.ndarray:
    adv = make_adversary(adversary, T=T, eps=eps)
    result = simulate_uniform_fast(
        policy,
        n=n,
        adversary=adv,
        max_slots=slots,
        seed=seed,
        record_trace=True,
        halt_on_single=False,
    )
    return result.trace.u_array()


def run(preset: str = "small", seed: int = 2025) -> Table:
    """Run experiment F1 at *preset* scale and return its table."""
    n = 1024
    eps = 0.3
    T = 32
    slots = preset_value(preset, 2000, 20000)
    adversary = "silence-masker"
    checkpoints = preset_value(preset, 20, 50)

    u_lesk = _trajectory(_NonHaltingLESK(eps), n, eps, T, adversary, slots, seed)
    u_symm = _trajectory(
        _NonHaltingSymmetric(), n, eps, T, adversary, slots, seed + 1
    )

    table = Table(
        name=EXPERIMENT,
        title=f"Estimator trajectories under silence-masking jammer "
        f"(n={n}, eps={eps}, log2 n = {math.log2(n):.0f})",
        claim="Sec 2.1/2.2: asymmetric +1/a update keeps u near log2 n; "
        "symmetric update diverges",
        columns=[
            Column("slot", "slot"),
            Column("u_lesk", "u (LESK)", ".2f"),
            Column("u_symmetric", "u (symmetric)", ".2f"),
        ],
    )
    idx = np.linspace(0, slots - 1, checkpoints).astype(int)
    for i in idx:
        table.add_row(slot=int(i), u_lesk=float(u_lesk[i]), u_symmetric=float(u_symm[i]))

    a = 8.0 / eps
    u0 = math.log2(n)
    band_lo = u0 - math.log2(2.0 * math.log(a))
    band_hi = u0 + 0.5 * math.log2(a) + 1.0
    settled = u_lesk[len(u_lesk) // 4 :]
    in_band = float(np.mean((settled >= band_lo) & (settled <= band_hi)))
    table.add_note(
        f"regular band [{band_lo:.1f}, {band_hi:.1f}]; LESK in-band fraction "
        f"(after warmup) = {in_band:.2f}; symmetric final u = {u_symm[-1]:.0f} "
        f"(diverged: {bool(u_symm[-1] > band_hi + 10)})"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

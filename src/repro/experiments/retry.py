"""Bounded retry policy shared by the experiment runner and shard supervisor.

Lives in its own module (rather than :mod:`repro.experiments.runner`, its
original home) so the block-level shard supervisor can reuse the exact
same backoff semantics without importing the experiment-level runner --
``runner`` re-exports :class:`RetryPolicy`, so existing imports keep
working.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    The delay before attempt ``k+1`` is ``base * 2**(k-1)`` capped at
    *cap*, scaled by a jitter factor in ``[0.5, 1.5)`` drawn from a stream
    seeded by ``(seed, unit id, attempt)`` -- deterministic per
    slot, decorrelated across units so a pool of retries does not
    stampede in lockstep.  The *unit id* is an experiment id for the
    experiment runner and a ``spec/block`` key for the shard supervisor.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    retry_timeouts: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff base/cap must be >= 0")

    def delay(self, exp_id: str, attempt: int) -> float:
        """Backoff before retrying after failed attempt number *attempt*."""
        raw = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        jitter = random.Random(f"{self.seed}:{exp_id}:{attempt}").random()
        return raw * (0.5 + jitter)

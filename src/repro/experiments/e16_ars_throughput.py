"""A4 -- context experiment: the [3] MAC's constant-throughput claim.

The paper positions itself against Awerbuch-Richa-Scheideler [3], whose
headline is *constant throughput* under (T, 1-eps) jamming -- leader
election is just one application.  To confirm our reimplementation is a
fair comparator, this experiment runs the plain ARS MAC (no termination on
Single) and measures the fraction of non-jammed slots that carry a
successful message, before and after the protocol's convergence period.
A healthy reimplementation shows near-zero early throughput (the
multiplicative back-off from p = 1/24 is still converging) and a clearly
positive steady-state plateau.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.suite import make_adversary
from repro.experiments.harness import Column, Table, preset_value, replicate
from repro.protocols.baselines.ars_mac import ARSMACStation, ars_gamma
from repro.sim.engine import simulate_stations
from repro.types import CDMode

EXPERIMENT = "A4"


def _throughput(n: int, eps: float, T: int, adversary: str, slots: int, seed: int):
    stations = [
        ARSMACStation(ars_gamma(n, T), terminate_on_single=False) for _ in range(n)
    ]
    adv = make_adversary(adversary, T=T, eps=eps)
    result = simulate_stations(
        stations,
        adversary=adv,
        cd_mode=CDMode.STRONG,
        max_slots=slots,
        seed=seed,
        record_trace=True,
        stop_when_all_done=False,
        stop_on_first_single=False,
    )
    trace = result.trace
    singles = (trace.true_states_array() == 1) & ~trace.jammed_array()
    clear = ~trace.jammed_array()
    half = slots // 2
    early = singles[:half].sum() / max(1, clear[:half].sum())
    late = singles[half:].sum() / max(1, clear[half:].sum())
    return float(early), float(late)


def run(preset: str = "small", seed: int = 2030) -> Table:
    """Run experiment A4 at *preset* scale and return its table."""
    ns = preset_value(preset, [32, 128], [32, 128, 512])
    reps = preset_value(preset, 4, 20)
    slots = preset_value(preset, 4_000, 20_000)
    eps = 0.5
    T = 16
    adversary = "saturating"

    table = Table(
        name=EXPERIMENT,
        title="ARS [3] MAC throughput (successful Singles per clear slot)",
        claim="[3] achieves constant throughput after convergence -- sanity "
        "check that our comparator is faithful",
        columns=[
            Column("n", "n"),
            Column("early", "first-half throughput", ".3f"),
            Column("late", "second-half throughput", ".3f"),
        ],
    )
    for ni, n in enumerate(ns):
        pairs = replicate(
            lambda s: _throughput(n, eps, T, adversary, slots, s), reps, seed, 16, ni
        )
        early = float(np.mean([p[0] for p in pairs]))
        late = float(np.mean([p[1] for p in pairs]))
        table.add_row(n=n, early=early, late=late)
    table.add_note(
        f"{slots} slots per run; 'throughput' is measured over non-jammed "
        "slots only (the adversary denies the rest by definition)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

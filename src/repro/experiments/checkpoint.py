"""Checkpointed run directories: manifest, journal, atomic table snapshots.

A *run directory* makes a long ``run_all`` invocation survivable: every
finished :class:`~repro.experiments.harness.Table` is checkpointed the
moment it completes, a JSONL journal records each attempt, and a manifest
makes the directory self-describing so a later ``--resume`` can refuse to
mix incompatible runs.  Layout::

    RUN_DIR/
      manifest.json         preset, ids, seed, git SHA, versions
      journal.jsonl         one JSON record per attempt / outcome event
      checkpoints/T1.json   {"checksum": sha256, "table": <Table JSON>}
      T1.txt  T1.csv        rendered outputs (same as the old --out files)
      failures.txt          failure-summary table (only when something failed)

Every file is written atomically (same-directory tmp file + ``os.replace``)
so a SIGKILL mid-write can never leave a torn checkpoint or manifest; the
journal is append-only and its reader skips a truncated final line.
Checkpoints embed a SHA-256 over their canonical payload -- corruption is
detected on load (:class:`~repro.errors.ChecksumMismatchError`) and the
runner recomputes rather than trusting a damaged file.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import platform
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable

from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.experiments.harness import Table

__all__ = [
    "RunDir",
    "atomic_write_text",
    "failing_writes",
    "table_payload",
    "payload_checksum",
    "corrupt_checkpoint",
    "build_manifest",
    "cli_invocation",
]

#: Active write-fault injectors (chaos testing only).  A stack of
#: zero-arg exception factories; when non-empty, every
#: :func:`atomic_write_text` call raises a fresh exception from the top
#: entry instead of writing.  The hook lives *inside* the writer (rather
#: than monkeypatching it) so ``from ... import atomic_write_text``
#: bindings taken by other modules are affected too.
_write_faults: list[Callable[[], BaseException]] = []


@contextlib.contextmanager
def failing_writes(make_exc: Callable[[], BaseException]):
    """Make every atomic write fail for the duration (disk-full drills)."""
    _write_faults.append(make_exc)
    try:
        yield
    finally:
        _write_faults.remove(make_exc)

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_SUBDIR = "checkpoints"
#: Block-level checkpoints written by the shard supervisor during sharded
#: sweeps (content-addressed; see experiments.shard_supervisor).
SHARD_SUBDIR = "shards"
MANIFEST_FORMAT = 1

#: Manifest keys that change results: a resume with a different value is
#: refused.  The environment keys below are advisory (warn only) -- a
#: rebuilt checkout or a NumPy upgrade *may* shift numbers, but refusing
#: would make every local resume after an unrelated commit impossible.
_MANIFEST_STRICT_KEYS = ("format", "preset", "ids", "seed")
_MANIFEST_ADVISORY_KEYS = ("git_sha", "python", "numpy", "sharded")


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* via a same-directory tmp file + rename."""
    if _write_faults:
        raise _write_faults[-1]()
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def table_payload(table: Table) -> str:
    """Canonical JSON payload of a table (stable key order, tight separators)."""
    return json.dumps(table.to_jsonable(), sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: str) -> str:
    """SHA-256 hex digest of a canonical payload string."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _git_sha() -> str | None:
    """HEAD commit of the working tree, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def build_manifest(
    preset: str,
    ids: list[str],
    seed: int | None,
    sharded: dict | None = None,
    invocation: dict | None = None,
    scenario_digest: str | None = None,
) -> dict:
    """The self-describing header of a run directory.

    *sharded* records the intra-experiment sharding configuration
    (``shard_jobs`` et al.) when enabled.  It is advisory, not strict:
    block checkpoints are content-addressed over the full cell spec and
    partition, so resuming with different shard settings is safe (blocks
    that match restore, the rest recompute) -- but worth a warning.

    *invocation* records exactly how the run was produced: the CLI
    subcommand and argv (see :func:`cli_invocation`).  *scenario_digest*
    is the content address of the scenario document behind a service run
    (:mod:`repro.service`), so any stored run names its inputs precisely.
    Both are informational -- never compared on ``--resume``.
    """
    import numpy

    manifest = {
        "format": MANIFEST_FORMAT,
        "preset": preset,
        "ids": list(ids),
        "seed": seed,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if sharded is not None:
        manifest["sharded"] = sharded
    if invocation is not None:
        manifest["invocation"] = invocation
    if scenario_digest is not None:
        manifest["scenario_digest"] = scenario_digest
    return manifest


def cli_invocation(subcommand: str, argv: list[str] | None) -> dict:
    """The ``invocation`` manifest entry for a CLI entry point.

    *argv* is the argument list the entry point's ``main`` received;
    ``None`` means it read :data:`sys.argv` (recorded as such).
    """
    import sys

    return {
        "subcommand": subcommand,
        "argv": list(sys.argv[1:] if argv is None else argv),
    }


def corrupt_checkpoint(path: Path, seed: int = 0) -> None:
    """Deterministically damage a checkpoint file (chaos testing only).

    Overwrites the embedded checksum with a seeded fake digest, leaving the
    file valid JSON -- exactly the "silent bit-rot" case the integrity
    check exists for.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    fake = hashlib.sha256(f"corrupted:{seed}:{path.name}".encode()).hexdigest()
    data["checksum"] = fake
    atomic_write_text(path, json.dumps(data, sort_keys=True, separators=(",", ":")))


class RunDir:
    """One checkpointed run directory (see the module docstring for layout).

    Thread-safe for the runner's use: journal appends are serialized by a
    lock; checkpoint files are per-experiment so concurrent saves never
    collide.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self._journal_lock = threading.Lock()

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def read_manifest(self) -> dict | None:
        """The stored manifest, or None for a fresh/legacy directory."""
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"unreadable manifest {self.manifest_path}: {exc}; "
                "this is not a valid run directory"
            ) from exc

    def init(self, manifest: dict) -> None:
        """Start a fresh run: reset stale state, write the manifest atomically.

        A fresh ``--out`` into a reused directory clears the old journal and
        checkpoints first -- otherwise a later ``--resume`` could restore
        tables computed under different parameters.
        """
        checkpoints = self.root / CHECKPOINT_SUBDIR
        checkpoints.mkdir(parents=True, exist_ok=True)
        self.journal_path.unlink(missing_ok=True)
        for stale in checkpoints.glob("*.json"):
            stale.unlink(missing_ok=True)
        shards = self.root / SHARD_SUBDIR
        if shards.is_dir():
            for stale in shards.glob("block-*.json"):
                stale.unlink(missing_ok=True)
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True)
        )

    def validate_manifest(self, expected: dict) -> list[str]:
        """Check a resume against the stored manifest.

        Raises :class:`ConfigurationError` with an actionable message when a
        result-affecting key (preset, ids, seed, format) differs; returns a
        list of human-readable warnings for advisory mismatches (git SHA,
        Python/NumPy versions).
        """
        stored = self.read_manifest()
        if stored is None:
            raise ConfigurationError(
                f"{self.root} has no {MANIFEST_NAME}; it was not created by "
                "the checkpointing runner, so --resume cannot verify it "
                "matches this invocation. Start a fresh --out directory."
            )
        mismatches = [
            f"  {key}: run dir has {stored.get(key)!r}, this invocation has "
            f"{expected.get(key)!r}"
            for key in _MANIFEST_STRICT_KEYS
            if stored.get(key) != expected.get(key)
        ]
        if mismatches:
            raise ConfigurationError(
                "refusing to resume: the run directory was created with "
                "different parameters --\n" + "\n".join(mismatches) + "\n"
                "Re-run with the original --preset/--only/--seed flags, or "
                "start a fresh --out directory."
            )
        return [
            f"manifest {key} changed since the checkpointed run: "
            f"{stored.get(key)!r} -> {expected.get(key)!r} (results may shift)"
            for key in _MANIFEST_ADVISORY_KEYS
            if stored.get(key) != expected.get(key)
        ]

    # -- journal -----------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    def append_journal(self, record: dict) -> None:
        """Append one event record (adds a wall-clock ``ts`` field)."""
        line = json.dumps({"ts": round(time.time(), 3), **record}, sort_keys=True)
        with self._journal_lock:
            with open(self.journal_path, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def read_journal(self) -> list[dict]:
        """All parseable journal records (a torn final line is skipped)."""
        try:
            lines = self.journal_path.read_text().splitlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail after a kill; the checkpoint files rule
        return records

    # -- checkpoints -------------------------------------------------------

    def checkpoint_path(self, exp_id: str) -> Path:
        """Where one experiment's checkpoint file lives."""
        return self.root / CHECKPOINT_SUBDIR / f"{exp_id}.json"

    def has_checkpoint(self, exp_id: str) -> bool:
        """Whether a checkpoint file exists (integrity checked on load)."""
        return self.checkpoint_path(exp_id).exists()

    def save_table(self, table: Table) -> str:
        """Atomically checkpoint a finished table; returns its checksum."""
        payload = table_payload(table)
        digest = payload_checksum(payload)
        path = self.checkpoint_path(table.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps({"checksum": digest, "table": json.loads(payload)},
                             sort_keys=True, separators=(",", ":"))
        )
        return digest

    def load_table(self, exp_id: str) -> Table:
        """Load and integrity-check one checkpointed table.

        Raises :class:`ChecksumMismatchError` when the stored digest does
        not match the payload, and :class:`ConfigurationError` when the file
        is missing or not JSON.
        """
        path = self.checkpoint_path(exp_id)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ConfigurationError(f"no checkpoint for {exp_id} in {self.root}") from exc
        except json.JSONDecodeError as exc:
            raise ChecksumMismatchError(
                f"checkpoint {path} is not valid JSON ({exc}); recompute it"
            ) from exc
        table = Table.from_jsonable(data["table"])
        digest = payload_checksum(table_payload(table))
        if digest != data.get("checksum"):
            raise ChecksumMismatchError(
                f"checkpoint {path} failed integrity verification "
                f"(stored {data.get('checksum')!r}, recomputed {digest!r}); "
                "recompute it"
            )
        return table

    def write_outputs(self, table: Table) -> None:
        """Write the rendered ``ID.txt`` / ``ID.csv`` files atomically."""
        atomic_write_text(self.root / f"{table.name}.txt", table.render() + "\n")
        atomic_write_text(self.root / f"{table.name}.csv", table.to_csv() + "\n")

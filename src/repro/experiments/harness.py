"""Experiment plumbing: replicated runs, summaries, and table rendering.

Design goals:

* **Reproducible**: every cell of every table derives its seed from
  ``(root_seed, experiment path, repetition index)`` via
  :func:`repro.rng.derive_seed`; re-running a table bit-reproduces it.
* **Self-describing**: tables render as aligned ASCII with a title and a
  claim line, and export to CSV for downstream plotting.
* **Two presets**: ``small`` (seconds; used by the benchmark suite) and
  ``full`` (the EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import csv
import io
import logging
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.analysis.estimators import wilson_interval
from repro.errors import ConfigurationError
from repro.rng import derive_seed
from repro.telemetry import ENERGY_BUCKETS, SLOT_BUCKETS, Telemetry, get_telemetry

__all__ = [
    "Column",
    "Table",
    "replicate",
    "replicate_batched",
    "replicate_megakernel",
    "replicate_vectorized",
    "batched_enabled",
    "megakernel_enabled",
    "vectorized_enabled",
    "record_engine_fallback",
    "ShardedScheduler",
    "SHARD_BLOCK_TAG",
    "summarize_times",
    "preset_value",
]

#: Preset-level switch for the batched cross-replication engine: presets
#: mapped to True run their batchable (protocol, adversary) cells through
#: :func:`replicate_batched`; others use the scalar :func:`replicate` loop.
#: Flip a preset here (or pass ``batched=`` to an experiment's ``run``) to
#: force the scalar path, e.g. when bisecting a statistics regression.
BATCHED_PRESETS: dict[str, bool] = {"small": True, "smoke": True, "full": True}

#: Preset-level switch for the vectorized faithful engine
#: (:mod:`repro.sim.vectorized`): presets mapped to True run their audited
#: per-station cells -- the differential/audit experiments, where the
#: faithful model is required but the scalar station loop is the
#: bottleneck -- through :func:`replicate_vectorized`; others keep the
#: scalar :func:`repro.sim.engine.simulate_stations` loop.
VECTORIZED_PRESETS: dict[str, bool] = {"small": True, "smoke": True, "full": True}

#: Preset-level switch for the slot-blocked megakernel engine
#: (:mod:`repro.sim.megakernel`): presets mapped to True route their
#: batched uniform cells through :func:`replicate_megakernel` instead of
#: :func:`replicate_batched`.  The megakernel serves oblivious
#: (schedulable) adversaries on the fused fast path and delegates every
#: other configuration back to the batched engine byte-identically, so
#: flipping this switch never changes which cells *can* run -- only how
#: fast the oblivious ones do.
MEGAKERNEL_PRESETS: dict[str, bool] = {"small": True, "smoke": True, "full": True}


def batched_enabled(preset: str) -> bool:
    """Whether the batched engine is enabled for *preset*."""
    return BATCHED_PRESETS.get(preset, False)


def megakernel_enabled(preset: str) -> bool:
    """Whether the slot-blocked megakernel engine is enabled for *preset*."""
    return MEGAKERNEL_PRESETS.get(preset, False)


def vectorized_enabled(preset: str) -> bool:
    """Whether the vectorized faithful engine is enabled for *preset*."""
    return VECTORIZED_PRESETS.get(preset, False)


def preset_value(preset: str, small, full):
    """Pick a parameter by preset name.

    ``smoke`` is an alias for the ``small`` branch -- it exists so CI and
    the telemetry acceptance command can name their intent without the
    experiments growing a third parameter set.
    """
    if preset in ("small", "smoke"):
        return small
    if preset == "full":
        return full
    raise ConfigurationError(
        f"unknown preset {preset!r}; use 'small', 'smoke' or 'full'"
    )


@dataclass(frozen=True, slots=True)
class Column:
    """One table column: row-dict key, header text, and format spec."""

    key: str
    header: str
    fmt: str = ""  # format spec applied to the value, e.g. ".2f"

    def render(self, value) -> str:
        """Format one cell value (None renders as '-')."""
        if value is None:
            return "-"
        if self.fmt:
            try:
                return format(value, self.fmt)
            except (TypeError, ValueError):
                return str(value)
        return str(value)


@dataclass(slots=True)
class Table:
    """An experiment result table."""

    name: str  # e.g. "T1"
    title: str
    claim: str  # the paper claim being reproduced
    columns: list[Column]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append one result row (keyword per column key)."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table as aligned ASCII with title, claim and notes."""
        headers = [c.header for c in self.columns]
        cells = [
            [c.render(row.get(c.key)) for c in self.columns] for row in self.rows
        ]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [f"== {self.name}: {self.title} ==", f"claim: {self.claim}"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Export rows as CSV keyed by column keys.

        Values containing commas, quotes or newlines are quoted per the
        :mod:`csv` module's rules, so claim-note strings promoted into
        cells round-trip instead of silently corrupting the file.
        """
        keys = [c.key for c in self.columns]
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(keys)
        for row in self.rows:
            writer.writerow([str(row.get(k, "")) for k in keys])
        return buf.getvalue()[:-1]  # drop the terminator of the last row

    def column_values(self, key: str) -> list:
        """All row values for one column key."""
        return [row.get(key) for row in self.rows]

    def to_jsonable(self) -> dict:
        """A plain-data dict that round-trips through JSON.

        NumPy scalars are demoted to native Python numbers; rendering and
        CSV export are unaffected (``format``/``str`` agree on both), so a
        table restored with :meth:`from_jsonable` reproduces ``render()``
        and ``to_csv()`` byte-for-byte.  This is the checkpoint payload of
        the fault-tolerant runner (:mod:`repro.experiments.checkpoint`).
        """
        return {
            "name": self.name,
            "title": self.title,
            "claim": self.claim,
            "columns": [
                {"key": c.key, "header": c.header, "fmt": c.fmt}
                for c in self.columns
            ],
            "rows": [
                {k: _plain_scalar(v) for k, v in row.items()} for row in self.rows
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Table":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            name=data["name"],
            title=data["title"],
            claim=data["claim"],
            columns=[Column(**c) for c in data["columns"]],
            rows=[dict(r) for r in data["rows"]],
            notes=list(data["notes"]),
        )


def _plain_scalar(value):
    """Demote NumPy scalars to native Python types for JSON export."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def replicate(
    fn: Callable[[int], object],
    reps: int,
    root_seed: int,
    *path: int,
) -> list:
    """Run ``fn(seed)`` for *reps* stable derived seeds and collect results."""
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    results = [fn(derive_seed(root_seed, *path, r)) for r in range(reps)]
    _record_cell(results, path)
    return results


def replicate_batched(
    policy_factory: Callable,
    n: int,
    adversary_factory: Callable,
    reps: int,
    root_seed: int,
    *path: int,
    max_slots: int,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Batched counterpart of :func:`replicate` for uniform protocols.

    Runs all *reps* replications in one
    :func:`repro.sim.batched.simulate_uniform_batched` call and returns the
    per-replication :class:`~repro.sim.metrics.RunResult` list, so the same
    ``summarize_times`` summary dicts come out as from the scalar loop.

    Seeding is path-stable via :func:`repro.rng.derive_seed` exactly like
    :func:`replicate`: the batch seed derives from ``(root_seed, *path)``,
    so a table cell reproduces bit-for-bit regardless of execution order.
    (Per-replication bitstreams differ from the scalar loop's -- the batch
    interleaves its draws -- but the run-law is identical; see
    ``tests/sim/test_batched.py``.)

    *faults* (a :class:`~repro.resilience.faults.FaultModel`) and
    *compact_interval* (dead-rep compaction stride) forward to the engine;
    both default to off, leaving every faults-off pin bit-identical.
    """
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    from repro.sim.batched import simulate_uniform_batched

    batch = simulate_uniform_batched(
        policy_factory,
        n,
        adversary_factory,
        reps=reps,
        max_slots=max_slots,
        root_seed=derive_seed(root_seed, *path),
        faults=faults,
        compact_interval=compact_interval,
    )
    results = batch.results()
    _record_cell(results, path)
    return results


def replicate_megakernel(
    policy_factory: Callable,
    n: int,
    adversary_factory: Callable,
    reps: int,
    root_seed: int,
    *path: int,
    max_slots: int,
    faults=None,
    compact_interval: int | None = None,
) -> list:
    """Megakernel counterpart of :func:`replicate_batched`.

    Routes the cell through
    :func:`repro.sim.megakernel.simulate_uniform_megakernel`: oblivious
    (schedulable) adversaries run the slot-blocked fused fast path, and
    every configuration the fast path cannot serve -- adaptive
    strategies, non-ladder policies, enabled fault models -- delegates to
    the batched engine with the original arguments, byte-identical to
    :func:`replicate_batched` having been called directly (the fallback
    is loud: ``engine_fallback_total{engine="megakernel"}``).

    Seeding is path-stable exactly like :func:`replicate_batched`.  Note
    the fused path compacts dead replications maximally, so its bitstream
    matches the batched engine's only under an explicit
    ``compact_interval`` (any value); cells flipped onto the megakernel
    keep the batched run-law but not the default-stream bits, so
    fixed-seed pins that must survive the flip should pin the law, not
    the bits (see ``docs/engines.md``).
    """
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    from repro.sim.megakernel import simulate_uniform_megakernel

    batch = simulate_uniform_megakernel(
        policy_factory,
        n,
        adversary_factory,
        reps=reps,
        max_slots=max_slots,
        root_seed=derive_seed(root_seed, *path),
        faults=faults,
        compact_interval=compact_interval,
    )
    results = batch.results()
    _record_cell(results, path)
    return results


def replicate_vectorized(
    policy_factory: Callable,
    n: int,
    adversary_factory: Callable,
    reps: int,
    root_seed: int,
    *path: int,
    max_slots: int,
    faults=None,
    audit_T: int | None = None,
    audit_eps: float | None = None,
) -> list:
    """Faithful-model counterpart of :func:`replicate_batched`.

    Runs all *reps* replications of the *per-station* model in one
    :func:`repro.sim.vectorized.simulate_stations_vectorized` call:
    *policy_factory* receives the cell width ``n * reps`` (one policy
    column per station per replication), *faults* are realized
    independently per replication, and passing ``audit_T``/``audit_eps``
    attaches a :class:`~repro.resilience.auditor.BatchInvariantAuditor`
    so every slot of every replication is budget/channel-audited.
    Seeding is path-stable exactly like :func:`replicate_batched`; the
    run-law matches the scalar faithful loop (see
    ``tests/sim/test_vectorized.py``).
    """
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    from repro.resilience.auditor import BatchInvariantAuditor
    from repro.sim.vectorized import simulate_stations_vectorized

    auditor = None
    if audit_T is not None:
        if audit_eps is None:
            raise ConfigurationError("audit_T requires audit_eps")
        auditor = BatchInvariantAuditor(audit_T, audit_eps, reps)
    batch = simulate_stations_vectorized(
        policy_factory,
        n,
        adversary_factory,
        reps=reps,
        max_slots=max_slots,
        root_seed=derive_seed(root_seed, *path),
        faults=faults,
        auditor=auditor,
    )
    results = batch.results()
    _record_cell(results, path)
    return results


#: Components already warned about in this process -- the fallback warning
#: fires once per component, the telemetry counter on every fallback.
_FALLBACK_WARNED: set[str] = set()

_log = logging.getLogger(__name__)


def record_engine_fallback(component: str, reason: str) -> None:
    """Record a silent-no-more fallback from the batched to the scalar path.

    Increments ``engine_fallback_total{reason=...}`` (a no-op when telemetry
    is disabled) and emits a one-time :mod:`logging` warning naming the
    unbatchable *component*, so a cell quietly running ~10x slower leaves a
    visible trace in both the metrics and the log.
    """
    get_telemetry().counter("engine_fallback_total", reason=reason).inc()
    if component not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(component)
        _log.warning(
            "batched engine requested but %s has no vectorized "
            "implementation (reason=%s); falling back to the scalar "
            "per-slot loop",
            component,
            reason,
        )


#: Seed-path component separating shard block indices from repetition
#: indices: a rep-block's seed derives from ``(root_seed, *cell_path,
#: SHARD_BLOCK_TAG, block_index)``, which cannot collide with any unsharded
#: cell path (experiment path components are small non-negative ints).
SHARD_BLOCK_TAG = 7_000_001


class ShardedScheduler:
    """Chunk ``(cell x rep-block)`` work units onto supervised workers.

    The scheduler cuts every spec's repetitions into fixed-size blocks
    (``block_size``; the partition depends only on ``reps``, never on the
    worker count) and regroups the per-block result lists in block order,
    so the returned per-spec lists are identical for any ``jobs``
    (``jobs=1`` runs the worker in-process).  Workers return ``(results,
    telemetry_jsonable | None)``; each block's telemetry shard is merged
    into the caller's live sink exactly once.

    ``supervised=True`` (the default) executes blocks through the
    block-level supervisor (:class:`repro.experiments.shard_supervisor
    .BlockSupervisor`): per-block deadlines with kill-on-timeout, worker
    death detection and re-dispatch, bounded seeded-backoff retry,
    poison-block quarantine (``keep_going``), straggler speculation, and
    atomic block checkpoints (``checkpoint_dir``).  ``supervised=False``
    keeps the plain persistent ``Pool.map`` path -- no recovery, but
    marginally less dispatch bookkeeping; it is the baseline the
    supervised path's overhead gate is measured against.

    Use as a context manager; the legacy pool persists across :meth:`run`
    calls (the supervised path spawns its workers per run):

    >>> with ShardedScheduler(jobs=4) as sched:           # doctest: +SKIP
    ...     tables = sched.run(run_shard, specs_a)
    ...     more = sched.run(run_shard, specs_b)
    """

    def __init__(
        self,
        jobs: int | None = None,
        block_size: int = 64,
        threadsafe: bool = False,
        *,
        supervised: bool = True,
        retry=None,
        block_timeout: float | None = None,
        keep_going: bool = False,
        speculate: bool = True,
        checkpoint_dir=None,
        fault_plan=None,
    ) -> None:
        from repro.experiments.parallel import default_jobs

        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        self.jobs = int(jobs)
        self.block_size = int(block_size)
        self.threadsafe = bool(threadsafe)
        self.supervised = bool(supervised)
        self.retry = retry
        self.block_timeout = block_timeout
        self.keep_going = bool(keep_going)
        self.speculate = bool(speculate)
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan
        self._pool = None

    def __enter__(self) -> "ShardedScheduler":
        from repro.experiments.parallel import subprocess_context

        if not self.supervised and self.jobs > 1:
            ctx = subprocess_context(self.threadsafe)
            self._pool = ctx.Pool(processes=self.jobs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pool is not None:
            if exc_type is not None:
                # A failing sweep must not block on in-flight pool work:
                # close()+join() waits for every dispatched item, which can
                # hang forever behind a wedged worker.
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None

    def blocks_for(self, reps: int) -> list[int]:
        """The fixed rep-block partition of *reps* (jobs-independent)."""
        if reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {reps}")
        full, rest = divmod(reps, self.block_size)
        return [self.block_size] * full + ([rest] if rest else [])

    def _items_for(self, specs: Sequence):
        """Expand specs into per-block work items plus regrouping indices."""
        items: list[tuple] = []
        groups: list[list[int]] = []
        for spec in specs:
            idxs = []
            for block_index, block_reps in enumerate(self.blocks_for(spec.reps)):
                idxs.append(len(items))
                items.append((spec, block_index, block_reps))
            groups.append(idxs)
        return items, groups

    def run(self, worker: Callable, specs: Sequence) -> list[list]:
        """Run *worker* over every spec's rep-blocks; one result list per spec.

        ``worker`` takes ``(spec, block_index, block_reps)`` and returns
        ``(list_of_results, telemetry_jsonable | None)``.  It must be a
        module-level function when ``jobs > 1`` (worker dispatch pickles
        by reference).
        """
        if self.supervised:
            merged, _shards, _report = self.run_report(
                worker, specs, collect_spec_shards=False
            )
            return merged
        return self._run_pool(worker, specs)

    def run_report(
        self,
        worker: Callable,
        specs: Sequence,
        *,
        collect_spec_shards: bool = True,
    ):
        """Supervised run returning ``(merged, spec_shards, report)``.

        ``spec_shards[i]`` is a :class:`~repro.telemetry.Telemetry` built
        from spec *i*'s block shards (None when the blocks carried no
        telemetry -- e.g. restored from checkpoint, which stores results
        only), letting callers read per-spec counters the way a scoped
        ``telemetry.collecting()`` would.  ``report`` is the supervisor's
        :class:`~repro.experiments.shard_supervisor.ShardReport`; with
        ``keep_going`` quarantined blocks leave their spec's result list
        short and are itemized there.

        ``collect_spec_shards=False`` skips rebuilding the per-spec
        telemetry views (every slot stays None); the global-sink merge in
        the supervisor is unaffected.  :meth:`run` uses this -- decoding
        every block's telemetry only to discard it is where the supervised
        path would otherwise lose its overhead budget.
        """
        if not self.supervised:
            raise ConfigurationError(
                "run_report requires a supervised scheduler; the legacy "
                "Pool.map path has no supervision report"
            )
        from repro.experiments.shard_supervisor import (
            BlockCheckpointStore,
            BlockSupervisor,
            SupervisionConfig,
        )
        from repro.experiments.retry import RetryPolicy

        items, groups = self._items_for(specs)
        config = SupervisionConfig(
            jobs=self.jobs,
            retry=self.retry if self.retry is not None else RetryPolicy(),
            block_timeout=self.block_timeout,
            keep_going=self.keep_going,
            speculate=self.speculate,
            fault_plan=self.fault_plan,
            threadsafe=self.threadsafe,
        )
        store = (
            BlockCheckpointStore(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )
        supervisor = BlockSupervisor(worker, config, store)
        supervisor_items = []
        for spec_index, idxs in enumerate(groups):
            for i in idxs:
                supervisor_items.append((spec_index, items[i][1], items[i]))
        payloads, report = supervisor.run(supervisor_items, self.block_size)

        merged: list[list] = []
        spec_shards: list[Telemetry | None] = []
        for idxs in groups:
            spec_results: list = []
            shard: Telemetry | None = None
            for i in idxs:
                payload = payloads[i]
                if payload is None:
                    continue  # quarantined under keep_going
                results, tel_json = payload
                spec_results.extend(results)
                if collect_spec_shards and tel_json:
                    block_tel = Telemetry.from_jsonable(tel_json)
                    if shard is None:
                        shard = block_tel
                    else:
                        shard.merge(block_tel)
            merged.append(spec_results)
            spec_shards.append(shard)
        return merged, spec_shards, report

    def _run_pool(self, worker: Callable, specs: Sequence) -> list[list]:
        """The legacy unsupervised ``Pool.map`` path (overhead baseline)."""
        items, groups = self._items_for(specs)
        if self._pool is None:
            outs = [worker(item) for item in items]
            pooled = False
        else:
            from repro.experiments.parallel import _check_picklable_fn

            _check_picklable_fn(worker)
            chunksize = max(1, len(items) // (self.jobs * 4))
            outs = self._pool.map(worker, items, chunksize=chunksize)
            pooled = True

        tel = get_telemetry()
        merged: list[list] = []
        for idxs in groups:
            spec_results: list = []
            for i in idxs:
                results, tel_json = outs[i]
                spec_results.extend(results)
                if pooled and tel.enabled and tel_json:
                    tel.merge(Telemetry.from_jsonable(tel_json))
            merged.append(spec_results)
        return merged


def _record_cell(results: Sequence, path: tuple) -> None:
    """Aggregate one table cell's run results into per-cell histograms.

    The ``cell`` label is the seed-derivation path joined with dots -- the
    same coordinates that make the cell reproducible make it addressable in
    the telemetry registry.  Only run results (objects exposing ``slots`` /
    ``elected`` / ``energy``) are recorded; cells replicating other payloads
    (e.g. estimator outputs) pass through untouched.
    """
    tel = get_telemetry()
    if not tel.enabled or not path:
        return
    runs = [
        r
        for r in results
        if hasattr(r, "slots") and hasattr(r, "elected") and hasattr(r, "energy")
    ]
    if not runs:
        return
    cell = ".".join(str(p) for p in path)
    elected_slots = [float(r.slots) for r in runs if r.elected]
    if elected_slots:
        tel.histogram("cell_election_slots", SLOT_BUCKETS, cell=cell).observe_many(
            np.asarray(elected_slots)
        )
    per_station = [float(r.energy.total) / r.n for r in runs if r.n > 0]
    if per_station:
        tel.histogram(
            "cell_energy_per_station", ENERGY_BUCKETS, cell=cell
        ).observe_many(np.asarray(per_station))


def summarize_times(
    results: Sequence,
    slots_of: Callable = lambda r: r.slots,
    elected_of: Callable = lambda r: r.elected,
) -> dict:
    """Summary statistics over a batch of run results.

    Returns mean/median/p90/max of slot counts (over *all* runs, counting
    timeouts at their full budget -- conservative), plus the success rate
    and its 95% Wilson interval.
    """
    if len(results) == 0:
        raise ConfigurationError("no results to summarize")
    slots = np.asarray([slots_of(r) for r in results], dtype=np.float64)
    successes = int(sum(bool(elected_of(r)) for r in results))
    lo, hi = wilson_interval(successes, len(results))
    return {
        "reps": len(results),
        "success_rate": successes / len(results),
        "success_lo": lo,
        "success_hi": hi,
        "mean_slots": float(slots.mean()),
        "median_slots": float(np.median(slots)),
        "p90_slots": float(np.quantile(slots, 0.9)),
        "max_slots": float(slots.max()),
    }


def log2_or_nan(x: float) -> float:
    """log2(x), or NaN for non-positive x (plot-friendly)."""
    return math.log2(x) if x > 0 else math.nan


def render_tables(tables: Iterable[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(t.render() for t in tables)

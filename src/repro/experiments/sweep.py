"""Standalone supervised sweep CLI: ``python -m repro sweep``.

Runs a grid of table cells (kind x adversary x n) through the block-level
shard supervisor (:mod:`repro.experiments.shard_supervisor`) -- the
sweep-scheduler counterpart of ``run_all``: crash-safe, resumable, and
chaos-testable without involving the experiment registry.  This is the
vehicle for the CI shard-chaos smoke: inject worker kills and hangs with
``--inject-faults``, assert the partial-results exit code and quarantine
table, then ``--resume`` to finish bit-identically.

Options::

    --kind lesk[,lesu,...]     cell kinds (repro.experiments.cells.CELL_KINDS)
    --n 64,128                 station counts
    --adversary random[,...]   jamming strategies
    --eps F --T N              adversary parameters (scalars)
    --reps N                   replications per cell
    --seed N                   root seed (default 1234)
    --path-tag N               leading seed-path component (default 99;
                               keeps sweep seeds disjoint from the
                               numbered experiments)
    --jobs N                   supervised shard workers (default 1: inline)
    --block-size N             repetitions per block (default 64)
    --block-timeout S          wall-clock budget per block
    --retries N --backoff S    bounded retry with seeded backoff
    --no-speculate             disable straggler re-execution
    --keep-going               quarantine poison blocks and keep partial
                               results (exit 2) instead of aborting
    --inject-faults SPEC       block<N>:kill/hang/corrupt-result@E atoms
                               (repro.experiments.faults)
    --out DIR                  write sweep.txt/sweep.csv/failures.txt and
                               block checkpoints under DIR/shards/
    --resume                   reuse --out DIR: restore completed blocks,
                               recompute only what is missing

Exit status: 0 -- every cell complete; 2 -- partial results (quarantined
blocks itemized in failures.txt); 1 -- nothing usable or bad
configuration; 130 -- interrupted (in-flight blocks drained and
checkpointed; rerun with ``--resume``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.experiments.cells import CellSpec, run_cells_sharded_report
from repro.experiments.checkpoint import (
    SHARD_SUBDIR,
    atomic_write_text,
    cli_invocation,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.harness import Column, Table, summarize_times
from repro.experiments.retry import RetryPolicy

__all__ = ["main", "build_specs", "sweep_scenario", "sweep_table"]

SWEEP_MANIFEST = "sweep-manifest.json"

#: Manifest keys that must match for --resume (they determine the seeds).
_STRICT_KEYS = (
    "format",
    "kinds",
    "n",
    "adversaries",
    "eps",
    "T",
    "reps",
    "seed",
    "path_tag",
    "block_size",
)


def _csv_list(raw: str, convert=str) -> list:
    values = [convert(v.strip()) for v in raw.split(",") if v.strip()]
    if not values:
        raise ConfigurationError(f"empty list argument: {raw!r}")
    return values


def sweep_scenario(
    kinds: list[str],
    ns: list[int],
    adversaries: list[str],
    eps: float,
    T: int,
    reps: int,
    seed: int,
    path_tag: int,
    block_size: int = 64,
):
    """Compile sweep CLI arguments into a validated scenario document.

    The sweep CLI and ``repro scenario run`` share one grid compiler
    (:mod:`repro.service.scenario`), so both validate identically and
    expand to identical :class:`CellSpec` lists -- the sweep grid is just
    a scenario whose eps/T axes are scalars.
    """
    from repro.service.scenario import (
        SCENARIO_SCHEMA_VERSION,
        scenario_from_jsonable,
    )

    doc = {
        "scenario": "sweep",
        "schema": SCENARIO_SCHEMA_VERSION,
        "seed": seed,
        "path_tag": path_tag,
        "grid": {
            "kind": list(kinds),
            "n": list(ns),
            "eps": [eps],
            "T": [T],
            "adversary": list(adversaries),
        },
        "reps": reps,
        "sharding": {"block_size": block_size},
    }
    return scenario_from_jsonable(doc, source="<repro sweep>")


def build_specs(
    kinds: list[str],
    ns: list[int],
    adversaries: list[str],
    eps: float,
    T: int,
    reps: int,
    seed: int,
    path_tag: int,
) -> list[CellSpec]:
    """The sweep grid in deterministic order (kind-major, then adversary, n).

    Each spec's seed path is ``(path_tag, i)`` with *i* its grid ordinal,
    so the grid layout -- not the job count or visit order -- fixes every
    cell's seeds.  Compiled through the scenario layer
    (:func:`sweep_scenario`), which validates the grid and preserves this
    expansion order exactly.
    """
    from repro.service.scenario import expand

    return expand(
        sweep_scenario(kinds, ns, adversaries, eps, T, reps, seed, path_tag)
    )


def sweep_table(specs: list[CellSpec], results: list[list]) -> Table:
    """One summary row per cell (partial cells report the reps they have)."""
    table = Table(
        name="SWEEP",
        title="supervised sharded sweep",
        claim=(
            "per-cell seeds derive from (seed, path_tag, cell, "
            "SHARD_BLOCK_TAG, block): identical results for any job count "
            "or failure schedule"
        ),
        columns=[
            Column("kind", "kind"),
            Column("n", "n"),
            Column("adversary", "adversary"),
            Column("reps", "reps"),
            Column("success", "success", ".3f"),
            Column("median_slots", "median slots", ".1f"),
            Column("p90_slots", "p90 slots", ".1f"),
        ],
    )
    for spec, cell_results in zip(specs, results):
        runs = [
            r
            for r in cell_results
            if hasattr(r, "slots") and hasattr(r, "elected")
        ]
        if not runs:
            # Quarantined-empty cell, or a payload kind (e.g. estimation
            # tuples) that summarize_times cannot time.
            table.add_row(
                kind=spec.kind,
                n=spec.n,
                adversary=spec.adversary,
                reps=len(cell_results),
                success=float("nan"),
                median_slots=float("nan"),
                p90_slots=float("nan"),
            )
            continue
        stats = summarize_times(runs)
        table.add_row(
            kind=spec.kind,
            n=spec.n,
            adversary=spec.adversary,
            reps=stats["reps"],
            success=stats["success_rate"],
            median_slots=stats["median_slots"],
            p90_slots=stats["p90_slots"],
        )
    return table


def _manifest(args, kinds, ns, adversaries) -> dict:
    return {
        "format": 1,
        "kinds": kinds,
        "n": ns,
        "adversaries": adversaries,
        "eps": args.eps,
        "T": args.T,
        "reps": args.reps,
        "seed": args.seed,
        "path_tag": args.path_tag,
        "block_size": args.block_size,
    }


def _check_resume_manifest(out: Path, expected: dict) -> None:
    path = out / SWEEP_MANIFEST
    try:
        stored = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(
            f"{out} has no {SWEEP_MANIFEST}; it was not created by a "
            "checkpointed sweep, so --resume cannot verify it matches this "
            "invocation"
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"unreadable {path}: {exc}") from exc
    mismatches = [
        f"  {key}: run dir has {stored.get(key)!r}, this invocation has "
        f"{expected.get(key)!r}"
        for key in _STRICT_KEYS
        if stored.get(key) != expected.get(key)
    ]
    if mismatches:
        raise ConfigurationError(
            "refusing to resume: the sweep directory was created with "
            "different parameters --\n" + "\n".join(mismatches)
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for options."""
    parser = argparse.ArgumentParser(prog="repro sweep", description=__doc__)
    parser.add_argument("--kind", type=str, default="lesk")
    parser.add_argument("--n", type=str, default="64")
    parser.add_argument("--adversary", type=str, default="random")
    parser.add_argument("--eps", type=float, default=0.3)
    parser.add_argument("--T", type=int, default=16)
    parser.add_argument("--reps", type=int, default=64)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--path-tag", type=int, default=99)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--block-size", type=int, default=64)
    parser.add_argument("--block-timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--backoff", type=float, default=0.5)
    parser.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="duplicate straggler blocks onto idle workers (default on)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine poison blocks and keep partial results (exit 2)",
    )
    parser.add_argument("--inject-faults", type=str, default=None, metavar="SPEC")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore completed blocks from --out DIR/shards",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.block_size < 1:
        parser.error("--block-size must be >= 1")
    if args.reps < 1:
        parser.error("--reps must be >= 1")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if args.resume and args.out is None:
        parser.error("--resume requires --out DIR")

    try:
        from repro.service.scenario import expand, scenario_digest

        kinds = _csv_list(args.kind)
        ns = _csv_list(args.n, int)
        adversaries = _csv_list(args.adversary)
        fault_plan = (
            FaultPlan.from_spec(args.inject_faults) if args.inject_faults else None
        )
        # One grid compiler for sweep and `repro scenario run`: the CLI
        # arguments become a scenario document, validated and expanded by
        # the service layer (identical CellSpecs, identical seed paths).
        scenario = sweep_scenario(
            kinds, ns, adversaries, args.eps, args.T, args.reps,
            args.seed, args.path_tag, args.block_size,
        )
        specs = expand(scenario)

        checkpoint_dir = None
        manifest = _manifest(args, kinds, ns, adversaries)
        manifest["scenario_digest"] = scenario_digest(scenario)
        manifest["invocation"] = cli_invocation("sweep", argv)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            if args.resume:
                _check_resume_manifest(args.out, manifest)
            else:
                # Fresh sweep into a reused directory: drop stale blocks.
                shards = args.out / SHARD_SUBDIR
                if shards.is_dir():
                    for stale in shards.glob("block-*.json"):
                        stale.unlink(missing_ok=True)
            atomic_write_text(
                args.out / SWEEP_MANIFEST,
                json.dumps(manifest, indent=2, sort_keys=True),
            )
            checkpoint_dir = args.out / SHARD_SUBDIR

        results, _shards, report = run_cells_sharded_report(
            specs,
            jobs=args.jobs,
            block_size=args.block_size,
            block_timeout=args.block_timeout,
            retry=RetryPolicy(
                max_attempts=args.retries,
                backoff_base=args.backoff,
                seed=args.seed,
            ),
            keep_going=args.keep_going,
            speculate=args.speculate,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        )
    except KeyboardInterrupt as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        detail = getattr(exc, "report", None)
        if detail is not None:
            print(detail.quarantine_table().render(), file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1

    table = sweep_table(specs, results)
    print(table.render())
    print(f"[sweep {report.summary()}]", flush=True)

    if args.out is not None:
        atomic_write_text(args.out / "sweep.txt", table.render() + "\n")
        atomic_write_text(args.out / "sweep.csv", table.to_csv())
        failures_path = args.out / "failures.txt"
        if report.quarantined:
            atomic_write_text(
                failures_path, report.quarantine_table().render() + "\n"
            )
        else:
            failures_path.unlink(missing_ok=True)

    if report.quarantined:
        print(report.quarantine_table().render(), flush=True)
        complete = sum(1 for r in results if r)
        return 2 if complete else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

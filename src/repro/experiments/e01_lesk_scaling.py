"""T1 -- Theorem 2.6: LESK elects in O(log n) for constant eps.

Sweep the network size with eps fixed and several adversaries; report the
median election time and the ratio ``slots / log2(n)``, which Theorem 2.6
predicts to be bounded by a constant (per adversary).  A least-squares fit
of ``slots ~ a * log2 n + b`` is attached as a note; an ``r^2`` near 1 and
a stable slope confirm the linear-in-``log n`` shape.
"""

from __future__ import annotations

import math

from repro.analysis.estimators import fit_log2_scaling
from repro.analysis.walks import predict_election_median
from repro.experiments.cells import lesk_cell
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    megakernel_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "T1"

ADVERSARIES = ("none", "saturating", "single-suppressor", "estimator-attacker")


def run(
    preset: str = "small",
    seed: int = 2015,
    batched: bool | None = None,
    megakernel: bool | None = None,
) -> Table:
    """Run experiment T1 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch
    (:func:`~repro.experiments.harness.batched_enabled`): oblivious-adversary
    cells then run on the batched cross-replication engine, while the
    adaptive adversaries stay on the scalar fast engine.
    ``megakernel=None`` likewise follows
    :func:`~repro.experiments.harness.megakernel_enabled`: the oblivious
    cells (``none``/``saturating``) then run the slot-blocked fused fast
    path, and the adaptive ones delegate back to the batched engine
    inside the megakernel.
    """
    if batched is None:
        batched = batched_enabled(preset)
    if megakernel is None:
        megakernel = megakernel_enabled(preset)
    ns = preset_value(preset, [64, 256, 1024], [16, 64, 256, 1024, 4096, 16384, 65536])
    reps = preset_value(preset, 20, 200)
    eps = 0.5
    T = 32

    table = Table(
        name=EXPERIMENT,
        title="LESK election time vs network size (eps=0.5, T=32)",
        claim="Thm 2.6: O(max{T, log n/(eps^3 log 1/eps)}) = O(log n) for constant eps",
        columns=[
            Column("adversary", "adversary"),
            Column("n", "n"),
            Column("median_slots", "median slots", ".0f"),
            Column("fluid", "fluid model", ".0f"),
            Column("p90_slots", "p90", ".0f"),
            Column("per_log2n", "slots/log2 n", ".2f"),
            Column("success_rate", "success", ".3f"),
        ],
    )
    for adversary in ADVERSARIES:
        xs, ys = [], []
        for ni, n in enumerate(ns):
            results = lesk_cell(
                n,
                eps,
                T,
                adversary,
                reps,
                seed,
                1,
                ADVERSARIES.index(adversary),
                ni,
                batched=batched,
                megakernel=megakernel,
            )
            stats = summarize_times(results)
            table.add_row(
                adversary=adversary,
                n=n,
                median_slots=stats["median_slots"],
                fluid=predict_election_median(n, eps) if adversary == "none" else None,
                p90_slots=stats["p90_slots"],
                per_log2n=stats["median_slots"] / math.log2(n),
                success_rate=stats["success_rate"],
            )
            xs.append(n)
            ys.append(stats["median_slots"])
        fit = fit_log2_scaling(xs, ys)
        table.add_note(
            f"{adversary}: slots ~ {fit.slope:.1f}*log2(n) + {fit.intercept:.1f} "
            f"(r^2={fit.r_squared:.3f})"
        )
    table.add_note(
        "'fluid model' = analysis.walks.predict_election_median: the "
        "deterministic-drift approximation, no simulation involved"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

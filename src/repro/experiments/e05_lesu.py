"""T5 -- Theorem 2.9: LESU (unknown eps and T), both regimes.

Two sub-tables:

* **regime 1** (``T <= log n / (eps^3 log(1/eps))``): sweep ``n`` with a
  small ``T``; predicted time ``O((log log(1/eps)/eps^3) log n)``, i.e.
  again linear in ``log n`` for constant eps.
* **regime 2** (large ``T``): sweep ``T`` with ``n`` fixed; predicted time
  ``O(T log log(T/(eps log n)))`` -- near-linear in ``T``, the
  ``O(T log log T)`` headline improving [3]'s ``O(T log T)``.

LESU never sees eps or T; only the adversary uses them.
"""

from __future__ import annotations

from repro.analysis.bounds import lesu_regime, lesu_time_bound
from repro.experiments.cells import CellSpec, run_cells
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "T5"


def _columns() -> list[Column]:
    return [
        Column("n", "n"),
        Column("T", "T"),
        Column("regime", "regime"),
        Column("median_slots", "median slots", ".0f"),
        Column("p90_slots", "p90", ".0f"),
        Column("bound_shape", "bound shape", ".0f"),
        Column("ratio", "measured/bound", ".3f"),
        Column("success_rate", "success", ".3f"),
    ]


def _sweep(
    table: Table,
    grid,
    reps: int,
    eps: float,
    adversary: str,
    seed: int,
    tag: int,
    batched: bool,
):
    specs = [
        CellSpec(
            kind="lesu", n=n, eps=eps, T=T, adversary=adversary,
            reps=reps, root_seed=seed, path=(5, tag, gi), batched=batched,
        )
        for gi, (n, T) in enumerate(grid)
    ]
    for spec, results in zip(specs, run_cells(specs)):
        n, T = spec.n, spec.T
        stats = summarize_times(results)
        bound = lesu_time_bound(n, eps, T)
        table.add_row(
            n=n,
            T=T,
            regime=lesu_regime(n, eps, T),
            median_slots=stats["median_slots"],
            p90_slots=stats["p90_slots"],
            bound_shape=bound,
            ratio=stats["median_slots"] / bound,
            success_rate=stats["success_rate"],
        )


def run(preset: str = "small", seed: int = 2019, batched: bool | None = None) -> Table:
    """Run experiment T5 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; LESU cells
    run through :class:`~repro.protocols.vector.VectorLESUPolicy` when on.
    """
    if batched is None:
        batched = batched_enabled(preset)
    reps = preset_value(preset, 15, 150)
    eps = 0.5
    adversary = "saturating"
    ns = preset_value(preset, [64, 1024], [64, 256, 1024, 4096, 16384])
    Ts = preset_value(preset, [512, 4096], [256, 1024, 4096, 16384, 65536])
    n_fixed = preset_value(preset, 256, 1024)

    table = Table(
        name=EXPERIMENT,
        title=f"LESU (unknown eps, T) election time, {adversary} jammer (true eps={eps})",
        claim="Thm 2.9: O((loglog(1/eps)/eps^3) log n) for small T; "
        "O(T loglog(T/(eps log n))) for large T",
        columns=_columns(),
    )
    # Regime 1: T small, sweep n.
    _sweep(table, [(n, 4) for n in ns], reps, eps, adversary, seed, 0, batched)
    # Regime 2: n fixed, sweep large T.
    _sweep(table, [(n_fixed, T) for T in Ts], reps, eps, adversary, seed, 1, batched)
    table.add_note(
        "stations receive no parameters at all; 'bound shape' is the Thm 2.9 "
        "expression without its big-O constant"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

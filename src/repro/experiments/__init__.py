"""Experiment suite regenerating every quantitative claim of the paper.

One module per experiment (see DESIGN.md section 2 for the index):

====  ==========================================================
id    claim
====  ==========================================================
T1    Theorem 2.6 -- LESK O(log n) scaling (e01)
T2    Theorem 2.6 -- LESK eps-dependence (e02)
T3    Lemma 2.7  -- lower bound / front jammer (e03)
T4    Lemma 2.8  -- Estimation bracket and runtime (e04)
T5    Theorem 2.9 -- LESU two regimes (e05)
T6    Lemma 3.1 / Thm 3.2-3.3 -- Notification overhead (e06)
T7    Section 1.3 -- LESK vs ARS [3] (e07)
T8    Section 1.1 -- adversary-strategy ablation (e08)
T9    Section 1.3 -- energy (e09)
T10   Lemmas 2.1-2.5 -- numeric bound + proof-chain checks (e10)
F1    Section 2.2 -- estimator trajectories (e11)
F2    Theorem 2.6 -- success-probability curve (e12)
A1    ablation: the collision weight a = 8/eps (e13)
A2    ablation: LESU's constant c (e14)
A3    the Section 4 no-CD open problem, quantified (e15)
A4    ARS [3] throughput sanity check (e16)
A5    Section 4 building blocks end to end (e17)
A6    energy-vs-robustness frontier (e18)
A7    the price of universality (e19)
A8    evolution-searched adversaries (e20)
A9    ablation: why Notification's intervals double (e21)
====  ==========================================================

Every experiment module exposes ``run(preset="small"|"full", seed=...)``
returning one or more :class:`repro.experiments.harness.Table` objects;
``python -m repro.experiments.run_all`` regenerates everything.  The CLI
runs each experiment as a supervised unit of work -- process isolation,
timeout, retry with backoff, atomic checkpointing and ``--resume`` -- via
:mod:`repro.experiments.runner` (see docs/runner.md), chaos-tested with
the deterministic fault injection in :mod:`repro.experiments.faults`.
"""

from repro.experiments.harness import Table, replicate, summarize_times

__all__ = ["Table", "replicate", "summarize_times"]

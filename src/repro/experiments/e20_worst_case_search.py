"""A8 -- searched adversaries: evolution cannot beat the theorem either.

T8 races LESK against hand-designed strategies; this experiment removes
the designer.  A (1+1) evolutionary search over budget-legal jam scripts
(:mod:`repro.adversary.search`) tries to *learn* a pattern that delays
LESK, starting from random patterns and the saturating baseline.  The
claim reproduced: the best pattern the search finds still leaves LESK
within its Theorem 2.6 explicit slot bound -- the strongest adversarial
evidence a simulation can offer for a universally-quantified theorem.
"""

from __future__ import annotations

from repro.adversary.search import find_worst_pattern
from repro.analysis.bounds import lesk_exact_slot_bound, lesk_time_bound
from repro.experiments.cells import CellSpec, run_cells
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    summarize_times,
)
from repro.protocols.lesk import LESKPolicy

EXPERIMENT = "A8"


def run(preset: str = "small", seed: int = 2034, batched: bool | None = None) -> Table:
    """Run experiment A8 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch (jam-free
    baseline only; the evolutionary search evaluates candidate scripts
    through the scalar engine).
    """
    if batched is None:
        batched = batched_enabled(preset)
    grid = preset_value(preset, [(256, 0.5, 16)], [(256, 0.5, 16), (1024, 0.4, 32)])
    generations = preset_value(preset, 12, 120)
    eval_seeds = preset_value(preset, 5, 15)
    reps = preset_value(preset, 20, 100)

    table = Table(
        name=EXPERIMENT,
        title="Evolution-searched jam patterns vs LESK",
        claim="Thm 2.6 is adversary-universal: even searched (not designed) "
        "attacks stay within the explicit bound",
        columns=[
            Column("n", "n"),
            Column("eps", "eps", ".2f"),
            Column("T", "T"),
            Column("baseline", "none median", ".0f"),
            Column("searched", "worst-found median", ".0f"),
            Column("slowdown", "slowdown x", ".2f"),
            Column("bound", "Thm 2.6 bound", ".0f"),
            Column("within", "within bound"),
            Column("evaluated", "patterns tried"),
        ],
    )
    baseline_specs = [
        CellSpec(
            kind="lesk", n=n, eps=eps, T=T, adversary="none",
            reps=reps, root_seed=seed, path=(20, gi), batched=batched,
        )
        for gi, (n, eps, T) in enumerate(grid)
    ]
    baseline_cells = run_cells(baseline_specs)
    for gi, (n, eps, T) in enumerate(grid):
        baseline = summarize_times(baseline_cells[gi])["median_slots"]
        result = find_worst_pattern(
            lambda: LESKPolicy(eps),
            n=n,
            T=T,
            eps=eps,
            script_length=4 * T,
            generations=generations,
            eval_seeds=eval_seeds,
            cap=int(lesk_exact_slot_bound(n, eps)) + 1,
            seed=seed + gi,
        )
        bound = lesk_exact_slot_bound(n, eps)
        table.add_row(
            n=n,
            eps=eps,
            T=T,
            baseline=baseline,
            searched=result.score,
            slowdown=result.score / max(1.0, baseline),
            bound=bound,
            within=bool(result.score <= bound),
            evaluated=result.evaluated,
        )
    table.add_note(
        "search: (1+1)-ES over cycled intent scripts of length 4T, clamped "
        "to the (T,1-eps) budget at run time; 'slowdown' is relative to the "
        f"jam-free baseline (shape bound for reference: "
        f"{lesk_time_bound(grid[0][0], grid[0][1], grid[0][2]):.0f} slots)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""A2 -- ablation: calibrating LESU's constant ``c``.

Theorem 2.9's proof posits a constant ``c`` such that
``LESK(eps_hat, c * max{T, log n/(eps_hat^3 log 1/eps_hat)})`` succeeds
w.h.p.; LESU then uses ``t0 = c * 2^(1 + Estimation(2))``.  The paper never
names a value.  This ablation measures, across a grid of network sizes and
true adversary strengths, the success rate and median time of LESU as a
function of ``c`` -- justifying the library default
(:data:`repro.protocols.lesu.DEFAULT_C`).

Small ``c`` under-provisions each sub-run: the schedule must reach a later
(exponentially longer) diagonal before some sub-run is long enough, so
success still arrives (the schedule is self-correcting!) but slower.
Large ``c`` inflates every sub-run proportionally.  The measured curve is
flat-bottomed around c in [1, 4].
"""

from __future__ import annotations

import numpy as np

from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times

EXPERIMENT = "A2"


def run(preset: str = "small", seed: int = 2028) -> Table:
    """Run experiment A2 at *preset* scale and return its table."""
    c_values = preset_value(preset, [0.5, 2.0, 8.0], [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
    reps = preset_value(preset, 15, 100)
    grid = preset_value(
        preset,
        [(256, 0.5, 16)],
        [(256, 0.5, 16), (2048, 0.5, 16), (512, 0.25, 64)],
    )
    adversary = "single-suppressor"

    table = Table(
        name=EXPERIMENT,
        title="Ablation: LESU constant c (t0 = c * 2^(1+Estimation(2)))",
        claim="Thm 2.9: 'let c be such a constant that ...' -- the default "
        "c = 2 sits on the flat bottom of the time curve",
        columns=[
            Column("n", "n"),
            Column("eps", "eps", ".2f"),
            Column("T", "T"),
            Column("c", "c", ".2f"),
            Column("median_slots", "median slots", ".0f"),
            Column("success_rate", "success", ".3f"),
        ],
    )
    for gi, (n, eps, T) in enumerate(grid):
        for ci, c in enumerate(c_values):
            results = replicate(
                lambda s: elect_leader(
                    n=n, protocol="lesu", eps=eps, T=T, adversary=adversary,
                    seed=s, lesu_c=c,
                ),
                reps,
                seed,
                14,
                gi,
                ci,
            )
            stats = summarize_times(results)
            table.add_row(
                n=n,
                eps=eps,
                T=T,
                c=c,
                median_slots=stats["median_slots"],
                success_rate=stats["success_rate"],
            )
    medians = [r["median_slots"] for r in table.rows]
    table.add_note(
        "the schedule self-corrects for small c (success stays ~1.0, time "
        f"grows); spread across c: {min(medians):.0f}-{max(medians):.0f} slots"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

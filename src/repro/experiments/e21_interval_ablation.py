"""A9 -- ablation: why Notification's intervals must double.

Function 4 runs over intervals ``C^i_j`` of size ``2^i`` so that, for any
*unknown* ``T``, some interval eventually exceeds ``T`` -- at which point
the adversary cannot jam all of it and the leader's ``C_3`` announcement
gets through.  This ablation swaps in a fixed-size partition (every
interval ``L`` slots) and races both against a "C3 killer": a strategy
that requests a jam in every ``C_3`` slot of the partition in use.  With
``L``-sized intervals at density 1/3, the budget *grants* all those jams
whenever ``1/3 <= 1 - eps`` and ``L <= (1-eps) T`` -- the fixed variant can
never notify its leader and fails 100% of runs.  The doubling variant is
clamped as soon as ``2^i > (1-eps) T`` and succeeds.

(The doubling also serves a second, quieter purpose: it grants ``A``
ever-longer *uninterrupted* executions, needed since ``t(n)`` is unknown
too.  ``L`` is chosen large enough here to isolate the jamming effect.)
"""

from __future__ import annotations

from repro.adversary.base import Adversary, as_strategy
from repro.adversary.suite import make_adversary
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times
from repro.protocols.intervals import fixed_partition, interval_of_slot
from repro.protocols.lesk import LESKPolicy
from repro.protocols.notification import NotificationStation
from repro.sim.engine import simulate_stations
from repro.types import CDMode

EXPERIMENT = "A9"


def _c3_killer(partition) -> object:
    """Strategy requesting a jam in every C_3 slot of *partition*."""

    def wants(view, rng):
        iv = partition(view.slot)
        return iv is not None and iv.j == 3

    return as_strategy(wants, "c3-killer")


def _run(n, eps, T, partition, jam: bool, seed: int, cap: int):
    stations = [
        NotificationStation(lambda: LESKPolicy(eps), partition=partition)
        for _ in range(n)
    ]
    if jam:
        adversary = Adversary(_c3_killer(partition), T=T, eps=eps, seed=seed)
    else:
        adversary = make_adversary("none", T=T, eps=eps)
    return simulate_stations(
        stations,
        adversary=adversary,
        cd_mode=CDMode.WEAK,
        max_slots=cap,
        seed=seed,
    )


def run(preset: str = "small", seed: int = 2035) -> Table:
    """Run experiment A9 at *preset* scale and return its table."""
    n = 10
    eps = 0.5
    T = 512
    L = 256  # fixed interval size: comfortably above t(n), below (1-eps)T
    reps = preset_value(preset, 8, 40)
    cap = preset_value(preset, 12_000, 40_000)

    table = Table(
        name=EXPERIMENT,
        title=f"Ablation: doubling vs fixed Notification intervals "
        f"(n={n}, eps={eps}, T={T}, fixed L={L})",
        claim="Sec 3: 'for i >= log2 T, the adversary cannot jam the entire "
        "interval' -- remove the doubling and a C3-targeting jammer denies "
        "election forever",
        columns=[
            Column("partition", "partition"),
            Column("environment", "environment"),
            Column("success_rate", "success", ".3f"),
            Column("median_slots", "median slots", ".0f"),
            Column("jams_granted", "jams granted", ".0f"),
        ],
    )
    partitions = {"doubling (paper)": interval_of_slot, f"fixed L={L}": fixed_partition(L)}
    for pi, (pname, partition) in enumerate(partitions.items()):
        for ji, jam in enumerate([False, True]):
            results = replicate(
                lambda s: _run(n, eps, T, partition, jam, s, cap),
                reps,
                seed,
                21,
                pi,
                ji,
            )
            stats = summarize_times(results)
            table.add_row(
                partition=pname,
                environment="C3-killer jammer" if jam else "quiet",
                success_rate=stats["success_rate"],
                median_slots=stats["median_slots"],
                jams_granted=sum(r.jams for r in results) / len(results),
            )
    table.add_note(
        f"the C3 killer requests a jam in every C_3 slot of the partition in "
        f"use; with fixed L={L} <= (1-eps)T = {int((1 - eps) * T)} every request is "
        "granted (the leader can never announce), while the doubling partition "
        "outgrows the budget and recovers"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

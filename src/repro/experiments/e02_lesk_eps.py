"""T2 -- Theorem 2.6: LESK's dependence on the adversary strength eps.

Fix ``n`` and sweep ``eps`` downward (stronger adversary) against the
budget-saturating jammer.  Theorem 2.6 predicts time
``~ log n / (eps^3 log2(8/eps))``; the table reports the measured median
and its ratio to that shape, which should stay within a constant band
(the bound is an upper bound, so small-eps rows may sit well below 1
after normalization to the weakest-adversary row).
"""

from __future__ import annotations

from repro.analysis.bounds import lesk_time_bound
from repro.experiments.cells import lesk_cell
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    megakernel_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "T2"


def run(
    preset: str = "small",
    seed: int = 2016,
    batched: bool | None = None,
    megakernel: bool | None = None,
) -> Table:
    """Run experiment T2 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; the saturating
    jammer is oblivious, so every cell runs on the batched engine when on
    -- and on the slot-blocked megakernel fast path when ``megakernel``
    (default: the preset switch) is also on.
    """
    if batched is None:
        batched = batched_enabled(preset)
    if megakernel is None:
        megakernel = megakernel_enabled(preset)
    eps_values = preset_value(
        preset, [0.8, 0.5, 0.3], [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15]
    )
    reps = preset_value(preset, 20, 200)
    n = 1024
    T = 32
    adversary = "saturating"

    table = Table(
        name=EXPERIMENT,
        title=f"LESK election time vs eps (n={n}, T={T}, {adversary} jammer)",
        claim="Thm 2.6: time grows as log n / (eps^3 log(1/eps)) as eps -> 0",
        columns=[
            Column("eps", "eps", ".2f"),
            Column("median_slots", "median slots", ".0f"),
            Column("p90_slots", "p90", ".0f"),
            Column("bound_shape", "bound shape", ".0f"),
            Column("ratio", "measured/bound", ".3f"),
            Column("jam_fraction", "jam frac", ".2f"),
            Column("success_rate", "success", ".3f"),
        ],
    )
    for ei, eps in enumerate(eps_values):
        results = lesk_cell(
            n, eps, T, adversary, reps, seed, 2, ei,
            batched=batched, megakernel=megakernel,
        )
        stats = summarize_times(results)
        bound = lesk_time_bound(n, eps, T)
        jam_fraction = sum(r.jams for r in results) / max(1, sum(r.slots for r in results))
        table.add_row(
            eps=eps,
            median_slots=stats["median_slots"],
            p90_slots=stats["p90_slots"],
            bound_shape=bound,
            ratio=stats["median_slots"] / bound,
            jam_fraction=jam_fraction,
            success_rate=stats["success_rate"],
        )
    table.add_note(
        "'bound shape' is max{T, log2 n/(eps^3 log2(8/eps))} without the big-O constant"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""A6 -- the energy-vs-robustness frontier.

Section 1.3 leaves energy analysis open; reference [13] is the authors'
energy-efficient election line.  This experiment measures the frontier on
our substrate with three protocols and two environments:

* **LESK** -- jam-proof, but every station listens every slot: energy per
  station ~ slots ~ ``Theta(log n)``;
* **ARS [3]** -- also always-listening; energy ~ its (longer) runtime;
* **geometric-level tournament** (sleep-capable, [13]-style) -- energy per
  station ~ rounds ~ ``O(log log n)``, an order of magnitude below both,
  *on a quiet channel*;

and under the adaptive single-suppressor the tournament's public
confirmation schedule becomes a jamming target: success collapses while
LESK is unbothered.  Energy efficiency and jamming robustness pull in
opposite directions -- the measured version of why the paper's protocols
never sleep.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, as_strategy
from repro.adversary.suite import make_adversary
from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times
from repro.protocols.baselines.geometric_energy import confirmation_slots
from repro.protocols.baselines.geometric_fast import simulate_geometric_fast

EXPERIMENT = "A6"


def _run_geometric(n: int, eps: float, T: int, adversary: str, seed: int, cap: int):
    if adversary == "confirmation-jammer":
        confirms = confirmation_slots(2, cap)
        strategy = as_strategy(
            lambda view, rng: view.slot in confirms, "confirmation-jammer"
        )
        adv = Adversary(strategy, T=T, eps=eps, seed=seed)
    else:
        adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_geometric_fast(n, adv, max_slots=cap, seed=seed)


def run(preset: str = "small", seed: int = 2032) -> Table:
    """Run experiment A6 at *preset* scale and return its table."""
    ns = preset_value(preset, [64, 512], [64, 256, 1024, 4096])
    reps = preset_value(preset, 8, 40)
    eps, T = 0.4, 16
    cap = preset_value(preset, 30_000, 100_000)

    table = Table(
        name=EXPERIMENT,
        title="Energy-vs-robustness frontier (total energy/station incl. "
        f"listening; eps={eps}, T={T})",
        claim="Sleep-based energy efficiency ([13]-style) is antagonistic to "
        "jamming robustness; the paper's always-listening protocols pay "
        "energy for immunity",
        columns=[
            Column("n", "n"),
            Column("lesk_energy", "LESK e/stn", ".1f"),
            Column("geo_energy", "tournament e/stn", ".1f"),
            Column("saving", "saving x", ".1f"),
            Column("lesk_jam_success", "LESK success (jam)", ".3f"),
            Column("geo_jam_success", "tournament success (jam)", ".3f"),
            Column("geo_confirm_success", "tournament success (confirm-jam)", ".3f"),
        ],
    )
    for ni, n in enumerate(ns):
        lesk_quiet = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesk", eps=eps, T=T, adversary="none",
                seed=s, engine="faithful",
            ),
            reps,
            seed,
            18,
            ni,
            0,
        )
        geo_quiet = replicate(
            lambda s: _run_geometric(n, eps, T, "none", s, cap), reps, seed, 18, ni, 1
        )
        lesk_jam = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesk", eps=eps, T=T, adversary="single-suppressor",
                seed=s,
            ),
            reps,
            seed,
            18,
            ni,
            2,
        )
        geo_jam = replicate(
            lambda s: _run_geometric(n, eps, T, "single-suppressor", s, cap),
            reps,
            seed,
            18,
            ni,
            3,
        )
        geo_confirm = replicate(
            lambda s: _run_geometric(n, eps, T, "confirmation-jammer", s, cap),
            reps,
            seed,
            18,
            ni,
            4,
        )
        lesk_e = float(
            np.mean(
                [
                    r.energy.transmissions_per_station(n)
                    + r.energy.listening_per_station(n)
                    for r in lesk_quiet
                ]
            )
        )
        geo_e = float(
            np.mean(
                [
                    r.energy.transmissions_per_station(n)
                    + r.energy.listening_per_station(n)
                    for r in geo_quiet
                ]
            )
        )
        table.add_row(
            n=n,
            lesk_energy=lesk_e,
            geo_energy=geo_e,
            saving=lesk_e / max(geo_e, 1e-9),
            lesk_jam_success=summarize_times(lesk_jam)["success_rate"],
            geo_jam_success=summarize_times(geo_jam)["success_rate"],
            geo_confirm_success=summarize_times(geo_confirm)["success_rate"],
        )
    table.add_note(
        f"quiet-channel energy; jammed columns report success within {cap} "
        "slots.  'jam' = single-suppressor (generic adaptive); 'confirm-jam' "
        "= a strategy that precomputes the tournament's public confirmation "
        "slots and jams exactly those -- sparse enough that the budget grants "
        "every one, denying election outright"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

"""T3 -- Lemma 2.7: the Omega(max{T, log(n)/eps}) lower bound.

The Lemma 2.7 adversary jams the first ``floor((1-eps)T)`` slots of every
``T``-slot block (:class:`~repro.adversary.oblivious.PeriodicFrontJammer`).
Sweeping ``T`` with ``n`` and ``eps`` fixed shows the two regimes meet at
the crossover ``T ~ log2(n)/eps``: below it the election time is flat in
``T`` (the ``log n/eps`` term dominates); above it the time tracks ``T``
linearly.  The table reports measured time, the lower-bound shape, and
their ratio (which must stay >= some constant: no algorithm can beat the
bound, and LESK matches it up to constants -- optimality for constant eps).
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound
from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times

EXPERIMENT = "T3"


def run(preset: str = "small", seed: int = 2017) -> Table:
    """Run experiment T3 at *preset* scale and return its table."""
    T_values = preset_value(preset, [4, 64, 512], [2, 8, 32, 64, 128, 256, 512, 2048, 8192])
    reps = preset_value(preset, 20, 200)
    n = 1024
    eps = 0.5

    table = Table(
        name=EXPERIMENT,
        title=f"Election time under the Lemma 2.7 front jammer (n={n}, eps={eps})",
        claim="Lemma 2.7: any w.h.p. election needs Omega(max{T, log(n)/eps}) slots",
        columns=[
            Column("T", "T"),
            Column("median_slots", "median slots", ".0f"),
            Column("hard_floor", "hard floor", ".0f"),
            Column("floor_ok", "above floor"),
            Column("bound", "max{T, log2n/eps}", ".0f"),
            Column("ratio", "measured/bound", ".2f"),
            Column("regime", "dominant term"),
            Column("success_rate", "success", ".3f"),
        ],
    )
    crossover = lower_bound(n, eps, 1)
    for ti, T in enumerate(T_values):
        results = replicate(
            lambda s: elect_leader(
                n=n, protocol="lesk", eps=eps, T=T, adversary="periodic-front", seed=s
            ),
            reps,
            seed,
            3,
            ti,
        )
        stats = summarize_times(results)
        bound = lower_bound(n, eps, T)
        # Under this jammer every slot before floor((1-eps)T) is jammed, so
        # no Single -- hence no election -- can occur earlier.  This is the
        # constant-free part of the lemma; the asymptotic shape hides a
        # (1-eps) factor in front of T.
        hard_floor = int((1.0 - eps) * T)
        min_slots = min(r.slots for r in results)
        table.add_row(
            T=T,
            median_slots=stats["median_slots"],
            hard_floor=hard_floor,
            floor_ok=bool(min_slots > hard_floor),
            bound=bound,
            ratio=stats["median_slots"] / bound,
            regime="T" if T > crossover else "log n / eps",
            success_rate=stats["success_rate"],
        )
    table.add_note(
        f"crossover predicted at T ~ log2(n)/eps = {crossover:.0f}; above it the "
        "median must grow linearly in T"
    )
    table.add_note(
        "'hard floor' = floor((1-eps)T): the jammer blocks every earlier slot, so "
        "every run must exceed it ('above floor' asserts the minimum run did)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

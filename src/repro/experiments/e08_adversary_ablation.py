"""T8 -- Section 1.1: robustness against *every* adaptive strategy.

Theorem 2.6 quantifies over all (T, 1-eps)-bounded adversaries.  We cannot
enumerate them, but we can race LESK against the natural worst-case
candidates -- including strategies that recompute LESK's own state and
spend budget exactly where it hurts.  The claim reproduced: the measured
time stays within a constant multiple of the Theorem 2.6 shape for *every*
strategy in the suite.

As a contrast, the same ablation is run for the non-robust uniform sweep
baseline (Nakano-Olariu style): an adaptive jammer inflates it by orders
of magnitude (or times it out entirely), demonstrating that robustness is
a property of LESK's update rule, not of the model.
"""

from __future__ import annotations

from repro import telemetry
from repro.adversary.suite import strategy_names
from repro.analysis.bounds import lesk_time_bound
from repro.experiments.cells import lesk_cell, sweep_cell
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "T8"


def run(preset: str = "small", seed: int = 2022, batched: bool | None = None) -> Table:
    """Run experiment T8 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; with the
    adaptive family vectorized, *every* suite strategy runs through the
    batched engine, and the jam-efficiency counters it publishes are the
    same families the scalar engines feed.
    """
    if batched is None:
        batched = batched_enabled(preset)
    n = preset_value(preset, 1024, 4096)
    reps = preset_value(preset, 15, 150)
    eps = 0.4
    T = 32
    sweep_budget = preset_value(preset, 20_000, 100_000)

    table = Table(
        name=EXPERIMENT,
        title=f"Adversary-strategy ablation (n={n}, eps={eps}, T={T})",
        claim="Thm 2.6 holds against ANY (T,1-eps)-bounded adaptive adversary; "
        "non-robust baselines do not",
        columns=[
            Column("strategy", "strategy"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("lesk_vs_bound", "LESK/bound", ".2f"),
            Column("lesk_success", "LESK success", ".3f"),
            Column("jam_eff", "jam eff", ".3f"),
            Column("sweep_median", "sweep median", ".0f"),
            Column("sweep_success", "sweep success", ".3f"),
        ],
    )
    bound = lesk_time_bound(n, eps, T)
    for si, strategy in enumerate(strategy_names()):
        # Scoped collection: the engines' per-strategy jam counters land in
        # a private shard (merged outward into any live run-level sink), so
        # jam efficiency is computable without trace recording and without
        # mixing in the sweep baseline's jams.
        with telemetry.collecting() as shard:
            lesk = lesk_cell(
                n, eps, T, strategy, reps, seed, 8, si, 0, batched=batched
            )
        jams = shard.metrics.counter_total("jam_slots_total")
        occupied = shard.metrics.counter_total("jam_occupied_total")
        jam_eff = occupied / jams if jams else None
        sweep = sweep_cell(
            n, eps, T, strategy, reps, seed, 8, si, 1,
            batched=batched, max_slots=sweep_budget,
        )
        ls = summarize_times(lesk)
        sw = summarize_times(sweep)
        table.add_row(
            strategy=strategy,
            lesk_median=ls["median_slots"],
            lesk_vs_bound=ls["median_slots"] / bound,
            lesk_success=ls["success_rate"],
            jam_eff=jam_eff,
            sweep_median=sw["median_slots"],
            sweep_success=sw["success_rate"],
        )
    table.add_note(
        f"bound shape = {bound:.0f} slots; sweep baseline capped at "
        f"{sweep_budget} slots (timeouts count at the cap)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

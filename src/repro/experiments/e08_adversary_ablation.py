"""T8 -- Section 1.1: robustness against *every* adaptive strategy.

Theorem 2.6 quantifies over all (T, 1-eps)-bounded adversaries.  We cannot
enumerate them, but we can race LESK against the natural worst-case
candidates -- including strategies that recompute LESK's own state and
spend budget exactly where it hurts.  The claim reproduced: the measured
time stays within a constant multiple of the Theorem 2.6 shape for *every*
strategy in the suite.

As a contrast, the same ablation is run for the non-robust uniform sweep
baseline (Nakano-Olariu style): an adaptive jammer inflates it by orders
of magnitude (or times it out entirely), demonstrating that robustness is
a property of LESK's update rule, not of the model.
"""

from __future__ import annotations

from repro import telemetry
from repro.adversary.suite import make_adversary, strategy_names
from repro.analysis.bounds import lesk_time_bound
from repro.core.election import elect_leader
from repro.experiments.harness import Column, Table, preset_value, replicate, summarize_times
from repro.protocols.baselines.nakano_olariu import UniformSweepPolicy
from repro.sim.fast import simulate_uniform_fast

EXPERIMENT = "T8"


def _run_sweep_baseline(n: int, eps: float, T: int, adversary: str, seed: int, max_slots: int):
    adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_uniform_fast(
        UniformSweepPolicy(), n=n, adversary=adv, max_slots=max_slots, seed=seed
    )


def run(preset: str = "small", seed: int = 2022) -> Table:
    """Run experiment T8 at *preset* scale and return its table."""
    n = preset_value(preset, 1024, 4096)
    reps = preset_value(preset, 15, 150)
    eps = 0.4
    T = 32
    sweep_budget = preset_value(preset, 20_000, 100_000)

    table = Table(
        name=EXPERIMENT,
        title=f"Adversary-strategy ablation (n={n}, eps={eps}, T={T})",
        claim="Thm 2.6 holds against ANY (T,1-eps)-bounded adaptive adversary; "
        "non-robust baselines do not",
        columns=[
            Column("strategy", "strategy"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("lesk_vs_bound", "LESK/bound", ".2f"),
            Column("lesk_success", "LESK success", ".3f"),
            Column("jam_eff", "jam eff", ".3f"),
            Column("sweep_median", "sweep median", ".0f"),
            Column("sweep_success", "sweep success", ".3f"),
        ],
    )
    bound = lesk_time_bound(n, eps, T)
    for si, strategy in enumerate(strategy_names()):
        # Scoped collection: the engines' per-strategy jam counters land in
        # a private shard (merged outward into any live run-level sink), so
        # jam efficiency is computable without trace recording and without
        # mixing in the sweep baseline's jams.
        with telemetry.collecting() as shard:
            lesk = replicate(
                lambda s: elect_leader(
                    n=n, protocol="lesk", eps=eps, T=T, adversary=strategy, seed=s
                ),
                reps,
                seed,
                8,
                si,
                0,
            )
        jams = shard.metrics.counter_total("jam_slots_total")
        occupied = shard.metrics.counter_total("jam_occupied_total")
        jam_eff = occupied / jams if jams else None
        sweep = replicate(
            lambda s: _run_sweep_baseline(n, eps, T, strategy, s, sweep_budget),
            reps,
            seed,
            8,
            si,
            1,
        )
        ls = summarize_times(lesk)
        sw = summarize_times(sweep)
        table.add_row(
            strategy=strategy,
            lesk_median=ls["median_slots"],
            lesk_vs_bound=ls["median_slots"] / bound,
            lesk_success=ls["success_rate"],
            jam_eff=jam_eff,
            sweep_median=sw["median_slots"],
            sweep_success=sw["success_rate"],
        )
    table.add_note(
        f"bound shape = {bound:.0f} slots; sweep baseline capped at "
        f"{sweep_budget} slots (timeouts count at the cap)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

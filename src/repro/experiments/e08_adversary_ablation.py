"""T8 -- Section 1.1: robustness against *every* adaptive strategy.

Theorem 2.6 quantifies over all (T, 1-eps)-bounded adversaries.  We cannot
enumerate them, but we can race LESK against the natural worst-case
candidates -- including strategies that recompute LESK's own state and
spend budget exactly where it hurts.  The claim reproduced: the measured
time stays within a constant multiple of the Theorem 2.6 shape for *every*
strategy in the suite.

As a contrast, the same ablation is run for the non-robust uniform sweep
baseline (Nakano-Olariu style): an adaptive jammer inflates it by orders
of magnitude (or times it out entirely), demonstrating that robustness is
a property of LESK's update rule, not of the model.
"""

from __future__ import annotations

from repro import telemetry
from repro.adversary.suite import strategy_names
from repro.analysis.bounds import lesk_time_bound
from repro.experiments.cells import (
    CellSpec,
    run_cell_direct,
    run_cells,
    run_cells_sharded_report,
)
from repro.experiments.harness import (
    Column,
    Table,
    batched_enabled,
    preset_value,
    summarize_times,
)

EXPERIMENT = "T8"


def _lesk_with_jam_shards(specs):
    """Run the LESK cells, returning per-spec results and telemetry shards.

    Unsharded: each cell runs inside a scoped collection (merged outward
    into any live run-level sink), so jam efficiency is computable without
    trace recording and without mixing in the sweep baseline's jams.
    Under an ambient shard context (``run_all --shard-jobs``) the
    supervised path returns the same per-spec shards, merged across that
    spec's rep-blocks; a block restored from checkpoint contributes no
    counters (its shard is None and jam eff renders as '-').
    """
    from repro.experiments.shard_supervisor import get_shard_context

    context = get_shard_context()
    if context.jobs is None:
        results, shards = [], []
        for spec in specs:
            with telemetry.collecting() as shard:
                results.append(run_cell_direct(spec))
            shards.append(shard)
        return results, shards
    results, shards, _report = run_cells_sharded_report(
        specs,
        jobs=context.jobs,
        block_size=context.block_size or 64,
        threadsafe=context.threadsafe,
        block_timeout=context.block_timeout,
        checkpoint_dir=context.checkpoint_dir,
        fault_plan=context.fault_plan,
    )
    return results, shards


def run(preset: str = "small", seed: int = 2022, batched: bool | None = None) -> Table:
    """Run experiment T8 at *preset* scale and return its table.

    ``batched=None`` follows the preset-level engine switch; with the
    adaptive family vectorized, *every* suite strategy runs through the
    batched engine, and the jam-efficiency counters it publishes are the
    same families the scalar engines feed.
    """
    if batched is None:
        batched = batched_enabled(preset)
    n = preset_value(preset, 1024, 4096)
    reps = preset_value(preset, 15, 150)
    eps = 0.4
    T = 32
    sweep_budget = preset_value(preset, 20_000, 100_000)

    table = Table(
        name=EXPERIMENT,
        title=f"Adversary-strategy ablation (n={n}, eps={eps}, T={T})",
        claim="Thm 2.6 holds against ANY (T,1-eps)-bounded adaptive adversary; "
        "non-robust baselines do not",
        columns=[
            Column("strategy", "strategy"),
            Column("lesk_median", "LESK median", ".0f"),
            Column("lesk_vs_bound", "LESK/bound", ".2f"),
            Column("lesk_success", "LESK success", ".3f"),
            Column("jam_eff", "jam eff", ".3f"),
            Column("sweep_median", "sweep median", ".0f"),
            Column("sweep_success", "sweep success", ".3f"),
        ],
    )
    bound = lesk_time_bound(n, eps, T)
    strategies = strategy_names()
    lesk_specs = [
        CellSpec(
            kind="lesk", n=n, eps=eps, T=T, adversary=strategy,
            reps=reps, root_seed=seed, path=(8, si, 0), batched=batched,
        )
        for si, strategy in enumerate(strategies)
    ]
    sweep_specs = [
        CellSpec(
            kind="sweep", n=n, eps=eps, T=T, adversary=strategy,
            reps=reps, root_seed=seed, path=(8, si, 1), batched=batched,
            max_slots=sweep_budget,
        )
        for si, strategy in enumerate(strategies)
    ]
    lesk_cells, jam_shards = _lesk_with_jam_shards(lesk_specs)
    sweep_cells = run_cells(sweep_specs)
    for si, strategy in enumerate(strategies):
        lesk, shard = lesk_cells[si], jam_shards[si]
        jams = shard.metrics.counter_total("jam_slots_total") if shard else 0
        occupied = (
            shard.metrics.counter_total("jam_occupied_total") if shard else 0
        )
        jam_eff = occupied / jams if jams else None
        sweep = sweep_cells[si]
        ls = summarize_times(lesk)
        sw = summarize_times(sweep)
        table.add_row(
            strategy=strategy,
            lesk_median=ls["median_slots"],
            lesk_vs_bound=ls["median_slots"] / bound,
            lesk_success=ls["success_rate"],
            jam_eff=jam_eff,
            sweep_median=sw["median_slots"],
            sweep_success=sw["success_rate"],
        )
    table.add_note(
        f"bound shape = {bound:.0f} slots; sweep baseline capped at "
        f"{sweep_budget} slots (timeouts count at the cap)"
    )
    return table


if __name__ == "__main__":
    print(run("small").render())

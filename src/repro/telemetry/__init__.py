"""``repro.telemetry`` -- zero-overhead-when-off metrics & tracing.

The observability layer of the reproduction (see ``docs/telemetry.md``):

* :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  NumPy-backed histograms, mergeable across worker processes;
* :class:`EventLog` -- a ring-buffered, stride-sampled structured event
  stream (slot-window channel summaries, policy phase transitions);
* :func:`span` / :func:`timed` -- wall-clock span timers;
* exporters -- JSONL (persisted next to the runner's checkpoints),
  Prometheus text, and the ASCII summary behind
  ``python -m repro telemetry report RUN_DIR``.

The global hook is null-object based: :func:`get_telemetry` returns the
shared :data:`NULL_TELEMETRY` until :func:`configure` (process-wide) or
:func:`collecting` (scoped, merges outward) installs a live sink.  All
engine/harness instrumentation points check ``tel.enabled`` once and skip
their bookkeeping when off; the disabled-mode overhead on the batched
LESK hot path is gated at <= 2% by ``benchmarks/bench_telemetry.py``.
"""

from __future__ import annotations

from repro.telemetry.events import DEFAULT_CAPACITY, DEFAULT_STRIDE, EventLog
from repro.telemetry.export import (
    ascii_report,
    jam_efficiency_rows,
    load_jsonl,
    prometheus_text,
    telemetry_records,
    write_jsonl,
)
from repro.telemetry.hook import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    collecting,
    configure,
    disable,
    get_telemetry,
    install,
    telemetry_enabled,
)
from repro.telemetry.registry import (
    ENERGY_BUCKETS,
    SECONDS_BUCKETS,
    SLOT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import span, timed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventLog",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "telemetry_enabled",
    "configure",
    "disable",
    "install",
    "collecting",
    "span",
    "timed",
    "telemetry_records",
    "write_jsonl",
    "load_jsonl",
    "prometheus_text",
    "ascii_report",
    "jam_efficiency_rows",
    "SLOT_BUCKETS",
    "ENERGY_BUCKETS",
    "SECONDS_BUCKETS",
    "DEFAULT_STRIDE",
    "DEFAULT_CAPACITY",
]

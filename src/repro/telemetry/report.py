"""``python -m repro telemetry report RUN_DIR`` -- ASCII telemetry summary.

Reads the JSONL export a ``run_all --telemetry --out RUN_DIR`` run wrote
into ``RUN_DIR/telemetry/telemetry.jsonl`` (a direct path to a ``.jsonl``
file also works) and renders the counter families, per-strategy jam
efficiency, per-cell election-time/energy histograms, and span timings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.telemetry.export import ascii_report, load_jsonl

__all__ = ["main", "TELEMETRY_SUBDIR", "TELEMETRY_JSONL", "TELEMETRY_PROM"]

#: Layout of the telemetry payload inside a checkpointed run directory.
TELEMETRY_SUBDIR = "telemetry"
TELEMETRY_JSONL = "telemetry.jsonl"
TELEMETRY_PROM = "metrics.prom"


def resolve_export(path: Path) -> Path:
    """Map a run directory (or direct file path) to its JSONL export."""
    path = Path(path)
    if path.is_file():
        return path
    candidate = path / TELEMETRY_SUBDIR / TELEMETRY_JSONL
    if candidate.exists():
        return candidate
    raise ConfigurationError(
        f"no telemetry export under {path} (expected "
        f"{candidate}); run run_all with --telemetry --out to produce one"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``report RUN_DIR``."""
    parser = argparse.ArgumentParser(
        prog="repro telemetry", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("report", help="render the ASCII telemetry summary")
    p.add_argument("run_dir", type=Path, help="run directory (or .jsonl path)")
    args = parser.parse_args(argv)

    try:
        export = resolve_export(args.run_dir)
        tel = load_jsonl(export)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(ascii_report(tel))
    return 0


if __name__ == "__main__":
    sys.exit(main())

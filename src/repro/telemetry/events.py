"""Sampled structured event stream: a bounded ring of telemetry events.

Counters compress a run into totals; the :class:`EventLog` keeps a coarse
*timeline*: slot-window summaries of channel states, jam/jam-denied
activity, and policy phase transitions.  Two mechanisms bound its cost:

* **sampling stride** -- engines aggregate ``stride`` consecutive slots
  into one ``slot_window`` event instead of logging every slot, so the
  per-slot cost is amortized to ``O(1/stride)`` appends;
* **ring buffer** -- at most ``capacity`` events are retained; older
  events are overwritten and counted in :attr:`EventLog.dropped`, so a
  runaway run can never exhaust memory.

Events are plain dicts (JSON-ready) with a monotonically increasing
``seq`` assigned at emit time; merging shards interleaves by ``(shard
order, seq)`` and re-applies the capacity bound.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["EventLog", "DEFAULT_STRIDE", "DEFAULT_CAPACITY"]

#: Default slot-window length for engine-level sampling.
DEFAULT_STRIDE = 64

#: Default ring capacity (events, not slots).
DEFAULT_CAPACITY = 4096


class EventLog:
    """Ring-buffered structured events with a configurable sampling stride.

    The *stride* is advisory: the log itself accepts every ``emit`` call;
    instrumentation points read :attr:`stride` to decide how many slots to
    fold into one event (see the engine wiring in :mod:`repro.sim`).
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, stride: int = DEFAULT_STRIDE
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        self.capacity = int(capacity)
        self.stride = int(stride)
        self.dropped = 0
        self._ring: list[dict] = []
        self._head = 0  # next overwrite position once the ring is full
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, kind: str, **fields) -> None:
        """Append one event (oldest event is overwritten when full)."""
        event = {"seq": self._seq, "kind": kind, **fields}
        self._seq += 1
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def events(self) -> list[dict]:
        """Retained events in emission order (oldest first)."""
        return self._ring[self._head :] + self._ring[: self._head]

    # -- merge / serialization --------------------------------------------

    def merge(self, other: "EventLog") -> "EventLog":
        """Append *other*'s retained events (shard order, then ``seq``).

        Sequence numbers are rewritten to keep the merged log's ``seq``
        strictly increasing; per-shard ordering is preserved.  The
        capacity bound is re-applied, so merging K full shards keeps the
        most recently appended events and accounts the rest as dropped.
        """
        self.dropped += other.dropped
        for event in other.events():
            fields = {k: v for k, v in event.items() if k not in ("seq", "kind")}
            self.emit(event["kind"], **fields)
        return self

    def to_jsonable(self) -> dict:
        """Plain-data form that crosses process boundaries as JSON."""
        return {
            "capacity": self.capacity,
            "stride": self.stride,
            "dropped": self.dropped,
            "events": self.events(),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "EventLog":
        log = cls(
            capacity=int(data.get("capacity", DEFAULT_CAPACITY)),
            stride=int(data.get("stride", DEFAULT_STRIDE)),
        )
        for event in data.get("events", ()):
            fields = {k: v for k, v in event.items() if k not in ("seq", "kind")}
            log.emit(event["kind"], **fields)
        log.dropped = int(data.get("dropped", 0))
        return log

    def of_kind(self, kind: str) -> list[dict]:
        """Retained events of one kind, in order."""
        return [e for e in self.events() if e["kind"] == kind]

"""Mergeable metrics: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the telemetry subsystem
(:mod:`repro.telemetry`).  Three design constraints shape it:

* **Cheap on the hot path** -- an instrument is looked up once (dict get)
  and then mutated in place; histograms keep their bucket counts in a
  NumPy ``int64`` array so a whole array of observations lands in one
  ``np.add.at`` call.
* **Mergeable across processes** -- the fault-tolerant runner executes
  every experiment attempt in its own worker process.  Workers ship their
  registry home as plain JSON (:meth:`MetricsRegistry.to_jsonable`) and
  the parent folds the shards together with :meth:`MetricsRegistry.merge`.
  Merging is associative and commutative by construction: counters add,
  gauges keep the last-written value (ties broken by write sequence),
  histogram bucket counts add (fuzz-verified in
  ``tests/telemetry/test_merge_fuzz.py``).
* **Self-describing** -- instruments are identified by ``(name, labels)``
  so one metric family ("jam_slots_total") fans out over label values
  ("strategy=saturating"), Prometheus-style.

Bucket conventions: histograms store ``len(edges) + 1`` counts; value
``v`` lands in the first bucket whose upper edge satisfies ``v <= edge``,
and the final bucket is the ``+Inf`` overflow.  Two histograms only merge
when their edges are identical -- differing layouts raise
:class:`~repro.errors.ConfigurationError` rather than silently mixing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOT_BUCKETS",
    "ENERGY_BUCKETS",
    "SECONDS_BUCKETS",
]

#: Election / run lengths in slots: powers of two, 1 .. 2^22 (~4M slots).
SLOT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(0, 23))

#: Per-station energy units (transmissions + listening slots).
ENERGY_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(0, 21))

#: Wall-clock span durations in seconds, ~1us .. ~2000s, quarter-decades.
SECONDS_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (e / 4.0), 9) for e in range(-24, 14)
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total (float-valued; usually int counts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A last-value-wins sample (e.g. the final estimator value ``u``).

    ``seq`` orders writes so that merging shards keeps the latest write
    deterministically (highest sequence wins; ties keep the larger value so
    the merge stays commutative).
    """

    __slots__ = ("name", "labels", "value", "seq")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.seq = 0

    def set(self, value: float, seq: int | None = None) -> None:
        """Record *value*, advancing (or pinning) the write sequence."""
        self.value = float(value)
        self.seq = self.seq + 1 if seq is None else seq


class Histogram:
    """Fixed-bucket histogram with NumPy-backed counts.

    ``edges`` are the inclusive upper bounds of the finite buckets; the
    trailing bucket counts everything above ``edges[-1]``.  ``sum`` and
    ``count`` ride along so means survive the bucketing.
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey, edges: Sequence[float]):
        arr = np.asarray(edges, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError(f"histogram {name} needs 1-D non-empty edges")
        if not np.all(np.diff(arr) > 0):
            raise ConfigurationError(f"histogram {name} edges must be increasing")
        self.name = name
        self.labels = labels
        self.edges = arr
        self.counts = np.zeros(arr.size + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Bucket one observation (first bucket with ``value <= edge``)."""
        self.counts[int(np.searchsorted(self.edges, value, side="left"))] += 1
        self.sum += float(value)
        self.count += 1

    def observe_many(self, values) -> None:
        """Bucket a whole array of observations in one vectorized pass."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        np.add.at(self.counts, np.searchsorted(self.edges, arr, side="left"), 1)
        self.sum += float(arr.sum())
        self.count += int(arr.size)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper-edge rule)."""
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        if idx >= self.edges.size:
            return float(self.edges[-1])  # overflow bucket: clamp to top edge
        return float(self.edges[idx])


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first use and addressed by
    ``(name, labels)``; repeated calls return the same object, so hot
    loops should hoist the lookup (``c = reg.counter(...)`` then
    ``c.inc()``).
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self, name: str, buckets: Sequence[float] = SLOT_BUCKETS, **labels
    ) -> Histogram:
        """The histogram for ``(name, labels)``; layouts must not conflict."""
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, key[1], buckets)
        elif inst.edges.size != len(buckets) or not np.array_equal(
            inst.edges, np.asarray(buckets, dtype=np.float64)
        ):
            raise ConfigurationError(
                f"histogram {name}{dict(key[1])} already exists with different "
                "bucket edges; pick one layout per (name, labels)"
            )
        return inst

    # -- iteration / lookup ------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        """All counters in deterministic (name, labels) order."""
        return iter(sorted(self._counters.values(), key=lambda c: (c.name, c.labels)))

    def gauges(self) -> Iterator[Gauge]:
        """All gauges in deterministic (name, labels) order."""
        return iter(sorted(self._gauges.values(), key=lambda g: (g.name, g.labels)))

    def histograms(self) -> Iterator[Histogram]:
        """All histograms in deterministic (name, labels) order."""
        return iter(
            sorted(self._histograms.values(), key=lambda h: (h.name, h.labels))
        )

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter (0.0 when it never fired)."""
        inst = self._counters.get((name, _label_key(labels)))
        return inst.value if inst is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def label_values(self, name: str, label: str) -> list[str]:
        """All observed values of *label* within one counter family."""
        out = {
            dict(key).get(label)
            for (n, key) in self._counters
            if n == name and dict(key).get(label) is not None
        }
        return sorted(out)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- merge -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry in place; returns ``self``.

        Counters and histogram buckets add; gauges keep the write with the
        highest sequence number (ties keep the larger value, which makes
        the operation commutative).  Histogram layouts must agree.
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter(counter.name, key[1])
            mine.value += counter.value
        for key, gauge in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None:
                mine = self._gauges[key] = Gauge(gauge.name, key[1])
                mine.value, mine.seq = gauge.value, gauge.seq
            elif (gauge.seq, gauge.value) > (mine.seq, mine.value):
                mine.value, mine.seq = gauge.value, gauge.seq
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(
                    hist.name, key[1], hist.edges
                )
            elif not np.array_equal(mine.edges, hist.edges):
                raise ConfigurationError(
                    f"cannot merge histogram {hist.name}{dict(key[1])}: "
                    "bucket edges differ between shards"
                )
            mine.counts += hist.counts
            mine.sum += hist.sum
            mine.count += hist.count
        return self

    @classmethod
    def merge_all(cls, shards: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Merge any number of shards into a fresh registry."""
        merged = cls()
        for shard in shards:
            merged.merge(shard)
        return merged

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-data form that crosses process boundaries as JSON."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {
                    "name": g.name,
                    "labels": dict(g.labels),
                    "value": g.value,
                    "seq": g.seq,
                }
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "edges": h.edges.tolist(),
                    "counts": h.counts.tolist(),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self.histograms()
            ],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "MetricsRegistry":
        """Inverse of :meth:`to_jsonable`."""
        reg = cls()
        for c in data.get("counters", ()):
            reg.counter(c["name"], **c["labels"]).value = float(c["value"])
        for g in data.get("gauges", ()):
            inst = reg.gauge(g["name"], **g["labels"])
            inst.value, inst.seq = float(g["value"]), int(g.get("seq", 0))
        for h in data.get("histograms", ()):
            inst = reg.histogram(h["name"], buckets=h["edges"], **h["labels"])
            inst.counts[:] = np.asarray(h["counts"], dtype=np.int64)
            inst.sum = float(h["sum"])
            inst.count = int(h["count"])
        return reg

    def totals_by_name(self) -> dict[str, float]:
        """Counter families summed over labels (compact journal form)."""
        out: dict[str, float] = {}
        for (name, _), counter in sorted(self._counters.items()):
            out[name] = out.get(name, 0.0) + counter.value
        return out

"""The global telemetry hook: null-object when off, one registry when on.

Every instrumentation point in the library goes through
:func:`get_telemetry`.  The returned object is either

* :data:`NULL_TELEMETRY` -- the default.  Its ``enabled`` flag is False
  and every method is a no-op; hot paths hoist the flag into a local and
  skip their bookkeeping entirely, so the disabled-mode cost is one
  attribute read per *run* plus one predictable branch per slot (gated at
  <= 2% on the batched LESK hot path by ``benchmarks/bench_telemetry.py``);
* a live :class:`Telemetry` installed by :func:`configure` (process-wide,
  e.g. a runner worker started with ``--telemetry``) or by the scoped
  :func:`collecting` context manager (e.g. E08 measuring jam efficiency
  for its own cells).

``collecting`` nests: when a scope closes it merges its shard into
whatever telemetry was active before it, so a locally instrumented
experiment still contributes to a run-level registry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.errors import ConfigurationError
from repro.telemetry.events import DEFAULT_CAPACITY, DEFAULT_STRIDE, EventLog
from repro.telemetry.registry import SECONDS_BUCKETS, MetricsRegistry

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "telemetry_enabled",
    "configure",
    "disable",
    "install",
    "collecting",
]


class Telemetry:
    """A live telemetry sink: metrics registry + event log + span timers."""

    enabled = True

    def __init__(
        self,
        stride: int = DEFAULT_STRIDE,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.events = EventLog(capacity=capacity, stride=stride)

    # -- convenience passthroughs (hot paths hoist the instrument) ---------

    def counter(self, name: str, **labels):
        """Shorthand for :meth:`MetricsRegistry.counter`."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels):
        """Shorthand for :meth:`MetricsRegistry.gauge`."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        """Shorthand for :meth:`MetricsRegistry.histogram`."""
        if buckets is None:
            return self.metrics.histogram(name, **labels)
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def emit(self, kind: str, **fields) -> None:
        """Append one structured event to the ring buffer."""
        self.events.emit(kind, **fields)

    @property
    def stride(self) -> int:
        """The advisory sampling stride instrumentation should honour."""
        return self.events.stride

    def span(self, name: str, **labels):
        """Context manager timing a block into ``span_seconds{span=name}``."""
        return _Span(self, name, labels)

    def observe_span(self, name: str, seconds: float, **labels) -> None:
        """Record an already-measured duration into ``span_seconds``."""
        self.metrics.histogram(
            "span_seconds", buckets=SECONDS_BUCKETS, span=name, **labels
        ).observe(seconds)

    # -- merge / serialization --------------------------------------------

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold *other*'s metrics and events into this sink; returns self."""
        self.metrics.merge(other.metrics)
        self.events.merge(other.events)
        return self

    def to_jsonable(self) -> dict:
        """Plain-data form (metrics + events) for the process boundary."""
        return {
            "metrics": self.metrics.to_jsonable(),
            "events": self.events.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Telemetry":
        tel = cls()
        tel.metrics = MetricsRegistry.from_jsonable(data.get("metrics", {}))
        tel.events = EventLog.from_jsonable(data.get("events", {}))
        return tel


class _Span:
    """Wall-clock span recorded into the owning telemetry's histogram."""

    __slots__ = ("_tel", "_name", "_labels", "_start")

    def __init__(self, tel: Telemetry, name: str, labels: dict):
        self._tel = tel
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tel.observe_span(
            self._name, time.perf_counter() - self._start, **self._labels
        )


class _NullSpan:
    """Shared do-nothing span (one instance for the whole process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram stand-in."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float, seq: int | None = None) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The disabled-mode telemetry object: every operation is a no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) is installed by
    default; instrumentation points may also test ``tel.enabled`` once and
    skip their bookkeeping wholesale, which is the pattern the engines use.
    """

    enabled = False
    stride = DEFAULT_STRIDE

    def counter(self, name: str, **labels):
        """The shared do-nothing instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        """The shared do-nothing instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels):
        """The shared do-nothing instrument."""
        return _NULL_INSTRUMENT

    def emit(self, kind: str, **fields) -> None:
        """Dropped."""
        return None

    def span(self, name: str, **labels):
        """The shared do-nothing context manager."""
        return _NULL_SPAN

    def observe_span(self, name: str, seconds: float, **labels) -> None:
        """Dropped."""
        return None


NULL_TELEMETRY = NullTelemetry()

_current: Telemetry | NullTelemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry | NullTelemetry:
    """The process-wide telemetry sink (the null object when disabled)."""
    return _current


def telemetry_enabled() -> bool:
    """Whether a live telemetry sink is installed."""
    return _current.enabled


def install(tel: Telemetry | NullTelemetry) -> Telemetry | NullTelemetry:
    """Install *tel* as the process-wide sink; returns the previous one."""
    global _current
    previous = _current
    _current = tel
    return previous


def configure(
    enabled: bool = True,
    stride: int = DEFAULT_STRIDE,
    capacity: int = DEFAULT_CAPACITY,
) -> Telemetry | NullTelemetry:
    """Install (and return) a fresh telemetry sink, or the null object."""
    if not enabled:
        install(NULL_TELEMETRY)
        return NULL_TELEMETRY
    tel = Telemetry(stride=stride, capacity=capacity)
    install(tel)
    return tel


def disable() -> None:
    """Return to the disabled default (the shared null object)."""
    install(NULL_TELEMETRY)


@contextmanager
def collecting(
    stride: int = DEFAULT_STRIDE, capacity: int = DEFAULT_CAPACITY
):
    """Temporarily install a fresh live sink; merge it outward on exit.

    Used by code that wants telemetry for its own measurements regardless
    of the global switch (e.g. E08's jam-efficiency column).  On exit the
    previous sink is restored; if that sink is itself live, the scope's
    shard is merged into it so nested collection loses nothing.
    """
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    tel = Telemetry(stride=stride, capacity=capacity)
    previous = install(tel)
    try:
        yield tel
    finally:
        install(previous)
        if previous.enabled:
            previous.merge(tel)  # type: ignore[union-attr]

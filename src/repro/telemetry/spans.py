"""Module-level span helpers: ``with span(...)`` and ``@timed``.

Thin conveniences over the hook: both resolve :func:`get_telemetry` at
*call* time, so code instrumented at import time follows whatever sink is
installed when it actually runs.  With telemetry disabled, ``span``
returns the shared null context manager and ``timed`` adds one attribute
check per call -- no registry traffic.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.telemetry.hook import get_telemetry

__all__ = ["span", "timed"]

F = TypeVar("F", bound=Callable)


def span(name: str, **labels):
    """Context manager timing a block into ``span_seconds{span=name}``."""
    return get_telemetry().span(name, **labels)


def timed(name: str | None = None, **labels) -> Callable[[F], F]:
    """Decorator recording each call's wall-clock duration as a span.

    The span name defaults to the function's qualified name::

        @timed("harness.lesk_cell")
        def lesk_cell(...): ...
    """

    def decorate(fn: F) -> F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = get_telemetry()
            if not tel.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                tel.observe_span(
                    span_name, time.perf_counter() - start, **labels
                )

        return wrapper  # type: ignore[return-value]

    return decorate

"""Exporters: JSONL, Prometheus text format, and the ASCII summary.

Three output shapes, one source of truth (a :class:`~repro.telemetry.hook.
Telemetry` snapshot):

* **JSONL** -- one self-describing record per line (``meta``, ``counter``,
  ``gauge``, ``histogram``, ``event``).  This is the persisted form the
  runner writes into ``RUN_DIR/telemetry/telemetry.jsonl`` alongside its
  ``journal.jsonl``, and the form ``python -m repro telemetry report``
  reads back.
* **Prometheus text** -- counters/gauges/histograms in the exposition
  format (cumulative ``_bucket{le=...}`` series), scrape-ready.
* **ASCII report** -- a human summary: counter families, per-strategy jam
  efficiency, per-cell election-time histograms with bar charts, and span
  timings.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import ConfigurationError
from repro.telemetry.hook import Telemetry
from repro.telemetry.registry import Histogram, MetricsRegistry

__all__ = [
    "telemetry_records",
    "write_jsonl",
    "load_jsonl",
    "prometheus_text",
    "ascii_report",
]


def telemetry_records(tel: Telemetry) -> list[dict]:
    """Flatten a telemetry snapshot into JSONL-ready records."""
    records: list[dict] = [
        {
            "kind": "meta",
            "stride": tel.events.stride,
            "events_dropped": tel.events.dropped,
            "generated": round(time.time(), 3),
        }
    ]
    data = tel.metrics.to_jsonable()
    records += [{"kind": "counter", **c} for c in data["counters"]]
    records += [{"kind": "gauge", **g} for g in data["gauges"]]
    records += [{"kind": "histogram", **h} for h in data["histograms"]]
    records += [{"kind": "event", "event": e} for e in tel.events.events()]
    return records


def write_jsonl(path: Path, tel: Telemetry) -> None:
    """Write one telemetry snapshot as JSONL (atomically)."""
    from repro.experiments.checkpoint import atomic_write_text

    lines = [json.dumps(r, sort_keys=True) for r in telemetry_records(tel)]
    atomic_write_text(Path(path), "\n".join(lines) + "\n")


def load_jsonl(path: Path) -> Telemetry:
    """Rebuild a telemetry snapshot from its JSONL export.

    A torn final line (killed writer) is skipped, matching the journal
    reader's tolerance.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except FileNotFoundError as exc:
        raise ConfigurationError(f"no telemetry export at {path}") from exc
    metrics: dict = {"counters": [], "gauges": [], "histograms": []}
    events: list[dict] = []
    meta: dict = {}
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        kind = record.get("kind")
        if kind == "meta":
            meta = record
        elif kind in ("counter", "gauge", "histogram"):
            payload = {k: v for k, v in record.items() if k != "kind"}
            metrics[kind + "s"].append(payload)
        elif kind == "event":
            events.append(record["event"])
    tel = Telemetry(stride=int(meta.get("stride", 64) or 64))
    tel.metrics = MetricsRegistry.from_jsonable(metrics)
    for event in events:
        fields = {k: v for k, v in event.items() if k not in ("seq", "kind")}
        tel.events.emit(event["kind"], **fields)
    tel.events.dropped = int(meta.get("events_dropped", 0))
    return tel


# -- Prometheus text ------------------------------------------------------


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(reg: MetricsRegistry) -> str:
    """The registry in the Prometheus exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in reg.counters():
        name = _prom_name(counter.name)
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} {counter.value:g}")
    for gauge in reg.gauges():
        name = _prom_name(gauge.name)
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {gauge.value:g}")
    for hist in reg.histograms():
        name = _prom_name(hist.name)
        type_line(name, "histogram")
        cumulative = 0
        for edge, count in zip(hist.edges, hist.counts):
            cumulative += int(count)
            le = 'le="%g"' % edge
            lines.append(f"{name}_bucket{_prom_labels(hist.labels, le)} {cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{name}_bucket{_prom_labels(hist.labels, inf)} {hist.count}")
        lines.append(f"{name}_sum{_prom_labels(hist.labels)} {hist.sum:g}")
        lines.append(f"{name}_count{_prom_labels(hist.labels)} {hist.count}")
    return "\n".join(lines) + "\n"


# -- ASCII report ---------------------------------------------------------

_BAR_WIDTH = 40


def _histogram_block(hist: Histogram, indent: str = "  ") -> list[str]:
    """Bar-chart lines for one histogram (nonzero buckets only)."""
    lines = [
        f"{indent}count={hist.count}  mean={hist.mean:.1f}  "
        f"p50~{hist.quantile(0.5):g}  p90~{hist.quantile(0.9):g}"
    ]
    nonzero = [i for i, c in enumerate(hist.counts) if c]
    if not nonzero:
        return lines
    peak = max(int(hist.counts[i]) for i in nonzero)
    for i in range(nonzero[0], nonzero[-1] + 1):
        count = int(hist.counts[i])
        label = (
            f"<= {hist.edges[i]:g}" if i < hist.edges.size else "   +Inf"
        )
        bar = "#" * max(1 if count else 0, round(_BAR_WIDTH * count / peak))
        lines.append(f"{indent}{label:>12}  {count:>8}  {bar}")
    return lines


def _fmt_labels(labels: tuple[tuple[str, str], ...]) -> str:
    return ", ".join(f"{k}={v}" for k, v in labels) if labels else "-"


def jam_efficiency_rows(reg: MetricsRegistry) -> list[dict]:
    """Per-strategy jam efficiency: jams on occupied slots / total jams."""
    rows = []
    for strategy in reg.label_values("jam_slots_total", "strategy"):
        total = reg.counter_value("jam_slots_total", strategy=strategy)
        occupied = reg.counter_value("jam_occupied_total", strategy=strategy)
        denied = reg.counter_value("jam_denied_total", strategy=strategy)
        rows.append(
            {
                "strategy": strategy,
                "jams": int(total),
                "occupied": int(occupied),
                "denied": int(denied),
                "efficiency": occupied / total if total else 0.0,
            }
        )
    return rows


def ascii_report(tel: Telemetry) -> str:
    """Render the full human-readable telemetry summary."""
    reg = tel.metrics
    lines = ["== telemetry report =="]

    totals = reg.totals_by_name()
    if totals:
        lines.append("")
        lines.append("-- counters (summed over labels) --")
        width = max(len(n) for n in totals)
        for name, value in sorted(totals.items()):
            lines.append(f"  {name.ljust(width)}  {value:g}")

    jam_rows = jam_efficiency_rows(reg)
    if jam_rows:
        lines.append("")
        lines.append("-- jam efficiency (occupied-slot jams / total jams) --")
        width = max(len(r["strategy"]) for r in jam_rows)
        lines.append(
            f"  {'strategy'.ljust(width)}  {'jams':>8}  {'occupied':>8}  "
            f"{'denied':>8}  {'efficiency':>10}"
        )
        for r in jam_rows:
            lines.append(
                f"  {r['strategy'].ljust(width)}  {r['jams']:>8}  "
                f"{r['occupied']:>8}  {r['denied']:>8}  {r['efficiency']:>10.3f}"
            )

    cell_hists = [h for h in reg.histograms() if h.name == "cell_election_slots"]
    if cell_hists:
        lines.append("")
        lines.append("-- per-cell election time (slots) --")
        for hist in cell_hists:
            lines.append(f"  cell [{_fmt_labels(hist.labels)}]")
            lines += _histogram_block(hist, indent="    ")

    energy_hists = [
        h for h in reg.histograms() if h.name == "cell_energy_per_station"
    ]
    if energy_hists:
        lines.append("")
        lines.append("-- per-cell energy per station --")
        for hist in energy_hists:
            lines.append(f"  cell [{_fmt_labels(hist.labels)}]")
            lines += _histogram_block(hist, indent="    ")

    span_hists = [h for h in reg.histograms() if h.name == "span_seconds"]
    if span_hists:
        lines.append("")
        lines.append("-- spans (wall-clock) --")
        for hist in span_hists:
            lines.append(
                f"  {_fmt_labels(hist.labels)}: count={hist.count} "
                f"total={hist.sum:.3f}s mean={hist.mean * 1e3:.2f}ms "
                f"p90~{hist.quantile(0.9) * 1e3:.2f}ms"
            )

    other_hists = [
        h
        for h in reg.histograms()
        if h.name
        not in ("cell_election_slots", "cell_energy_per_station", "span_seconds")
    ]
    if other_hists:
        lines.append("")
        lines.append("-- other histograms --")
        for hist in other_hists:
            lines.append(f"  {hist.name} [{_fmt_labels(hist.labels)}]")
            lines += _histogram_block(hist, indent="    ")

    if len(tel.events):
        lines.append("")
        lines.append("-- events --")
        by_kind: dict[str, int] = {}
        for event in tel.events.events():
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        for kind, count in sorted(by_kind.items()):
            lines.append(f"  {kind}: {count} retained")
        if tel.events.dropped:
            lines.append(f"  ({tel.events.dropped} older events dropped by the ring)")

    return "\n".join(lines)

"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BudgetViolationError",
    "SimulationError",
    "ProtocolError",
    "ExperimentTimeoutError",
    "ChecksumMismatchError",
    "InvariantViolationError",
    "ShardFailureError",
]


class ReproError(Exception):
    """Base class of all library-specific exceptions."""


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid model or protocol parameters."""


class BudgetViolationError(ReproError):
    """Raised in strict mode when an adversary exceeds its jamming budget.

    The (T, 1-eps)-bounded adversary may jam at most ``(1-eps) * w`` out of
    any ``w >= T`` contiguous slots.  In non-strict mode the harness simply
    clamps over-budget jam requests; in strict mode it raises this error so
    tests can assert that a strategy is budget-aware.
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. slot limit exhausted
    where the caller required an election)."""


class ProtocolError(ReproError):
    """Raised when a protocol object is driven incorrectly (e.g. feedback
    delivered for a slot that was never started)."""


class ExperimentTimeoutError(ReproError):
    """Raised when a supervised experiment exceeds its wall-clock timeout.

    The fault-tolerant runner kills the worker process and records the
    experiment as timed out; by default timeouts are not retried (a hung
    worker would very likely hang again), but ``RetryPolicy.retry_timeouts``
    opts back in.
    """


class InvariantViolationError(ReproError):
    """Raised by the runtime invariant auditor when a model invariant breaks.

    The auditor (:mod:`repro.resilience.auditor`) checks, per slot, that the
    adversary honored its (T, 1-eps) budget over every realized window, that
    the channel states are consistent with the transmitter count, and that
    election safety holds (at most one leader, elected while awake and
    transmitting).  The attached :attr:`bundle` is a self-contained repro
    recipe (seed, configuration, offending slot range) that can be replayed
    with ``python -m repro replay``.
    """

    def __init__(self, message: str, bundle=None) -> None:
        super().__init__(message)
        #: :class:`repro.resilience.bundle.ReproBundle` describing how to
        #: reproduce the violation (None when the caller had no run context).
        self.bundle = bundle


class ChecksumMismatchError(ReproError):
    """Raised when a checkpointed result fails integrity verification.

    Every checkpoint embeds a SHA-256 over its canonical payload; a
    mismatch means the file was truncated or corrupted on disk.  The
    runner treats such a checkpoint as absent and recomputes the
    experiment on ``--resume``.
    """


class ShardFailureError(ReproError):
    """Raised when a supervised sharded sweep cannot produce complete results.

    The block-level supervisor (:mod:`repro.experiments.shard_supervisor`)
    quarantines a rep-block after its bounded retries are exhausted; with
    ``keep_going`` off (the default for library callers, which expect every
    spec's full result list) the sweep aborts with this error.  The
    attached :attr:`report` is the :class:`~repro.experiments
    .shard_supervisor.ShardReport` naming every quarantined block and why.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        #: The supervision report (retries, redispatches, quarantined
        #: blocks) for the failed sweep; None when unavailable.
        self.report = report

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``elect``      run one leader election and print the outcome
``estimate``   approximate the network size from the estimator walk
``kselect``    elect k distinct leaders
``audit``      run an invariant-audited election (``--overbudget`` runs a
               cheating adversary that must trip the auditor: exit 3)
``replay``     re-execute a saved violation bundle (exit 0 iff it reproduces)
``experiments``forward to ``repro.experiments.run_all``
``sweep``      supervised sharded cell sweep (``repro.experiments.sweep``)
``telemetry``  report on a run directory's telemetry export
``scenario``   validate/run/submit/replay scenario documents
               (``repro.service.cli``)
``serve``      long-running scenario job service with an HTTP API

Examples::

    python -m repro elect --n 1000 --protocol lewu --adversary saturating
    python -m repro elect --n 4096 --eps 0.3 --T 64 --adversary single-suppressor --trace out.csv
    python -m repro estimate --n 5000 --adversary silence-masker
    python -m repro kselect --n 500 --k 3
    python -m repro audit --n 256 --adversary saturating --seed 7
    python -m repro audit --n 256 --adversary saturating --seed 7 --overbudget
    python -m repro replay violation.json
    python -m repro experiments --preset small --only T1
    python -m repro sweep --kind lesk --n 64,128 --jobs 4 --out runs/sweep
    python -m repro telemetry report runs/smoke
    python -m repro scenario validate examples/scenarios/quick-grid.yaml
    python -m repro scenario run examples/scenarios/quick-grid.yaml --store runs/store
    python -m repro serve --store runs/store --port 8765
"""

from __future__ import annotations

import argparse
import sys

from repro.adversary.suite import strategy_names
from repro.core.config import PROTOCOLS


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, required=True, help="number of stations")
    p.add_argument("--eps", type=float, default=0.5, help="adversary eps (0, 1)")
    p.add_argument("--T", type=int, default=16, help="adversary window parameter")
    p.add_argument(
        "--adversary",
        default="none",
        choices=strategy_names(),
        help="jamming strategy",
    )
    p.add_argument("--seed", type=int, default=None)


def _cmd_elect(args: argparse.Namespace) -> int:
    from repro.core.election import elect_leader

    result = elect_leader(
        n=args.n,
        protocol=args.protocol,
        eps=args.eps,
        T=args.T,
        adversary=args.adversary,
        seed=args.seed,
        max_slots=args.max_slots,
        record_trace=args.trace is not None,
    )
    if not result.elected:
        print(f"no leader within {result.slots} slots (timed out)")
        return 1
    print(
        f"leader: station {result.leader} of {args.n}\n"
        f"slots:  {result.slots} ({result.jams} jammed, "
        f"{result.jam_denied} jam requests denied)\n"
        f"energy: {result.energy.transmissions} transmissions "
        f"({result.energy.transmissions_per_station(args.n):.2f}/station)"
    )
    if args.trace is not None:
        from repro.sim.trace_io import save_trace

        save_trace(result.trace, args.trace)
        print(f"trace:  {args.trace}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.applications.size_estimation import estimate_size_walk

    est = estimate_size_walk(
        n=args.n, eps=args.eps, T=args.T, adversary=args.adversary, seed=args.seed
    )
    print(
        f"estimate: ~{est.n_estimate:.0f} stations "
        f"(log2 = {est.log2_estimate:.2f}; bracket "
        f"[{est.n_low:.0f}, {est.n_high:.0f}]; truth {args.n})\n"
        f"slots:    {est.slots} ({est.jams} jammed)"
    )
    return 0


def _cmd_kselect(args: argparse.Namespace) -> int:
    from repro.applications.k_selection import select_k_leaders

    result = select_k_leaders(
        n=args.n, k=args.k, eps=args.eps, T=args.T,
        adversary=args.adversary, seed=args.seed,
    )
    print(
        f"leaders: {list(result.leaders)}\n"
        f"won at:  {list(result.win_slots)}\n"
        f"slots:   {result.slots} ({result.jams} jammed)"
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.resilience.faults import FaultModel
    from repro.resilience.replay import audited_election

    faults = None
    if args.crash_rate or args.flip_rate or args.erase_rate:
        faults = FaultModel(
            crash_rate=args.crash_rate,
            flip_rate=args.flip_rate,
            erase_rate=args.erase_rate,
        )
    result, violation, slots = audited_election(
        n=args.n,
        protocol=args.protocol,
        eps=args.eps,
        T=args.T,
        adversary=args.adversary,
        seed=args.seed,
        max_slots=args.max_slots,
        faults=faults,
        overbudget=args.overbudget,
    )
    if violation is not None:
        print(f"VIOLATION after {slots} audited slots: {violation}")
        if violation.bundle is not None:
            if args.bundle is not None:
                violation.bundle.save(args.bundle)
                print(f"bundle written to {args.bundle}")
            else:
                print(violation.bundle.describe())
        return 3
    outcome = (
        f"leader {result.leader} in {result.slots} slots"
        if result.elected
        else f"no election within {result.slots} slots"
    )
    print(
        f"clean: {slots} slots audited, zero invariant violations "
        f"({outcome}; {result.jams} jams granted, "
        f"{result.jam_denied} denied)"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.resilience.replay import replay_file

    replay = replay_file(args.bundle)
    print(replay.bundle.describe())
    print()
    print(replay.describe())
    return 0 if replay.reproduced else 1


def main(argv: list[str] | None = None) -> int:
    """Dispatch a ``python -m repro`` command; returns the exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "experiments":
        # Forward everything verbatim (argparse's REMAINDER does not accept
        # leading optionals like --preset).
        from repro.experiments.run_all import main as run_all_main

        return run_all_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.experiments.sweep import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "telemetry":
        from repro.telemetry.report import main as telemetry_main

        return telemetry_main(argv[1:])
    if argv and argv[0] == "scenario":
        from repro.service.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("elect", help="run one leader election")
    _add_model_args(p)
    p.add_argument("--protocol", default="lesk", choices=sorted(PROTOCOLS))
    p.add_argument("--max-slots", type=int, default=None)
    p.add_argument("--trace", default=None, help="write the slot trace as CSV")
    p.set_defaults(fn=_cmd_elect)

    p = sub.add_parser("estimate", help="approximate the network size")
    _add_model_args(p)
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser("kselect", help="elect k distinct leaders")
    _add_model_args(p)
    p.add_argument("--k", type=int, required=True)
    p.set_defaults(fn=_cmd_kselect)

    p = sub.add_parser(
        "audit", help="run an invariant-audited election (CI chaos smoke)"
    )
    _add_model_args(p)
    p.add_argument("--protocol", default="lesk", choices=sorted(PROTOCOLS))
    p.add_argument("--max-slots", type=int, default=None)
    p.add_argument(
        "--overbudget",
        action="store_true",
        help="wrap the adversary so it ignores its budget clamp; the "
        "auditor must trip (exit 3)",
    )
    p.add_argument("--crash-rate", type=float, default=0.0)
    p.add_argument("--flip-rate", type=float, default=0.0)
    p.add_argument("--erase-rate", type=float, default=0.0)
    p.add_argument(
        "--bundle", default=None, help="write the violation bundle JSON here"
    )
    p.set_defaults(fn=_cmd_audit)

    p = sub.add_parser(
        "replay", help="re-execute a saved violation bundle (exit 0 iff it reproduces)"
    )
    p.add_argument("bundle", help="path to a violation bundle JSON")
    p.set_defaults(fn=_cmd_replay)

    sub.add_parser(
        "experiments",
        help="regenerate experiment tables (all arguments forwarded)",
        add_help=False,
    )
    sub.add_parser(
        "sweep",
        help="supervised sharded cell sweep (all arguments forwarded)",
        add_help=False,
    )
    sub.add_parser(
        "telemetry",
        help="inspect a run's telemetry export (all arguments forwarded)",
        add_help=False,
    )
    sub.add_parser(
        "scenario",
        help="validate/run/submit/replay scenario documents "
        "(all arguments forwarded)",
        add_help=False,
    )
    sub.add_parser(
        "serve",
        help="run the scenario job service (all arguments forwarded)",
        add_help=False,
    )

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

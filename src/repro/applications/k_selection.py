"""k-selection: electing ``k`` distinct leaders despite jamming.

Strong-CD construction from the LESK building block: run the LESK walk;
each successful ``Single`` crowns one winner, who then leaves the
protocol.  Crucially the estimator ``u`` is *kept* across wins -- after a
win the network has ``n-1`` stations and ``u`` is already calibrated to
``log2 n ~ log2(n-1)``, so subsequent wins arrive at the constant
per-regular-slot rate of Lemma 2.4.  Total time
``O(max{T, log n/(eps^3 log(1/eps))} + k/eps)`` for ``k << n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.suite import make_adversary
from repro.errors import ConfigurationError, SimulationError
from repro.protocols.lesk import LESKPolicy
from repro.rng import RngLike, make_rng
from repro.sim.fast import simulate_uniform_fast

__all__ = ["KSelectionResult", "select_k_leaders", "select_k_leaders_weak_cd"]


@dataclass(frozen=True, slots=True)
class KSelectionResult:
    """Result of a k-selection run."""

    #: Station ids of the winners, in order of selection.
    leaders: tuple[int, ...]
    #: Slot at which each winner was selected (global slot numbering).
    win_slots: tuple[int, ...]
    #: Total slots consumed.
    slots: int
    #: Total jammed slots across the run.
    jams: int

    @property
    def k(self) -> int:
        return len(self.leaders)


def select_k_leaders(
    n: int,
    k: int,
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "none",
    seed: RngLike = None,
    max_slots: int = 2_000_000,
) -> KSelectionResult:
    """Elect *k* distinct leaders among *n* stations under jamming.

    Winners are drawn without replacement (a winner stops transmitting);
    station ids are assigned uniformly at random among remaining stations,
    which is exact by symmetry of the uniform protocol.
    """
    if not (1 <= k < n):
        raise ConfigurationError(f"need 1 <= k < n, got k={k}, n={n}")
    rng = make_rng(seed)
    remaining = list(range(n))
    leaders: list[int] = []
    win_slots: list[int] = []
    slots_used = 0
    jams = 0
    u_carry = 0.0

    for round_index in range(k):
        adv = make_adversary(adversary, T=T, eps=eps)
        policy = LESKPolicy(eps, initial_u=u_carry)
        result = simulate_uniform_fast(
            policy,
            n=len(remaining),
            adversary=adv,
            max_slots=max_slots - slots_used,
            seed=rng,
        )
        if not result.elected:
            raise SimulationError(
                f"k-selection stalled at winner {round_index + 1}/{k} "
                f"after {slots_used + result.slots} slots"
            )
        winner_index = int(rng.integers(len(remaining)))
        leaders.append(remaining.pop(winner_index))
        win_slots.append(slots_used + result.slots - 1)
        slots_used += result.slots
        jams += result.jams
        u_carry = max(0.0, policy.u)

    return KSelectionResult(
        leaders=tuple(leaders),
        win_slots=tuple(win_slots),
        slots=slots_used,
        jams=jams,
    )


def select_k_leaders_weak_cd(
    n: int,
    k: int,
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "none",
    seed: RngLike = None,
    max_slots_per_round: int = 500_000,
) -> KSelectionResult:
    """Weak-CD k-selection: repeat a full Notification election per winner.

    In weak-CD a bare ``Single`` does not inform its transmitter, so the
    strong-CD trick of continuing the walk across wins is unavailable;
    instead each round runs a complete LEWK election (Notification around
    LESK) among the stations not yet selected, and the winner retires.
    Cost: ``k`` rounds of ``O(t(n))`` each (the rounds cannot share the
    estimator state because Notification restarts ``A`` per interval
    anyway).  Uses the aggregate-state fast engine, so ``n`` can be large;
    requires ``n - k >= 3`` (Lemma 3.1's crowd).
    """
    if not (1 <= k <= n - 3):
        raise ConfigurationError(
            f"weak-CD k-selection needs 1 <= k <= n - 3, got k={k}, n={n}"
        )
    from repro.sim.fast_notification import simulate_notification_fast

    rng = make_rng(seed)
    remaining = list(range(n))
    leaders: list[int] = []
    win_slots: list[int] = []
    slots_used = 0
    jams = 0
    for round_index in range(k):
        adv = make_adversary(adversary, T=T, eps=eps)
        result = simulate_notification_fast(
            lambda: LESKPolicy(eps),
            n=len(remaining),
            adversary=adv,
            max_slots=max_slots_per_round,
            seed=rng,
        )
        if not result.elected:
            raise SimulationError(
                f"weak-CD k-selection stalled at winner {round_index + 1}/{k}"
            )
        winner_index = int(rng.integers(len(remaining)))
        leaders.append(remaining.pop(winner_index))
        slots_used += result.slots
        win_slots.append(slots_used - 1)
        jams += result.jams
    return KSelectionResult(
        leaders=tuple(leaders),
        win_slots=tuple(win_slots),
        slots=slots_used,
        jams=jams,
    )

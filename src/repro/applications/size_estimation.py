"""Jam-resistant network-size approximation.

Two estimators built from the paper's primitives:

* :func:`estimate_loglog_size` -- run ``Estimation(L)`` standalone
  (Function 2).  By Lemma 2.8 the returned round ``i`` brackets
  ``log log n`` within +-1 (up to the ``log T`` cap), i.e. it localizes
  ``n`` to a doubly-exponential range -- coarse, but obtained in
  ``O(max{log n, T})`` slots under arbitrary (T, 1-eps) jamming.

* :func:`estimate_size_walk` -- run the LESK estimator walk for a fixed
  number of slots, *ignoring* Singles, and read off the median of ``u``
  over the second half of the run.  The walk concentrates around its
  zero-drift point (:func:`repro.analysis.walks.equilibrium_u`), which
  sits ``Theta(log log a)`` below ``log2 n``; we invert that relation to
  de-bias the estimate.  Jamming shifts the equilibrium up by at most
  ``~log2(1/eps)`` (each jam adds ``+1/a``), bounded by design of the
  asymmetric update, so the estimate stays within a few doublings of the
  truth under any (T, 1-eps) adversary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adversary.suite import make_adversary
from repro.analysis.walks import equilibrium_u
from repro.errors import ConfigurationError, SimulationError
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.lesk import LESKPolicy, lesk_parameter_a
from repro.rng import RngLike
from repro.sim.fast import simulate_uniform_fast
from repro.types import ChannelState

__all__ = ["SizeEstimate", "estimate_size_walk", "estimate_loglog_size"]


@dataclass(frozen=True, slots=True)
class SizeEstimate:
    """Result of a size-approximation run."""

    #: Point estimate of n.
    n_estimate: float
    #: Point estimate of log2 n.
    log2_estimate: float
    #: Bracketing interval [lo, hi] for n implied by the method's accuracy.
    n_low: float
    n_high: float
    #: Slots consumed.
    slots: int
    #: Slots jammed during the run.
    jams: int


class _SizeWalkPolicy(LESKPolicy):
    """LESK walk that ignores Singles (size estimation never stops on one).

    A heard ``Single`` tells a listener "at least one transmitter", which
    for the walk is information-equivalent to a collision's "not silent";
    we apply the ``+1/a`` update to keep the drift analysis intact.
    """

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            state = ChannelState.COLLISION
        super().observe(step, state)

    def clone(self) -> "_SizeWalkPolicy":
        return _SizeWalkPolicy(self.eps, initial_u=self.initial_u)


def _invert_equilibrium(u_measured: float, a: float) -> float:
    """Find ``log2 n_est`` such that ``equilibrium_u(n_est, a) == u_measured``.

    ``equilibrium_u`` is monotone in ``n``; bisection over ``log2 n``.
    """
    lo, hi = 0.0, u_measured + 8.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        n_mid = max(2, int(round(2.0**mid)))
        if equilibrium_u(n_mid, a) < u_measured:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def estimate_size_walk(
    n: int,
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "none",
    slots: int | None = None,
    seed: RngLike = None,
) -> SizeEstimate:
    """Approximate the network size from the LESK walk's resting point.

    Parameters mirror :func:`repro.elect_leader`; *slots* defaults to a
    multiple of the LESK time bound so the walk has settled.
    """
    if n < 2:
        raise ConfigurationError(f"size estimation needs n >= 2, got {n}")
    a = lesk_parameter_a(eps)
    if slots is None:
        slots = int(64 * max(T, math.log2(n) / eps**3) + 512)
    adv = make_adversary(adversary, T=T, eps=eps)
    policy = _SizeWalkPolicy(eps)
    result = simulate_uniform_fast(
        policy,
        n=n,
        adversary=adv,
        max_slots=slots,
        seed=seed,
        record_trace=True,
        halt_on_single=False,
    )
    assert result.trace is not None
    u_series = result.trace.u_array()
    settled = u_series[len(u_series) // 2 :]
    u_med = float(np.median(settled))
    log2_est = _invert_equilibrium(u_med, a)
    # Accuracy bracket: jamming can lift the equilibrium by up to the
    # worst-case shift at jam fraction (1 - eps); silence-side error is
    # bounded by the band halfwidth log2(2 ln a).
    up_shift = equilibrium_u(max(2, int(2.0**log2_est)), a, jam_fraction=1.0 - eps) - \
        equilibrium_u(max(2, int(2.0**log2_est)), a)
    halfwidth = math.log2(2.0 * math.log(a)) + 1.0
    lo = log2_est - up_shift - halfwidth
    hi = log2_est + halfwidth
    return SizeEstimate(
        n_estimate=2.0**log2_est,
        log2_estimate=log2_est,
        n_low=2.0**lo,
        n_high=2.0**hi,
        slots=result.slots,
        jams=result.jams,
    )


def estimate_loglog_size(
    n: int,
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "none",
    L: int = 2,
    seed: RngLike = None,
    max_slots: int = 1_000_000,
) -> SizeEstimate:
    """Coarse size approximation via standalone ``Estimation(L)``.

    Returns the Lemma 2.8 bracket: the round ``i`` satisfies
    ``log log n - 1 <= i <= max{log log n, log T} + 1`` w.h.p., so
    ``n in [2**(2**(i-1)), 2**(2**(i+1))]`` (when ``T`` does not dominate).
    """
    if n < 2:
        raise ConfigurationError(f"size estimation needs n >= 2, got {n}")
    adv = make_adversary(adversary, T=T, eps=eps)
    policy = EstimationPolicy(L=L)
    result = simulate_uniform_fast(
        policy,
        n=n,
        adversary=adv,
        max_slots=max_slots,
        seed=seed,
        halt_on_single=False,
    )
    if result.policy_result is None:
        raise SimulationError(
            f"Estimation did not complete within {max_slots} slots"
        )
    i = int(result.policy_result)
    log2_est = float(2.0 ** i)
    return SizeEstimate(
        n_estimate=2.0**log2_est,
        log2_estimate=log2_est,
        n_low=2.0 ** (2.0 ** max(0, i - 1)),
        n_high=2.0 ** (2.0 ** (i + 1)),
        slots=result.slots,
        jams=result.jams,
    )

"""Applications built from the paper's primitives.

Section 4: "some of the presented procedures can be also used as building
blocks in constructions of other protocols including size approximation,
k-selection or fair use of the wireless channel."  This package implements
those three, each on top of the public protocol layer:

* :mod:`repro.applications.size_estimation` -- jam-resistant approximation
  of ``log2 n`` from the LESK estimator walk and of ``log log n`` from
  ``Estimation``;
* :mod:`repro.applications.k_selection` -- electing ``k`` distinct
  leaders by continuing the LESK walk after each win;
* :mod:`repro.applications.fair_use` -- leader-coordinated TDMA and the
  fairness gain it brings over contention.
"""

from repro.applications.fair_use import FairUseReport, simulate_fair_use
from repro.applications.k_selection import (
    KSelectionResult,
    select_k_leaders,
    select_k_leaders_weak_cd,
)
from repro.applications.size_estimation import (
    SizeEstimate,
    estimate_size_walk,
    estimate_loglog_size,
)

__all__ = [
    "SizeEstimate",
    "estimate_size_walk",
    "estimate_loglog_size",
    "KSelectionResult",
    "select_k_leaders",
    "select_k_leaders_weak_cd",
    "FairUseReport",
    "simulate_fair_use",
]

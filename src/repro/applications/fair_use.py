"""Fair use of the channel: leader-coordinated TDMA after election.

A minimal end-to-end story for the Section 4 claim: once a leader exists
it can impose a round-robin schedule.  We simulate (1) an election phase
under jamming, (2) a TDMA phase where slot ``t`` belongs to station
``t mod n`` (jammed slots are simply lost and retried next cycle), and
report Jain's fairness index of per-station goodput in each phase.

Jain's index ``(sum x)^2 / (n * sum x^2)`` is 1 for perfectly equal
shares and ``1/n`` when one station monopolizes the channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adversary.base import AdversaryView
from repro.adversary.suite import make_adversary
from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.core.election import elect_leader
from repro.errors import ConfigurationError
from repro.rng import RngLike, make_rng

__all__ = ["FairUseReport", "jain_index", "simulate_fair_use"]


def jain_index(shares) -> float:
    """Jain's fairness index of a non-negative allocation vector."""
    x = np.asarray(shares, dtype=np.float64)
    if x.size == 0 or np.any(x < 0):
        raise ConfigurationError("jain_index needs a non-empty, non-negative vector")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float((x * x).sum())
    return total_sq / denom if denom > 0 else 1.0


@dataclass(frozen=True, slots=True)
class FairUseReport:
    """Outcome of the election + TDMA simulation."""

    leader: int | None
    election_slots: int
    tdma_slots: int
    #: Successful (non-jammed) deliveries per station during TDMA.
    deliveries: tuple[int, ...]
    #: Jain index of TDMA goodput (1.0 = perfectly fair; jamming can only
    #: lower it by unlucky slot alignment).
    tdma_fairness: float
    #: Fraction of TDMA slots lost to jamming.
    tdma_loss: float


def simulate_fair_use(
    n: int,
    eps: float = 0.5,
    T: int = 16,
    adversary: str = "saturating",
    cycles: int = 8,
    seed: RngLike = None,
) -> FairUseReport:
    """Elect a leader, then run *cycles* TDMA rounds under the same jammer.

    The TDMA phase keeps the (T, 1-eps) budget running: the adversary can
    deny at most a ``(1-eps)`` fraction of any window, so each station is
    guaranteed ``~eps`` of its nominal share -- fairness degrades gracefully
    rather than collapsing.
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    rng = make_rng(seed)
    election = elect_leader(
        n=n, protocol="lesk", eps=eps, T=T, adversary=adversary, seed=rng
    )
    election.require_elected()

    adv = make_adversary(adversary, T=T, eps=eps)
    adv.reset(seed=rng.spawn(1)[0])
    trace = ChannelTrace()
    deliveries = [0] * n
    tdma_slots = cycles * n
    jams = 0
    for slot in range(tdma_slots):
        view = AdversaryView(
            slot=slot, n=n, trace=trace, budget=adv.budget, transmit_probability=1.0
        )
        jammed = adv.decide(view)
        owner = slot % n
        # Exactly one transmitter per slot: a Single unless jammed.
        outcome = resolve_slot(slot, 1, jammed)
        trace.append(1, jammed, outcome.true_state, outcome.observed_state)
        if outcome.successful_single:
            deliveries[owner] += 1
        else:
            jams += 1

    return FairUseReport(
        leader=election.leader,
        election_slots=election.slots,
        tdma_slots=tdma_slots,
        deliveries=tuple(deliveries),
        tdma_fairness=jain_index(deliveries),
        tdma_loss=jams / tdma_slots,
    )

"""Job queue scheduling scenario runs onto the sharded scheduler.

:class:`JobService` owns a :class:`~repro.service.store.RunStore` and a
bounded FIFO of run ids.  Submissions register the scenario in the store
(idempotent by content digest) and enqueue it; worker threads drain the
queue, executing each run through :meth:`RunStore.execute` -- i.e. the
supervised sharded scheduler with block checkpoints, so a run killed
mid-flight resumes where it left off.

Durability and backpressure:

* the queue is **bounded** -- when it is full, :meth:`submit` raises
  :class:`BackpressureError` (the HTTP layer maps it to 429) instead of
  buffering unbounded work;
* all job state lives in the store (``status.json`` per run), so a
  service restart recovers by :meth:`rescan`\\ ning the store: runs left
  ``queued`` or ``running`` are re-enqueued and resume from their shard
  checkpoints;
* :meth:`stop` supports both a **drain** (finish everything already
  queued, the SIGTERM path) and an immediate stop (cooperatively cancel
  the in-flight run between cells; queued runs stay ``queued`` in the
  store for the next rescan).

Telemetry (through the process-global registry): ``service_queue_depth``
gauge, ``service_submissions_total{outcome=}`` /
``service_jobs_total{state=}`` counters, and
``service_queue_wait_seconds`` / ``service_job_seconds`` histograms.
"""

from __future__ import annotations

import queue
import threading
import time

from repro import telemetry
from repro.errors import ConfigurationError, ReproError
from repro.service.scenario import Scenario
from repro.service.store import RunStore

__all__ = ["BackpressureError", "JobService", "DEFAULT_QUEUE_LIMIT"]

DEFAULT_QUEUE_LIMIT = 64

_STOP = None  # queue sentinel


class BackpressureError(ReproError):
    """Raised when the job queue is full; resubmit after runs drain."""


class JobService:
    """Bounded job queue executing scenario runs against a store."""

    def __init__(
        self,
        store: RunStore,
        jobs_per_run: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        workers: int = 1,
    ):
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if jobs_per_run < 1:
            raise ConfigurationError(
                f"jobs_per_run must be >= 1, got {jobs_per_run}"
            )
        self.store = store
        self.jobs_per_run = jobs_per_run
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-job-{i}", daemon=True)
            for i in range(workers)
        ]
        self._lock = threading.Lock()
        self._enqueued: set[str] = set()  # ids currently queued or running
        self._cancel_requested: set[str] = set()
        self._stopping = threading.Event()
        self._cancel_all = threading.Event()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start worker threads and recover interrupted runs from the store."""
        if self._started:
            return
        self._started = True
        self.rescan()
        for worker in self._workers:
            worker.start()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        With *drain* (the SIGTERM path) every queued run finishes first;
        without it the in-flight run is cancelled at its next between-cell
        checkpoint and queued runs stay ``queued`` in the store, to be
        recovered by the next :meth:`rescan`.
        """
        self._stopping.set()
        if not drain:
            self._cancel_all.set()
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            if worker.is_alive():
                worker.join(timeout=timeout)

    def rescan(self) -> list[str]:
        """Re-enqueue runs the store says are ``queued`` or ``running``.

        A ``running`` run is one a previous service instance died inside;
        its shard checkpoints make re-execution a cheap resume.  Returns
        the recovered run ids.
        """
        recovered = []
        for summary in self.store.query():
            if summary.get("state") in ("queued", "running"):
                if self._try_enqueue(summary["run_id"]):
                    recovered.append(summary["run_id"])
        return recovered

    # -- submission --------------------------------------------------------

    def submit(self, scenario: Scenario, invocation: dict | None = None) -> dict:
        """Register and enqueue a scenario; returns a submission summary.

        Content addressing makes this idempotent: resubmitting a document
        whose run is already ``done`` returns immediately with the stored
        state and does not re-execute.
        """
        tel = telemetry.get_telemetry()
        if self._stopping.is_set():
            tel.counter("service_submissions_total", outcome="rejected").inc()
            raise BackpressureError("service is shutting down")
        record, created = self.store.register(scenario, invocation=invocation)
        state = self.store.status(record.run_id).get("state")
        if state == "done":
            tel.counter("service_submissions_total", outcome="cached").inc()
            return {"run_id": record.run_id, "created": created, "state": state}
        if not self._try_enqueue(record.run_id):
            tel.counter("service_submissions_total", outcome="rejected").inc()
            raise BackpressureError(
                f"job queue full ({self._queue.maxsize} pending); retry later"
            )
        with self._lock:
            self._cancel_requested.discard(record.run_id)
        tel.counter("service_submissions_total", outcome="accepted").inc()
        return {"run_id": record.run_id, "created": created, "state": "queued"}

    def _try_enqueue(self, run_id: str) -> bool:
        with self._lock:
            if run_id in self._enqueued:
                return True  # already pending; coalesce
            try:
                self._queue.put_nowait((run_id, time.monotonic()))
            except queue.Full:
                return False
            self._enqueued.add(run_id)
            self._gauge_depth()
            return True

    # -- cancellation ------------------------------------------------------

    def cancel(self, run_id: str) -> dict:
        """Request cooperative cancellation of a queued or running run."""
        record = self.store.get(run_id)  # raises on unknown id
        state = self.store.status(record.run_id).get("state")
        if state in ("done", "failed", "cancelled"):
            return {"run_id": record.run_id, "state": state}
        with self._lock:
            self._cancel_requested.add(record.run_id)
        return {"run_id": record.run_id, "state": "cancelling"}

    def _should_cancel(self, run_id: str) -> bool:
        if self._cancel_all.is_set():
            return True
        with self._lock:
            return run_id in self._cancel_requested

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        tel = telemetry.get_telemetry()
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            run_id, enqueued_at = item
            tel.histogram(
                "service_queue_wait_seconds", buckets=telemetry.SECONDS_BUCKETS
            ).observe(time.monotonic() - enqueued_at)
            try:
                if self._should_cancel(run_id):
                    self.store.set_state(run_id, "cancelled")
                    self.store.append_journal(
                        run_id, {"event": "cancelled", "while": "queued"}
                    )
                else:
                    record = self.store.get(run_id)
                    self.store.execute(
                        record,
                        jobs=self.jobs_per_run,
                        should_cancel=lambda: self._should_cancel(run_id),
                    )
            except Exception as exc:  # store marked the run failed
                self.store.append_journal(
                    run_id,
                    {"event": "worker-error",
                     "error": f"{type(exc).__name__}: {exc}"},
                )
            finally:
                with self._lock:
                    self._enqueued.discard(run_id)
                    self._cancel_requested.discard(run_id)
                    self._gauge_depth()
                self._queue.task_done()

    def _gauge_depth(self) -> None:
        telemetry.get_telemetry().gauge("service_queue_depth").set(
            len(self._enqueued)
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters for the status endpoint."""
        with self._lock:
            return {
                "pending": len(self._enqueued),
                "queue_limit": self._queue.maxsize,
                "workers": len(self._workers),
                "jobs_per_run": self.jobs_per_run,
                "stopping": self._stopping.is_set(),
            }

"""Job scheduling: supervised worker processes executing scenario runs.

:class:`JobService` owns a :class:`~repro.service.store.RunStore` and a
bounded pending set of run ids.  Submissions register the scenario in
the store (idempotent by content digest) and enqueue it; a dispatcher
thread hands runs to a supervised :class:`~repro.service.supervisor
.WorkerFleet` of child *processes* (the default since PR 9 -- a hung or
crashed run can no longer wedge the daemon), each executing through
:meth:`RunStore.execute` -- i.e. the supervised sharded scheduler with
block checkpoints, so a run killed mid-flight resumes where it left off.

Robustness semantics (the PR 7 supervision idiom, one level up):

* **worker death** (SIGKILL, OOM, crash): detected via the process
  sentinel; the worker is respawned and the orphaned run requeued
  immediately (its shard checkpoints make the retry a cheap resume);
* **run deadline** (``run_timeout``): a run past its wall-clock budget
  has its worker terminate-then-killed and is requeued with backoff;
* **heartbeat stall**: a busy worker that stops beating is presumed
  wedged, killed, and its run requeued;
* **bounded seeded retry**: each run gets at most ``retry.max_attempts``
  dispatches; transient failures back off deterministically
  (:class:`~repro.experiments.retry.RetryPolicy`), :class:`ReproError`
  failures are permanent and never retried;
* **quarantine**: a run that exhausts its budget flips to
  ``quarantined`` -- parked in the FAILURES view, never auto-retried;
* **degraded mode**: after ``degraded_after`` *consecutive* substrate
  failures (deaths/timeouts/stalls) the service stops accepting
  submissions (:class:`ServiceDegradedError`, HTTP 503) while still
  serving reads; one successful run restores it.

Durability and backpressure:

* the pending set is **bounded** -- when full, :meth:`submit` raises
  :class:`BackpressureError` (the HTTP layer maps it to 429 with a
  ``Retry-After`` hint) instead of buffering unbounded work;
* all job state lives in the store (``status.json`` per run, mirrored
  into the sqlite ledger), so a service restart -- even SIGKILL --
  recovers by :meth:`rescan`: the ledger is reconciled against the
  directory and runs left ``queued`` or ``running`` are re-enqueued;
* :meth:`stop` supports both a **drain** (finish everything already
  queued, the SIGTERM path) and an immediate stop (kill in-flight
  workers; their runs stay ``running`` in the store for the next
  rescan).

``worker_mode="thread"`` preserves the PR 8 in-process worker threads
(no process isolation, no deadlines -- but zero spawn overhead), which
doubles as the overhead baseline for the supervised path.

Telemetry: ``service_queue_depth`` / ``service_degraded`` gauges,
``service_submissions_total{outcome=}`` / ``service_jobs_total{state=}``
/ ``service_worker_deaths_total{cause=}`` / ``service_run_retries_total``
/ ``service_runs_quarantined_total{kind=}`` counters, and
``service_queue_wait_seconds`` / ``service_job_seconds`` histograms.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import ConfigurationError, ReproError
from repro.experiments.retry import RetryPolicy
from repro.service.scenario import Scenario
from repro.service.store import RunStore
from repro.service.supervisor import DEFAULT_HEARTBEAT_INTERVAL_S, WorkerFleet

__all__ = [
    "BackpressureError",
    "ServiceDegradedError",
    "JobService",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_DEGRADED_AFTER",
]

DEFAULT_QUEUE_LIMIT = 64

#: Consecutive substrate failures (worker deaths / deadline kills /
#: stalls) before the service stops accepting submissions.
DEFAULT_DEGRADED_AFTER = 3

_STOP = None  # thread-mode queue sentinel

#: How long one dispatcher supervision wait lasts.
_POLL_S = 0.2


def _default_retry() -> RetryPolicy:
    # Service-level policy: quick deterministic backoff, and -- unlike
    # run_all -- timeouts ARE retried (a deadline kill resumes cheaply
    # from shard checkpoints, so the retry is worth it by default).
    return RetryPolicy(
        max_attempts=3, backoff_base=0.1, backoff_cap=5.0, retry_timeouts=True
    )


class BackpressureError(ReproError):
    """Raised when the job queue is full; resubmit after runs drain."""


class ServiceDegradedError(ReproError):
    """Raised while the service refuses submissions after repeated
    worker deaths (reads still work); mapped to HTTP 503."""


@dataclass
class _JobState:
    """Dispatcher-side bookkeeping for one pending or in-flight run."""

    run_id: str
    enqueued_at: float
    attempts: int = 0
    not_before: float = 0.0
    in_flight: bool = field(default=False)


class JobService:
    """Bounded job queue executing scenario runs against a store."""

    def __init__(
        self,
        store: RunStore,
        jobs_per_run: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        workers: int = 1,
        worker_mode: str = "process",
        run_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        degraded_after: int = DEFAULT_DEGRADED_AFTER,
        fault_spec: str = "",
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ):
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if jobs_per_run < 1:
            raise ConfigurationError(
                f"jobs_per_run must be >= 1, got {jobs_per_run}"
            )
        if worker_mode not in ("process", "thread"):
            raise ConfigurationError(
                f"worker_mode must be 'process' or 'thread', got {worker_mode!r}"
            )
        if worker_mode == "thread" and fault_spec:
            raise ConfigurationError(
                "--inject-faults needs worker processes; thread-mode workers "
                "cannot survive a worker:kill (use --worker-mode process)"
            )
        if degraded_after < 1:
            raise ConfigurationError(
                f"degraded_after must be >= 1, got {degraded_after}"
            )
        self.store = store
        self.jobs_per_run = jobs_per_run
        self.queue_limit = queue_limit
        self.worker_mode = worker_mode
        self.run_timeout = run_timeout
        self.retry = retry if retry is not None else _default_retry()
        self.degraded_after = degraded_after
        self.fault_spec = fault_spec
        self.heartbeat_interval = heartbeat_interval
        self._lock = threading.Lock()
        self._enqueued: set[str] = set()  # ids pending or in flight
        self._cancel_requested: set[str] = set()
        self._stopping = threading.Event()
        self._drain = True
        self._cancel_all = threading.Event()
        self._started = False
        self._degraded = False
        self._failure_streak = 0
        # process mode
        self._pending: deque[_JobState] = deque()
        self._in_flight: dict[str, _JobState] = {}
        self._fleet: WorkerFleet | None = None
        self._dispatcher: threading.Thread | None = None
        self.num_workers = workers
        # thread mode
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._threads = (
            [
                threading.Thread(
                    target=self._worker, name=f"repro-job-{i}", daemon=True
                )
                for i in range(workers)
            ]
            if worker_mode == "thread"
            else []
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the workers and recover interrupted runs from the store.

        Idempotent: a second ``start()`` is a no-op (the restart-race
        tests pin this), and recovery itself is idempotent because the
        pending set coalesces duplicate enqueues.
        """
        if self._started:
            return
        self._started = True
        try:
            self.store.reconcile_ledger()
        except Exception:  # ledger is an index; never block startup on it
            pass
        self.rescan()
        if self.worker_mode == "thread":
            for worker in self._threads:
                worker.start()
            return
        self._fleet = WorkerFleet(
            self.store.root,
            self.num_workers,
            jobs_per_run=self.jobs_per_run,
            run_timeout=self.run_timeout,
            heartbeat_interval=self.heartbeat_interval,
            fault_spec=self.fault_spec,
        )
        self._fleet.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True
        )
        self._dispatcher.start()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        With *drain* (the SIGTERM path) every queued run finishes first;
        without it in-flight workers are killed (their runs stay
        ``running`` in the store, resumed by the next :meth:`rescan`)
        and queued runs stay ``queued``.
        """
        self._drain = drain
        self._stopping.set()
        if not drain:
            self._cancel_all.set()
        if self.worker_mode == "thread":
            for _ in self._threads:
                self._queue.put(_STOP)
            for worker in self._threads:
                if worker.is_alive():
                    worker.join(timeout=timeout)
            return
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        if self._fleet is not None:
            self._fleet.shutdown(kill=not drain)
            self._fleet = None

    def rescan(self) -> list[str]:
        """Re-enqueue runs the store says are ``queued`` or ``running``.

        A ``running`` run is one a previous service instance died inside
        (or one a current worker holds -- the coalescing pending set
        makes that a no-op); its shard checkpoints make re-execution a
        cheap resume.  Returns the newly recovered run ids.
        """
        recovered = []
        for summary in self.store.query():
            if summary.get("state") in ("queued", "running"):
                if self._try_enqueue(summary["run_id"]) == "added":
                    recovered.append(summary["run_id"])
        return recovered

    # -- submission --------------------------------------------------------

    def submit(self, scenario: Scenario, invocation: dict | None = None) -> dict:
        """Register and enqueue a scenario; returns a submission summary.

        Content addressing makes this idempotent: resubmitting a document
        whose run is already ``done`` returns immediately with the stored
        state and does not re-execute.
        """
        tel = telemetry.get_telemetry()
        if self._stopping.is_set():
            tel.counter("service_submissions_total", outcome="rejected").inc()
            raise BackpressureError("service is shutting down")
        if self._degraded:
            tel.counter("service_submissions_total", outcome="rejected").inc()
            raise ServiceDegradedError(
                f"service degraded after {self._failure_streak} consecutive "
                "worker failures; not accepting submissions (reads still "
                "served; recovers after one successful run)"
            )
        record, created = self.store.register(scenario, invocation=invocation)
        state = self.store.status(record.run_id).get("state")
        if state == "done":
            tel.counter("service_submissions_total", outcome="cached").inc()
            return {"run_id": record.run_id, "created": created, "state": state}
        if not self._try_enqueue(record.run_id):
            tel.counter("service_submissions_total", outcome="rejected").inc()
            raise BackpressureError(
                f"job queue full ({self.queue_limit} pending); retry later"
            )
        with self._lock:
            self._cancel_requested.discard(record.run_id)
        self.store.clear_cancel(record.run_id)
        tel.counter("service_submissions_total", outcome="accepted").inc()
        return {"run_id": record.run_id, "created": created, "state": "queued"}

    def retry_after_hint(self) -> int:
        """Suggested client backoff (seconds) for 429/503 responses."""
        with self._lock:
            backlog = len(self._enqueued)
        return max(1, min(30, backlog))

    def _try_enqueue(self, run_id: str) -> str:
        """Enqueue a run; returns ``"added"``, ``"coalesced"``, or ``""``.

        Both truthy outcomes mean the run is (now) pending or in flight;
        the empty string means the queue is full.
        """
        with self._lock:
            if run_id in self._enqueued:
                return "coalesced"  # already pending or in flight
            if self.worker_mode == "thread":
                try:
                    self._queue.put_nowait((run_id, time.monotonic()))
                except queue.Full:
                    return ""
            else:
                if len(self._enqueued) >= self.queue_limit:
                    return ""
                self._pending.append(
                    _JobState(run_id=run_id, enqueued_at=time.monotonic())
                )
            self._enqueued.add(run_id)
            self._gauge_depth()
            return "added"

    # -- cancellation ------------------------------------------------------

    def cancel(self, run_id: str) -> dict:
        """Request cooperative cancellation of a queued or running run."""
        record = self.store.get(run_id)  # raises on unknown id
        state = self.store.status(record.run_id).get("state")
        if state in ("done", "failed", "cancelled", "quarantined"):
            return {"run_id": record.run_id, "state": state}
        with self._lock:
            self._cancel_requested.add(record.run_id)
        # The on-disk marker reaches an executor in another process.
        self.store.request_cancel(record.run_id)
        return {"run_id": record.run_id, "state": "cancelling"}

    def _should_cancel(self, run_id: str) -> bool:
        if self._cancel_all.is_set():
            return True
        with self._lock:
            return run_id in self._cancel_requested

    # -- process-mode dispatcher -------------------------------------------

    def _dispatch_loop(self) -> None:
        """Own the fleet: dispatch ready runs, supervise, retry, quarantine."""
        fleet = self._fleet
        while True:
            if self._stopping.is_set() and not self._drain:
                return  # stop() kills the fleet; runs resume on next start
            self._dispatch_ready(fleet)
            if self._stopping.is_set() and self._drain:
                with self._lock:
                    drained = not self._pending and not self._in_flight
                if drained:
                    return
            for event in fleet.poll(_POLL_S):
                self._handle_event(event)

    def _dispatch_ready(self, fleet: WorkerFleet) -> None:
        tel = telemetry.get_telemetry()
        while fleet.idle_count > 0:
            job = self._next_ready()
            if job is None:
                return
            if self._should_cancel(job.run_id):
                self._finish_cancelled_queued(job)
                continue
            job.attempts += 1
            job.in_flight = True
            with self._lock:
                self._in_flight[job.run_id] = job
            if job.attempts == 1:
                tel.histogram(
                    "service_queue_wait_seconds",
                    buckets=telemetry.SECONDS_BUCKETS,
                ).observe(time.monotonic() - job.enqueued_at)
            else:
                tel.counter("service_run_retries_total").inc()
            self.store.record_attempt(job.run_id)
            fleet.dispatch(job.run_id)

    def _next_ready(self) -> _JobState | None:
        """Pop the first pending job whose backoff window has elapsed."""
        now = time.monotonic()
        with self._lock:
            for _ in range(len(self._pending)):
                job = self._pending.popleft()
                if job.not_before <= now:
                    return job
                self._pending.append(job)  # still backing off; rotate
        return None

    def _finish_cancelled_queued(self, job: _JobState) -> None:
        try:
            self.store.set_state(job.run_id, "cancelled")
            self.store.append_journal(
                job.run_id, {"event": "cancelled", "while": "queued"}
            )
            self.store.clear_cancel(job.run_id)
        except Exception:
            pass
        self._count_job("cancelled")
        self._forget(job.run_id)

    def _handle_event(self, event) -> None:
        with self._lock:
            job = self._in_flight.pop(event.run_id, None)
        if job is None:
            return  # stale event for a run we no longer track
        job.in_flight = False
        if event.kind == "done":
            self._count_job(event.state, event.elapsed)
            if event.state == "done":
                self._note_success()
            self._forget(job.run_id)
            return
        if event.kind == "failed":
            self.store.append_journal(
                job.run_id, {"event": "worker-error", "error": event.message}
            )
            if event.permanent:
                # Permanent failures (ReproError) are never retried.
                # store.execute marks the run failed itself, but an error
                # raised before it (e.g. an unreadable scenario.json in
                # store.get) would leave the run queued -- settle it here.
                if self.store.status(job.run_id).get("state") not in (
                    "failed", "cancelled", "quarantined",
                ):
                    try:
                        self.store.set_state(
                            job.run_id, "failed", error=event.message
                        )
                    except Exception:
                        pass
                self._count_job("failed", event.elapsed)
                self._forget(job.run_id)
                return
            self._retry_or_quarantine(job, event, delay=True)
            return
        # died / timeout / stalled: the substrate failed, not the run.
        self._note_substrate_failure()
        self.store.append_journal(
            job.run_id, {"event": f"worker-{event.kind}", "error": event.message}
        )
        if event.kind in ("timeout", "stalled") and not self.retry.retry_timeouts:
            self._quarantine(job, event)
            return
        self._retry_or_quarantine(job, event, delay=event.kind != "died")

    def _retry_or_quarantine(self, job: _JobState, event, delay: bool) -> None:
        if job.attempts >= self.retry.max_attempts:
            self._quarantine(job, event)
            return
        if delay:
            job.not_before = time.monotonic() + self.retry.delay(
                job.run_id, job.attempts
            )
        else:
            job.not_before = 0.0  # a worker death requeues immediately
        with self._lock:
            self._pending.append(job)

    def _quarantine(self, job: _JobState, event) -> None:
        reason = (
            f"{event.message} (attempt {job.attempts}/{self.retry.max_attempts})"
        )
        try:
            self.store.quarantine(job.run_id, reason, kind="poison")
        except Exception:
            pass
        self._count_job("quarantined", event.elapsed)
        self._forget(job.run_id)

    def _forget(self, run_id: str) -> None:
        with self._lock:
            self._enqueued.discard(run_id)
            self._cancel_requested.discard(run_id)
            self._gauge_depth()

    def _note_substrate_failure(self) -> None:
        self._failure_streak += 1
        if self._failure_streak >= self.degraded_after and not self._degraded:
            self._degraded = True
            telemetry.get_telemetry().gauge("service_degraded").set(1)

    def _note_success(self) -> None:
        self._failure_streak = 0
        if self._degraded:
            self._degraded = False
            telemetry.get_telemetry().gauge("service_degraded").set(0)

    @staticmethod
    def _count_job(state: str, seconds: float | None = None) -> None:
        # Parent-side accounting: the worker process's telemetry registry
        # is a fork-copy, so its increments never reach the daemon's
        # /metrics; the dispatcher counts terminal outcomes instead
        # (thread mode counts inside store.execute and skips this).
        tel = telemetry.get_telemetry()
        tel.counter("service_jobs_total", state=state).inc()
        if seconds is not None:
            tel.histogram(
                "service_job_seconds", buckets=telemetry.SECONDS_BUCKETS
            ).observe(seconds)

    # -- thread-mode worker loop (the PR 8 path; overhead baseline) --------

    def _worker(self) -> None:
        tel = telemetry.get_telemetry()
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            run_id, enqueued_at = item
            tel.histogram(
                "service_queue_wait_seconds", buckets=telemetry.SECONDS_BUCKETS
            ).observe(time.monotonic() - enqueued_at)
            try:
                if self._should_cancel(run_id):
                    self.store.set_state(run_id, "cancelled")
                    self.store.append_journal(
                        run_id, {"event": "cancelled", "while": "queued"}
                    )
                    self.store.clear_cancel(run_id)
                else:
                    record = self.store.get(run_id)
                    self.store.execute(
                        record,
                        jobs=self.jobs_per_run,
                        should_cancel=lambda: self._should_cancel(run_id),
                    )
            except Exception as exc:  # store marked the run failed
                self.store.append_journal(
                    run_id,
                    {"event": "worker-error",
                     "error": f"{type(exc).__name__}: {exc}"},
                )
            finally:
                self._forget(run_id)
                self._queue.task_done()

    def _gauge_depth(self) -> None:
        telemetry.get_telemetry().gauge("service_queue_depth").set(
            len(self._enqueued)
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters for the status endpoint."""
        with self._lock:
            return {
                "pending": len(self._enqueued),
                "in_flight": len(self._in_flight),
                "queue_limit": self.queue_limit,
                "workers": self.num_workers,
                "worker_mode": self.worker_mode,
                "jobs_per_run": self.jobs_per_run,
                "run_timeout": self.run_timeout,
                "degraded": self._degraded,
                "failure_streak": self._failure_streak,
                "stopping": self._stopping.is_set(),
            }

"""Supervised worker-process fleet for the job service.

The PR 7 shard supervisor keeps *blocks inside one run* alive under
worker churn; this module applies the same idiom one level up, keeping
*runs inside the daemon* alive: each run executes in a dedicated child
process with a duplex pipe, heartbeats, and a per-run wall-clock
deadline, so a hung or crashing run can never wedge the daemon itself.

The contract mirrors ``experiments.shard_supervisor``:

* one ``multiprocessing.Pipe`` per worker; the parent waits on pipe
  connections *and* process sentinels with
  :func:`multiprocessing.connection.wait`, so worker death is detected
  immediately (no polling);
* escalation is terminate-then-kill: SIGTERM, a grace join, SIGKILL;
* the worker main is a module-level function (picklable under any start
  method) that resets inherited signal handlers, and exits on pipe EOF
  so a dead parent cannot leave orphans behind.

What the fleet reports, the service decides: :meth:`WorkerFleet.poll`
returns plain :class:`FleetEvent` records (``done`` / ``failed`` /
``died`` / ``timeout`` / ``stalled``) and the :class:`~repro.service
.jobs.JobService` dispatcher owns requeue, retry backoff, and
quarantine policy.

Workers are **not** daemonic: a run may itself spawn shard worker
processes (``jobs_per_run > 1``), which daemonic processes are forbidden
to do.  The fleet compensates by killing its children explicitly on
shutdown and by the EOF exit above.

Chaos hooks (:class:`repro.service.chaos.ServiceFaultPlan`) travel to
the child as the compact fault-spec string and fire by fleet-wide
dispatch sequence number, so an injected kill/hang schedule replays
deterministically regardless of which worker draws which job.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path

from repro import telemetry
from repro.errors import ReproError
from repro.experiments.parallel import subprocess_context

__all__ = ["FleetEvent", "WorkerFleet", "DEFAULT_HEARTBEAT_INTERVAL_S"]

#: How often a busy worker's beat thread pings the parent.
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

#: Cap on one supervision wait so deadlines stay responsive.
_WAIT_CAP_S = 0.5

#: Grace period after SIGTERM before escalating to SIGKILL.
_TERM_GRACE_S = 2.0


def _service_worker_main(
    conn, store_root: str, fault_spec: str, heartbeat_interval: float
) -> None:
    """Entry point of one service worker process.

    Receives ``("run", job_seq, run_id, jobs)`` messages, executes each
    run through its own :class:`~repro.service.store.RunStore` handle,
    and replies ``("done", ...)`` / ``("failed", ...)``.  A beat thread
    pings the parent every *heartbeat_interval* seconds while a run is
    in flight -- it deliberately keeps beating through an injected
    ``worker:hang``, so a hang is caught by the run deadline (proving
    that path), while a genuinely wedged process goes stale.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Imported here (not at module top) so the fork/spawn child pays the
    # cost once and pickling the worker fn never drags the store along.
    from repro.service.chaos import ServiceFaultPlan, tamper_stored_table
    from repro.service.store import RunStore

    store = RunStore(store_root)
    plan = ServiceFaultPlan.from_spec(fault_spec or "")
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; never outlive it
        if msg[0] == "stop":
            return
        _kind, job_seq, run_id, jobs = msg
        stop_beat = threading.Event()

        def _beat(seq=job_seq, rid=run_id):
            while not stop_beat.wait(heartbeat_interval):
                try:
                    conn.send(("hb", seq, rid))
                except (BrokenPipeError, OSError):
                    return

        beat = threading.Thread(target=_beat, daemon=True, name="fleet-beat")
        beat.start()
        try:
            plan.fire_worker(job_seq)  # kill/hang fire here, pre-execution
            record = store.get(run_id)
            with plan.disk_pressure(job_seq):
                state = store.execute(record, jobs=jobs)
            if state == "done" and plan.should_tamper(job_seq):
                tamper_stored_table(record.root)
            reply = ("done", job_seq, run_id, state)
        except BaseException as exc:  # noqa: BLE001 -- serialized to parent
            reply = (
                "failed",
                job_seq,
                run_id,
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "permanent": isinstance(exc, ReproError),
                },
            )
        finally:
            stop_beat.set()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


@dataclass(frozen=True, slots=True)
class FleetEvent:
    """One supervision outcome surfaced to the dispatcher.

    *kind* is one of ``done`` (run reached a terminal state itself),
    ``failed`` (executor raised; *permanent* distinguishes ReproError),
    ``died`` (worker process exited without a reply -- SIGKILL, OOM,
    crash), ``timeout`` (run deadline exceeded; worker was killed), or
    ``stalled`` (heartbeats went stale; worker was killed).
    """

    kind: str
    run_id: str | None
    job_seq: int
    state: str | None = None
    message: str | None = None
    permanent: bool = False
    exitcode: int | None = None
    elapsed: float = 0.0


@dataclass
class _RunWorker:
    """One supervised worker process and its in-flight job, if any."""

    index: int
    process: object = None
    conn: object = None
    job_seq: int | None = None
    run_id: str | None = None
    started: float = 0.0
    deadline: float | None = None
    last_beat: float = 0.0
    deaths: int = field(default=0)

    @property
    def busy(self) -> bool:
        return self.run_id is not None

    def clear(self) -> None:
        self.job_seq = None
        self.run_id = None
        self.deadline = None

    def kill(self) -> None:
        """Terminate-then-kill escalation (the PR 7 idiom)."""
        proc = self.process
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(_TERM_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join(_TERM_GRACE_S)


class WorkerFleet:
    """A fixed-size fleet of supervised run-executor processes.

    The dispatcher thread owns this object; no method is thread-safe.
    ``dispatch`` hands a run to an idle worker (returning the fleet-wide
    job sequence number that chaos plans key on), ``poll`` waits for
    events -- completions, failures, deaths (the worker is respawned in
    place), run-deadline timeouts, and heartbeat stalls (both kill the
    worker first, then respawn).
    """

    def __init__(
        self,
        store_root: str | Path,
        size: int,
        *,
        jobs_per_run: int = 1,
        run_timeout: float | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout: float | None = None,
        fault_spec: str = "",
        threadsafe: bool = False,
    ):
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        self.store_root = str(store_root)
        self.size = size
        self.jobs_per_run = jobs_per_run
        self.run_timeout = run_timeout
        self.heartbeat_interval = heartbeat_interval
        # Stale = many missed beats; generous so a fork-storm under load
        # (a run spawning its shard workers) is never misread as a wedge.
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(15.0, 10.0 * heartbeat_interval)
        )
        self.fault_spec = fault_spec
        self._ctx = subprocess_context(threadsafe)
        self._workers: list[_RunWorker] = []
        self._next_seq = 1
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        if self._started:
            return
        self._started = True
        self._workers = [self._spawn(i) for i in range(self.size)]

    def _spawn(self, index: int) -> _RunWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_service_worker_main,
            args=(
                child_conn,
                self.store_root,
                self.fault_spec,
                self.heartbeat_interval,
            ),
            name=f"repro-fleet-{index}",
            daemon=False,  # runs spawn shard workers; daemons cannot
        )
        proc.start()
        child_conn.close()
        return _RunWorker(
            index=index, process=proc, conn=parent_conn, last_beat=time.monotonic()
        )

    def shutdown(self, kill: bool = True) -> None:
        """Stop every worker (politely, then by force for the busy ones)."""
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(0.2 if kill else _TERM_GRACE_S)
            if worker.process.is_alive():
                if kill:
                    worker.kill()
                else:
                    worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self._started = False

    # -- dispatch ----------------------------------------------------------

    def idle_workers(self) -> list[_RunWorker]:
        """The workers currently free to take a dispatch."""
        return [w for w in self._workers if not w.busy]

    @property
    def idle_count(self) -> int:
        return len(self.idle_workers())

    @property
    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.busy)

    def busy_runs(self) -> list[str]:
        """Run ids currently held by workers (for rescan coalescing)."""
        return [w.run_id for w in self._workers if w.busy]

    def dispatch(self, run_id: str) -> int:
        """Hand *run_id* to an idle worker; returns the job sequence number."""
        for worker in self._workers:
            if not worker.busy:
                seq = self._next_seq
                self._next_seq += 1
                now = time.monotonic()
                worker.job_seq = seq
                worker.run_id = run_id
                worker.started = now
                worker.last_beat = now
                worker.deadline = (
                    now + self.run_timeout if self.run_timeout else None
                )
                worker.conn.send(("run", seq, run_id, self.jobs_per_run))
                return seq
        raise RuntimeError("dispatch with no idle worker (caller bug)")

    # -- supervision -------------------------------------------------------

    def poll(self, timeout: float = _WAIT_CAP_S) -> list[FleetEvent]:
        """Wait up to *timeout* for fleet events; respawn dead workers."""
        if not self._workers:
            return []
        deadline = time.monotonic() + timeout
        events: list[FleetEvent] = []
        while not events:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            wait_for = min(remaining, _WAIT_CAP_S, self._nearest_deadline())
            sources = [w.conn for w in self._workers] + [
                w.process.sentinel for w in self._workers
            ]
            ready = connection_wait(sources, timeout=max(wait_for, 0.01))
            by_conn = {w.conn: w for w in self._workers}
            by_sentinel = {w.process.sentinel: w for w in self._workers}
            for source in ready:
                worker = by_conn.get(source)
                if worker is not None:
                    events.extend(self._drain(worker))
                    continue
                worker = by_sentinel.get(source)
                if worker is not None and not worker.process.is_alive():
                    # Drain any reply racing the exit before declaring death.
                    events.extend(self._drain(worker))
                    event = self._handle_death(worker)
                    if event is not None:
                        events.append(event)
            events.extend(self._enforce_deadlines())
        return events

    def _nearest_deadline(self) -> float:
        now = time.monotonic()
        gaps = [w.deadline - now for w in self._workers if w.deadline is not None]
        gaps += [
            w.last_beat + self.heartbeat_timeout - now
            for w in self._workers
            if w.busy
        ]
        return max(min(gaps), 0.01) if gaps else _WAIT_CAP_S

    def _drain(self, worker: _RunWorker) -> list[FleetEvent]:
        events = []
        try:
            while worker.conn.poll():
                msg = worker.conn.recv()
                kind = msg[0]
                if kind == "hb":
                    worker.last_beat = time.monotonic()
                    continue
                _, job_seq, run_id, detail = msg
                elapsed = time.monotonic() - worker.started
                worker.clear()
                if kind == "done":
                    events.append(
                        FleetEvent(
                            kind="done", run_id=run_id, job_seq=job_seq,
                            state=detail, elapsed=elapsed,
                        )
                    )
                else:
                    events.append(
                        FleetEvent(
                            kind="failed", run_id=run_id, job_seq=job_seq,
                            message=f"{detail['type']}: {detail['message']}",
                            permanent=detail["permanent"], elapsed=elapsed,
                        )
                    )
        except (EOFError, OSError):
            pass  # sentinel path reports the death
        return events

    def _handle_death(self, worker: _RunWorker) -> FleetEvent | None:
        """Respawn a dead worker in place; report the orphaned run, if any."""
        exitcode = worker.process.exitcode
        run_id, job_seq = worker.run_id, worker.job_seq
        elapsed = time.monotonic() - worker.started if worker.busy else 0.0
        try:
            worker.conn.close()
        except OSError:
            pass
        replacement = self._spawn(worker.index)
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.deaths += 1
        worker.clear()
        worker.last_beat = time.monotonic()
        telemetry.get_telemetry().counter(
            "service_worker_deaths_total",
            cause="idle" if run_id is None else "busy",
        ).inc()
        if run_id is None:
            return None  # idle death: nothing to requeue, fleet healed
        return FleetEvent(
            kind="died", run_id=run_id, job_seq=job_seq,
            message=f"worker process died (exit {exitcode})",
            exitcode=exitcode, elapsed=elapsed,
        )

    def _enforce_deadlines(self) -> list[FleetEvent]:
        """Kill workers past their run deadline or with stale heartbeats."""
        now = time.monotonic()
        events = []
        for worker in self._workers:
            if not worker.busy:
                continue
            if worker.deadline is not None and now >= worker.deadline:
                events.append(self._kill_busy(worker, "timeout"))
            elif now - worker.last_beat >= self.heartbeat_timeout:
                events.append(self._kill_busy(worker, "stalled"))
        return events

    def _kill_busy(self, worker: _RunWorker, kind: str) -> FleetEvent:
        run_id, job_seq = worker.run_id, worker.job_seq
        elapsed = time.monotonic() - worker.started
        worker.kill()
        try:
            worker.conn.close()
        except OSError:
            pass
        replacement = self._spawn(worker.index)
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.deaths += 1
        worker.clear()
        worker.last_beat = time.monotonic()
        reason = (
            f"run exceeded its {self.run_timeout}s deadline"
            if kind == "timeout"
            else f"no heartbeat for {self.heartbeat_timeout}s"
        )
        telemetry.get_telemetry().counter(
            "service_worker_deaths_total", cause=kind
        ).inc()
        return FleetEvent(
            kind=kind, run_id=run_id, job_seq=job_seq,
            message=f"{reason}; worker killed", elapsed=elapsed,
        )
